"""The placement-search score cache changes cost, never the answer.

``optimize_placement`` scores candidates by solving the Tier-1 concave
program; the greedy search revisits placements (rejected moves retried
from the same incumbent on later sweeps), so scores are memoized by
placement signature for the duration of one call.  These tests pin the
contract: the cached search returns *exactly* what the uncached search
returns — same placement, objective, evaluation count, improvement
trace — while invoking the solver strictly fewer times.
"""

import typing as _t

import numpy as np

import repro.graph.placement_opt as placement_opt
from repro.graph.placement_opt import PlacementSearchResult, optimize_placement
from repro.graph.topology import TopologySpec, generate_topology


def _topology():
    spec = TopologySpec(
        num_nodes=3, num_ingress=2, num_egress=1, num_intermediate=5
    )
    return generate_topology(spec, np.random.default_rng(13))


def _reference_optimize(
    graph, initial, source_rates, num_nodes, max_evaluations
) -> PlacementSearchResult:
    """The pre-cache search loop, verbatim: every candidate re-solved."""
    rng = np.random.default_rng(0)
    current = dict(initial)
    evaluations = 1
    current_score = placement_opt._score(graph, current, source_rates, None)
    initial_score = current_score
    improvements: _t.List[_t.Tuple[str, float]] = []
    pe_ids = list(graph.pe_ids)
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        order = list(pe_ids)
        rng.shuffle(order)
        for pe_id in order:
            if evaluations >= max_evaluations:
                break
            home = current[pe_id]
            targets = [n for n in range(num_nodes) if n != home]
            rng.shuffle(targets)
            for node in targets[: max(1, num_nodes // 4)]:
                if evaluations >= max_evaluations:
                    break
                candidate = dict(current)
                candidate[pe_id] = node
                evaluations += 1
                score = placement_opt._score(
                    graph, candidate, source_rates, None
                )
                if score > current_score * (1 + 1e-6):
                    current = candidate
                    current_score = score
                    improvements.append(
                        (f"move {pe_id} -> node {node}", score)
                    )
                    improved = True
                    break
    return PlacementSearchResult(
        placement=current,
        objective=current_score,
        initial_objective=initial_score,
        evaluations=evaluations,
        improvements=improvements,
    )


def test_cached_search_equals_uncached_search():
    topology = _topology()
    result = optimize_placement(
        topology.graph,
        dict(topology.placement),
        topology.source_rates,
        topology.num_nodes,
        max_evaluations=24,
    )
    reference = _reference_optimize(
        topology.graph,
        dict(topology.placement),
        topology.source_rates,
        topology.num_nodes,
        max_evaluations=24,
    )
    assert result.placement == reference.placement
    assert result.objective == reference.objective
    assert result.initial_objective == reference.initial_objective
    assert result.evaluations == reference.evaluations
    assert result.improvements == reference.improvements


def test_cache_skips_repeat_solves(monkeypatch):
    topology = _topology()
    signatures = []
    real_score = placement_opt._score

    def counting_score(graph, placement, source_rates, utility):
        signatures.append(tuple(sorted(placement.items())))
        return real_score(graph, placement, source_rates, utility)

    monkeypatch.setattr(placement_opt, "_score", counting_score)
    result = optimize_placement(
        topology.graph,
        dict(topology.placement),
        topology.source_rates,
        topology.num_nodes,
        max_evaluations=24,
    )
    # Every signature solved at most once...
    assert len(signatures) == len(set(signatures))
    # ...and the budget still counted cache hits, so the search made
    # strictly fewer solver calls than evaluations.
    assert len(signatures) < result.evaluations
