"""Tests for the LQR gain design (Eq. 7 / Appendix A)."""

import numpy as np
import pytest

from repro.core.lqr import (
    LQRGains,
    closed_loop_poles,
    design_gains,
    is_stable,
    proportional_gains,
)


class TestDesign:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            design_gains(dt=0.0)
        with pytest.raises(ValueError):
            design_gains(dt=0.01, q=-1.0)
        with pytest.raises(ValueError):
            design_gains(dt=0.01, r=0.0)
        with pytest.raises(ValueError):
            design_gains(dt=0.01, buffer_lags=-1)

    def test_delay_must_be_covered_by_rate_lags(self):
        with pytest.raises(ValueError):
            design_gains(dt=0.01, rate_lags=0, delay_steps=1)

    def test_gain_dimensions(self):
        gains = design_gains(dt=0.01, buffer_lags=2, rate_lags=3)
        assert len(gains.lambdas) == 3  # k = 0..K
        assert len(gains.mus) == 3  # l = 1..L
        assert gains.buffer_lags == 2
        assert gains.rate_lags == 3

    def test_primary_gain_positive(self):
        gains = design_gains(dt=0.01)
        assert gains.lambdas[0] > 0

    def test_no_delay_design_has_zero_mu(self):
        """Without actuation delay, full-state feedback needs no history."""
        gains = design_gains(dt=0.01, delay_steps=0)
        assert gains.mus[0] == pytest.approx(0.0, abs=1e-6)

    def test_delayed_design_uses_history(self):
        """With one-step delay the u-history tap is essential."""
        gains = design_gains(dt=0.01, delay_steps=1)
        assert gains.mus[0] > 0.01

    def test_aggressiveness_increases_with_q_over_r(self):
        soft = design_gains(dt=0.01, q=1.0, r=1.0)
        hard = design_gains(dt=0.01, q=1.0, r=1e-5)
        assert hard.lambdas[0] > soft.lambdas[0]

    def test_scale_invariance_in_q_r_ratio(self):
        a = design_gains(dt=0.01, q=1.0, r=0.01)
        b = design_gains(dt=0.01, q=100.0, r=1.0)
        assert a.lambdas[0] == pytest.approx(b.lambdas[0], rel=1e-6)

    def test_deadbeat_limit(self):
        """As r -> 0, the delayed design approaches lambda0 = 1/dt, mu1 = 1."""
        gains = design_gains(dt=0.01, r=1e-9)
        assert gains.lambdas[0] == pytest.approx(100.0, rel=0.01)
        assert gains.mus[0] == pytest.approx(1.0, rel=0.01)


class TestStability:
    @pytest.mark.parametrize("dt", [0.001, 0.01, 0.1])
    @pytest.mark.parametrize("r", [1e-6, 1e-3, 1.0])
    def test_lqr_always_stable(self, dt, r):
        gains = design_gains(dt=dt, r=r)
        assert is_stable(gains)

    @pytest.mark.parametrize("lags", [(0, 1), (1, 1), (2, 2), (3, 4)])
    def test_stability_across_history_lengths(self, lags):
        buffer_lags, rate_lags = lags
        gains = design_gains(
            dt=0.01, buffer_lags=buffer_lags, rate_lags=rate_lags
        )
        assert is_stable(gains)

    def test_poles_inside_unit_circle(self):
        poles = closed_loop_poles(design_gains(dt=0.01))
        assert np.all(np.abs(poles) < 1.0)

    def test_unstable_proportional_gain_detected(self):
        """An over-aggressive P controller is unstable (|1 - g dt| >= 1)."""
        too_hot = proportional_gains(dt=0.01, gain=250.0)
        assert not is_stable(too_hot)

    def test_reasonable_proportional_gain_stable(self):
        gains = proportional_gains(dt=0.01, gain=50.0)
        assert is_stable(gains)


class TestClosedLoopSimulation:
    def simulate(self, gains: LQRGains, b_start: float, steps: int = 400):
        """Simulate the fluid loop: b' = b + dt (r_max - rho), u delayed."""
        dt = gains.dt
        rho = 100.0
        b0 = 25.0
        b = b_start
        deviations = [b - b0]
        history_b = [b - b0] * (gains.buffer_lags + 1)
        history_u = [0.0] * max(1, gains.rate_lags)
        delayed_u = [0.0] * max(1, gains.delay_steps or 1)
        for _ in range(steps):
            history_b = [b - b0] + history_b[:-1]
            r_max = rho
            for lam, deviation in zip(gains.lambdas, history_b):
                r_max -= lam * deviation
            for mu, surplus in zip(gains.mus, history_u):
                r_max -= mu * surplus
            u = r_max - rho
            history_u = [u] + history_u[:-1]
            if gains.delay_steps > 0:
                delayed_u = [u] + delayed_u[:-1]
                applied = delayed_u[-1]
            else:
                applied = u
            b = b + dt * applied
            deviations.append(b - b0)
        return deviations

    @pytest.mark.parametrize("b_start", [0.0, 10.0, 50.0])
    def test_converges_from_arbitrary_start(self, b_start):
        gains = design_gains(dt=0.01)
        deviations = self.simulate(gains, b_start)
        assert abs(deviations[-1]) < 0.05 * max(1.0, abs(deviations[0]))

    def test_convergence_is_monotone_in_envelope(self):
        gains = design_gains(dt=0.01)
        deviations = self.simulate(gains, 50.0)
        early = max(abs(d) for d in deviations[:50])
        late = max(abs(d) for d in deviations[-50:])
        assert late < early / 10
