"""Tests for the experiment harness: config, runner, sweeps, reporting."""

import numpy as np
import pytest

from repro.core.policies import AcesPolicy, UdpPolicy
from repro.core.targets import perturb_targets
from repro.experiments.config import (
    ExperimentConfig,
    calibration_experiment,
    main_experiment,
    smoke_experiment,
)
from repro.experiments.reporting import (
    format_table,
    print_table,
    series_to_rows,
)
from repro.experiments.runner import (
    fluid_optimal_throughput,
    run_cell,
    run_replication,
)
from repro.experiments.sweeps import _apply_parameter, sweep
from repro.graph.topology import TopologySpec


def tiny_experiment(**overrides):
    params = dict(
        name="tiny",
        spec=TopologySpec(
            num_nodes=2,
            num_ingress=2,
            num_egress=2,
            num_intermediate=2,
            calibrate_rates=False,
        ),
        duration=2.0,
        replications=2,
    )
    params.update(overrides)
    config = ExperimentConfig(**params)
    return config.with_system(warmup=1.0)


class TestConfig:
    def test_named_experiments_have_paper_scales(self):
        assert calibration_experiment().spec.num_pes == 60
        assert main_experiment().spec.num_pes == 200
        assert smoke_experiment().spec.num_pes == 20

    def test_with_system_replaces_field(self):
        config = tiny_experiment().with_system(buffer_size=7)
        assert config.system.buffer_size == 7
        assert config.duration == 2.0

    def test_with_spec_replaces_field(self):
        config = tiny_experiment().with_spec(lambda_s=99.0)
        assert config.spec.lambda_s == 99.0


class TestRunner:
    def test_run_cell_summaries(self):
        cell = run_cell(tiny_experiment(), [AcesPolicy(), UdpPolicy()])
        assert set(cell.policies) == {"aces", "udp"}
        for summary in cell.policies.values():
            assert summary.weighted_throughput.count == 2
            assert len(summary.reports) == 2
            assert summary.weighted_throughput.mean > 0

    def test_requires_policy(self):
        with pytest.raises(ValueError):
            run_cell(tiny_experiment(), [])

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ValueError):
            run_cell(tiny_experiment(), [AcesPolicy(), AcesPolicy()])

    def test_ratio(self):
        cell = run_cell(tiny_experiment(), [AcesPolicy(), UdpPolicy()])
        ratio = cell.ratio("aces", "udp")
        assert ratio == pytest.approx(
            cell.policies["aces"].weighted_throughput.mean
            / cell.policies["udp"].weighted_throughput.mean
        )

    def test_replication_is_paired(self):
        """All policies in one replication see the same topology."""
        topology, reports, optimum = run_replication(
            tiny_experiment(), [AcesPolicy(), UdpPolicy()], replication=0
        )
        assert optimum > 0
        assert set(reports) == {"aces", "udp"}
        assert fluid_optimal_throughput(
            topology,
            __import__(
                "repro.core.global_opt", fromlist=["solve_global_allocation"]
            ).solve_global_allocation(
                topology.graph, topology.placement, topology.source_rates
            ).targets,
        ) == pytest.approx(optimum)

    def test_targets_transform_applied(self):
        calls = []

        def transform(targets, topology, seed):
            calls.append(seed)
            return perturb_targets(
                targets, 0.1, np.random.default_rng(0),
                placement=topology.placement,
            )

        run_cell(
            tiny_experiment(replications=2),
            [UdpPolicy()],
            targets_transform=transform,
        )
        assert len(calls) == 2

    def test_normalized_throughput_reasonable(self):
        cell = run_cell(tiny_experiment(), [AcesPolicy()])
        normalized = cell.policies["aces"].normalized_throughput.mean
        assert 0.0 < normalized < 2.0


class TestSweeps:
    def test_apply_parameter_paths(self):
        config = tiny_experiment()
        assert _apply_parameter(config, "system.buffer_size", 9).system.buffer_size == 9
        assert _apply_parameter(config, "spec.lambda_s", 4.0).spec.lambda_s == 4.0
        assert _apply_parameter(config, "duration", 5.0).duration == 5.0

    def test_apply_parameter_unknown_section(self):
        with pytest.raises(ValueError):
            _apply_parameter(tiny_experiment(), "nope.field", 1)

    def test_sweep_runs_each_value(self):
        result = sweep(
            tiny_experiment(replications=1),
            [UdpPolicy()],
            "system.buffer_size",
            [5, 20],
        )
        assert [point.value for point in result.points] == [5, 20]
        series = result.series("udp")
        assert len(series) == 2
        assert all(value > 0 for _, value in series)

    def test_sweep_requires_values(self):
        with pytest.raises(ValueError):
            sweep(tiny_experiment(), [UdpPolicy()], "system.buffer_size", [])

    def test_series_metric_selection(self):
        result = sweep(
            tiny_experiment(replications=1),
            [UdpPolicy()],
            "system.buffer_size",
            [5],
        )
        latency_series = result.series("udp", metric="latency_mean")
        assert latency_series[0][1] > 0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"x": 1, "y": 2.34567},
            {"x": 10, "y": 0.5},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.35" in text
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_print_table_smoke(self, capsys):
        print_table([{"a": 1}], title="demo")
        captured = capsys.readouterr()
        assert "demo" in captured.out
        assert "a" in captured.out

    def test_series_to_rows_merges_on_x(self):
        rows = series_to_rows(
            {
                "aces": [(5, 1.0), (10, 2.0)],
                "udp": [(5, 0.5), (10, 1.5)],
            },
            x_name="B",
        )
        assert rows == [
            {"B": 5, "aces": 1.0, "udp": 0.5},
            {"B": 10, "aces": 2.0, "udp": 1.5},
        ]
