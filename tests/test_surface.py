"""The live metrics surface: snapshots, ``repro top``, Prometheus text."""

import csv

import numpy as np
import pytest

from repro.cli import main
from repro.core.policies import AcesPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.obs import (
    MemoryRecorder,
    SpanTracker,
    read_events_jsonl,
    render_prometheus,
    render_top,
    snapshot_runtime,
    snapshot_system,
    write_events_csv,
    write_events_jsonl,
)
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.simulated import SimulatedSystem, SystemConfig


def small_topology(seed=1, load=2.0):
    spec = TopologySpec(
        num_nodes=2, num_ingress=2, num_egress=2, num_intermediate=4,
        load_factor=load, calibrate_rates=False,
    )
    return generate_topology(spec, np.random.default_rng(seed))


@pytest.fixture(scope="module")
def sim_state():
    recorder = MemoryRecorder()
    spans = SpanTracker(recorder=recorder)
    system = SimulatedSystem(
        small_topology(),
        AcesPolicy(),
        config=SystemConfig(seed=3, warmup=0.2, buffer_size=10),
        recorder=recorder,
        spans=spans,
    )
    system.run(2.0)
    return system, recorder, spans


class TestSnapshotSystem:
    def test_fields(self, sim_state):
        system, _, _ = sim_state
        snapshot = snapshot_system(system)
        assert snapshot.substrate == "sim"
        assert snapshot.policy == "aces"
        assert snapshot.t == pytest.approx(system.env.now)
        assert snapshot.window > 0
        assert snapshot.total_output == system.collector.total_output()
        assert snapshot.weighted_throughput > 0
        assert snapshot.drop_rate == pytest.approx(
            snapshot.buffer_drops / snapshot.window
        )
        assert snapshot.span_violations == 0
        assert snapshot.span_rows  # spans were armed

    def test_stream_rows(self, sim_state):
        system, _, _ = sim_state
        snapshot = snapshot_system(system)
        assert len(snapshot.streams) == len(system.collector.records())
        for row in snapshot.streams:
            assert row.count > 0
            assert 0 < row.p50_s <= row.p95_s <= row.p99_s
            assert row.sum_s > 0
            assert row.buckets
            edges = [edge for edge, _ in row.buckets]
            counts = [count for _, count in row.buckets]
            assert edges == sorted(edges)
            assert counts[-1] == row.count

    def test_pe_rows(self, sim_state):
        system, _, _ = sim_state
        snapshot = snapshot_system(system)
        assert {row.pe_id for row in snapshot.pes} == set(
            system.runtimes
        )
        for row in snapshot.pes:
            assert 0 <= row.occupancy <= row.capacity


class TestRenderTop:
    def test_sections_and_content(self, sim_state):
        system, _, _ = sim_state
        text = render_top(snapshot_system(system))
        assert text.startswith("repro top  [sim/aces]")
        assert "-- egress streams --" in text
        assert "-- PEs --" in text
        assert "-- latency spans (closure violations: 0) --" in text
        assert "p95_ms" in text
        # Every PE appears in the PE table.
        for pe_id in system.runtimes:
            assert pe_id in text

    def test_spanless_snapshot_omits_span_section(self):
        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(seed=3, warmup=0.0, buffer_size=10),
        )
        system.run(1.0)
        text = render_top(snapshot_system(system))
        assert "latency spans" not in text
        assert "-- egress streams --" in text


class TestRenderPrometheus:
    def test_exposition_well_formed(self, sim_state):
        system, _, _ = sim_state
        snapshot = snapshot_system(system)
        text = render_prometheus(snapshot)
        assert text.endswith("\n")
        lines = text.splitlines()
        # Every non-comment line is "name{labels} value".
        for line in lines:
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)  # parses
        assert any(
            line.startswith("repro_weighted_throughput{") for line in lines
        )
        assert (
            f"repro_output_sdos_total{{substrate=\"sim\",policy=\"aces\"}} "
            f"{snapshot.total_output}" in lines
        )

    def test_histogram_series_consistent(self, sim_state):
        system, _, _ = sim_state
        snapshot = snapshot_system(system)
        lines = render_prometheus(snapshot).splitlines()
        for row in snapshot.streams:
            label = f'stream="{row.pe_id}"'
            buckets = [
                line for line in lines
                if line.startswith("repro_stream_latency_seconds_bucket")
                and label in line
            ]
            # +Inf terminates the series and carries the total count.
            assert buckets[-1].endswith(f'le="+Inf"}} {row.count}')
            cumulative = [int(line.rpartition(" ")[2]) for line in buckets]
            assert cumulative == sorted(cumulative)
            count_line = next(
                line for line in lines
                if line.startswith("repro_stream_latency_seconds_count")
                and label in line
            )
            assert count_line.endswith(f" {row.count}")


class TestSnapshotRuntime:
    def test_threaded_snapshot(self):
        spec = TopologySpec(
            num_nodes=2, num_ingress=1, num_egress=1, num_intermediate=3,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(0))
        spans = SpanTracker(locking=True)
        runtime = SPCRuntime(
            topology,
            AcesPolicy(),
            config=RuntimeConfig(seed=3, warmup=0.3, dt=0.05),
            spans=spans,
        )
        runtime.run(duration=1.2)
        snapshot = snapshot_runtime(runtime)
        assert snapshot.substrate == "threaded"
        assert snapshot.total_output > 0
        assert snapshot.streams
        assert snapshot.span_violations == 0
        text = render_top(snapshot)
        assert "[threaded/aces]" in text
        prom = render_prometheus(snapshot)
        assert 'substrate="threaded"' in prom


class TestSpanEventExport:
    def test_jsonl_and_csv_round_trip(self, sim_state, tmp_path):
        _, recorder, _ = sim_state
        events = recorder.by_kind("span")
        assert events
        jsonl = tmp_path / "spans.jsonl"
        assert write_events_jsonl(events, str(jsonl)) == len(events)
        loaded = read_events_jsonl(str(jsonl), validate=True)
        assert loaded == events
        csv_path = tmp_path / "spans.csv"
        assert write_events_csv(events, str(csv_path)) == len(events)
        with open(csv_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(events)
        for column in ("queue", "service", "transit", "e2e", "stream"):
            assert column in rows[0]
        assert float(rows[0]["e2e"]) == pytest.approx(events[0]["e2e"])


class TestCliTop:
    ARGS = [
        "--pes", "10", "--nodes", "2", "--seed", "0", "--load", "2.0",
        "--buffer", "10", "--duration", "1.5", "--warmup", "0.3",
    ]

    def test_once_sim(self, capsys):
        assert main(["top", *self.ARGS, "--once", "--spans"]) == 0
        out = capsys.readouterr().out
        assert "repro top  [sim/aces]" in out
        assert "-- latency spans (closure violations: 0) --" in out

    def test_once_threaded(self, capsys):
        assert main(
            ["top", *self.ARGS, "--substrate", "threaded", "--once"]
        ) == 0
        out = capsys.readouterr().out
        assert "[threaded/aces]" in out
        assert "-- egress streams --" in out

    def test_prometheus_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(
            ["top", *self.ARGS, "--once", "--prometheus", str(path)]
        ) == 0
        text = path.read_text()
        assert "# TYPE repro_stream_latency_seconds histogram" in text
        assert 'le="+Inf"' in text
