"""Property-based tests for the streaming workload forecasters.

Hypothesis drives arbitrary sample streams through
:class:`~repro.control.forecast.EwmaForecaster` and
:class:`~repro.control.forecast.HoltWintersForecaster` and asserts the
algebraic contract the proactive tier relies on:

* **affine equivariance** — forecasting commutes with affine input maps
  (``x -> a*x + b``), including through the Holt-Winters bootstrap, so
  the headroom *ratio* the trigger acts on is unit-free;
* **constant-input convergence** — a constant stream is forecast
  exactly (EWMA from the first sample, Holt-Winters from bootstrap on);
* **bounded error on pure-seasonal inputs** — a period-``m`` pattern is
  a fixed point of the seasonal recurrences: once bootstrapped, every
  horizon-``h`` forecast reproduces the pattern;
* **state-update associativity** — feeding ``xs`` then ``ys`` equals
  feeding ``xs + ys`` in one pass (streaming state carries no batch
  boundary), and the controller's gauge-cadence rate extraction
  telescopes: observed rates times the cadence sum exactly to the
  counter delta, independent of how ticks subsample the counters.

The trigger contract (headroom citation, dwell, cooldown spacing) is
additionally property-tested on scripted rate walks through
:class:`~repro.control.forecast.ForecastController`.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.forecast import (
    EwmaForecaster,
    ForecastConfig,
    ForecastController,
    HoltWintersForecaster,
    make_forecaster,
)
from repro.obs.recorder import TraceRecorder

forecast_settings = settings(max_examples=100, deadline=None)

#: Bounded-magnitude samples keep float comparisons honest: the
#: recurrences are exact in real arithmetic, so only rounding separates
#: the two sides.
samples = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
sample_lists = st.lists(samples, min_size=1, max_size=50)
alphas = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
hw_gains = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
season_lengths = st.integers(min_value=2, max_value=8)
horizons = st.integers(min_value=1, max_value=6)


def _ewma(alpha):
    return EwmaForecaster(alpha=alpha)


def _hw(alpha=0.5, beta=0.1, gamma=0.3, season_length=4):
    return HoltWintersForecaster(
        alpha=alpha, beta=beta, gamma=gamma, season_length=season_length
    )


class TestAffineEquivariance:
    @forecast_settings
    @given(
        xs=sample_lists,
        alpha=alphas,
        a=st.floats(min_value=0.125, max_value=8.0, allow_nan=False),
        b=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        horizon=horizons,
    )
    def test_ewma(self, xs, alpha, a, b, horizon):
        plain = _ewma(alpha)
        mapped = _ewma(alpha)
        for x in xs:
            plain.update(x)
            mapped.update(a * x + b)
        assert mapped.forecast(horizon) == pytest.approx(
            a * plain.forecast(horizon) + b, rel=1e-9, abs=1e-6
        )

    @forecast_settings
    @given(
        xs=sample_lists,
        alpha=alphas,
        beta=hw_gains,
        gamma=hw_gains,
        season_length=season_lengths,
        a=st.floats(min_value=0.125, max_value=8.0, allow_nan=False),
        b=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        horizon=horizons,
    )
    def test_holtwinters(
        self, xs, alpha, beta, gamma, season_length, a, b, horizon
    ):
        # Streams shorter than one season exercise the bootstrap path,
        # longer ones the full recurrences — equivariance holds through
        # both (the bootstrap is a mean, the recurrences are affine).
        plain = _hw(alpha, beta, gamma, season_length)
        mapped = _hw(alpha, beta, gamma, season_length)
        for x in xs:
            plain.update(x)
            mapped.update(a * x + b)
        assert mapped.forecast(horizon) == pytest.approx(
            a * plain.forecast(horizon) + b, rel=1e-9, abs=1e-6
        )


class TestConstantInputConvergence:
    @forecast_settings
    @given(
        c=samples, alpha=alphas, n=st.integers(min_value=1, max_value=40),
        horizon=horizons,
    )
    def test_ewma_is_exact_from_first_sample(self, c, alpha, n, horizon):
        forecaster = _ewma(alpha)
        for _ in range(n):
            forecaster.update(c)
            assert forecaster.forecast(horizon) == pytest.approx(
                c, rel=1e-9, abs=1e-9
            )

    @forecast_settings
    @given(
        c=samples,
        alpha=alphas,
        beta=hw_gains,
        gamma=hw_gains,
        season_length=season_lengths,
        extra=st.integers(min_value=0, max_value=30),
        horizon=horizons,
    )
    def test_holtwinters_is_exact_from_bootstrap_on(
        self, c, alpha, beta, gamma, season_length, extra, horizon
    ):
        forecaster = _hw(alpha, beta, gamma, season_length)
        for _ in range(season_length + extra):
            forecaster.update(c)
        assert forecaster.ready
        assert forecaster.forecast(horizon) == pytest.approx(
            c, rel=1e-9, abs=1e-6
        )


class TestSeasonalFixedPoint:
    @forecast_settings
    @given(
        pattern=st.lists(samples, min_size=2, max_size=8),
        alpha=alphas,
        beta=hw_gains,
        gamma=hw_gains,
        repeats=st.integers(min_value=1, max_value=4),
        horizon=horizons,
    )
    def test_pure_seasonal_input_is_reproduced(
        self, pattern, alpha, beta, gamma, repeats, horizon
    ):
        """A period-m stream bootstraps to zero residual and stays there:
        every later forecast lands exactly on the repeating pattern."""
        m = len(pattern)
        forecaster = _hw(alpha, beta, gamma, season_length=m)
        n = 0
        for _ in range(repeats):
            for value in pattern:
                forecaster.update(value)
                n += 1
                if not forecaster.ready:
                    continue
                expected = pattern[(n + horizon - 1) % m]
                assert forecaster.forecast(horizon) == pytest.approx(
                    expected, rel=1e-9, abs=1e-6
                )


class TestStateUpdateAssociativity:
    @forecast_settings
    @given(
        xs=st.lists(samples, min_size=0, max_size=30),
        ys=st.lists(samples, min_size=0, max_size=30),
        alpha=alphas,
        kind=st.sampled_from(["ewma", "holtwinters"]),
        horizon=horizons,
    )
    def test_split_feed_equals_whole_feed(self, xs, ys, alpha, kind, horizon):
        config = ForecastConfig(kind=kind, alpha=alpha, season_length=4)
        split = make_forecaster(config)
        whole = make_forecaster(config)
        for x in xs:
            split.update(x)
        for y in ys:
            split.update(y)
        for value in xs + ys:
            whole.update(value)
        assert split.samples == whole.samples
        # Same stream, same state: identical floats, no tolerance — the
        # split point leaves no trace in the recurrences.
        assert split.forecast(horizon) == whole.forecast(horizon)

    @forecast_settings
    @given(
        deltas=st.lists(
            st.integers(min_value=0, max_value=50), min_size=2, max_size=40
        ),
        interval=st.floats(
            min_value=0.05, max_value=1.0, allow_nan=False
        ),
    )
    def test_gauge_cadence_rates_telescope(self, deltas, interval):
        """Rate extraction from cumulative counters telescopes: the
        observed rates times the cadence sum exactly to the end-to-end
        counter delta, however the ticks subsample the counter."""
        counts = [0]
        for delta in deltas:
            counts.append(counts[-1] + delta)
        position = {"index": 0}

        recorder = _CaptureRecorder()
        controller = ForecastController(
            ForecastConfig(
                kind="ewma", sample_interval=interval, headroom=1e9
            ),
            recorder=recorder,
        )
        controller.bind(
            counters={"pe-0": lambda: counts[position["index"]]},
            baseline={"pe-0": 1.0},
        )
        for index in range(len(counts)):
            position["index"] = index
            controller.tick((index + 1) * interval)

        observed = [
            event["observed"]
            for event in recorder.events
            if event["kind"] == "forecast"
        ]
        assert len(observed) == len(counts) - 1
        total = sum(rate * interval for rate in observed)
        assert total == pytest.approx(
            counts[-1] - counts[0], rel=1e-9, abs=1e-6
        )


class _CaptureRecorder(TraceRecorder):
    """In-memory recorder: keeps every event dict for assertions."""

    def __init__(self):
        super().__init__(clock=lambda: 0.0)
        self.events = []

    def _write(self, event):
        self.events.append(event)


class TestTriggerContract:
    @forecast_settings
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        headroom=st.floats(min_value=1.05, max_value=3.0, allow_nan=False),
        dwell=st.integers(min_value=1, max_value=4),
        cooldown=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    def test_scripted_walks_respect_headroom_dwell_and_cooldown(
        self, rates, headroom, dwell, cooldown
    ):
        interval = 0.25
        config = ForecastConfig(
            kind="ewma",
            alpha=0.6,
            sample_interval=interval,
            horizon=2,
            headroom=headroom,
            dwell_ticks=dwell,
            cooldown=cooldown,
        )
        controller = ForecastController(config)
        controller.bind(
            counters={"pe-0": lambda: 0},
            baseline={"pe-0": 5.0},
        )
        for step, rate in enumerate(rates):
            controller.observe({"pe-0": rate}, (step + 1) * interval)

        triggers = controller.triggers
        for record in triggers:
            # Every trigger cites a ratio at or above the headroom and a
            # finite non-negative prediction.
            assert record.ratio >= headroom - 1e-9
            assert math.isfinite(record.predicted)
            assert record.predicted >= 0.0
        for earlier, later in zip(triggers, triggers[1:]):
            assert later.t - earlier.t >= cooldown - 1e-9
        # The MAE accumulator only scores realized one-step pairs.
        if controller.error_samples:
            assert math.isfinite(controller.mean_abs_error)
            assert controller.mean_abs_error >= 0.0
