"""Tests for the random topology generator (the paper's tool)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.topology import (
    TopologySpec,
    generate_topology,
    paper_calibration_spec,
    paper_main_spec,
)


def small_spec(**overrides):
    params = dict(
        num_nodes=4,
        num_ingress=3,
        num_egress=3,
        num_intermediate=8,
        calibrate_rates=False,  # keep unit tests fast
    )
    params.update(overrides)
    return TopologySpec(**params)


class TestSpecValidation:
    def test_positive_counts_required(self):
        with pytest.raises(ValueError):
            small_spec(num_nodes=0)
        with pytest.raises(ValueError):
            small_spec(num_ingress=0)
        with pytest.raises(ValueError):
            small_spec(num_intermediate=-1)

    def test_fan_caps_positive(self):
        with pytest.raises(ValueError):
            small_spec(max_fan_in=0)

    def test_multi_io_fraction_range(self):
        with pytest.raises(ValueError):
            small_spec(multi_io_fraction=1.5)

    def test_load_factor_positive(self):
        with pytest.raises(ValueError):
            small_spec(load_factor=0.0)

    def test_num_pes(self):
        assert small_spec().num_pes == 14

    def test_paper_specs_match_paper_scale(self):
        calib = paper_calibration_spec()
        assert calib.num_pes == 60
        assert calib.num_nodes == 10
        main = paper_main_spec()
        assert main.num_pes == 200
        assert main.num_nodes == 80


class TestGeneratedStructure:
    def test_pe_and_node_counts(self):
        topo = generate_topology(small_spec(), np.random.default_rng(0))
        assert len(topo.graph) == 14
        assert topo.num_nodes == 4
        assert len(topo.graph.ingress_ids) == 3
        assert len(topo.graph.egress_ids) == 3

    def test_graph_validates(self):
        topo = generate_topology(small_spec(), np.random.default_rng(1))
        topo.graph.validate()

    def test_fan_caps_respected(self):
        spec = small_spec(num_intermediate=30, num_nodes=8)
        topo = generate_topology(spec, np.random.default_rng(2))
        for pe_id in topo.graph.pe_ids:
            assert topo.graph.fan_in(pe_id) <= spec.max_fan_in
            assert topo.graph.fan_out(pe_id) <= spec.max_fan_out

    def test_multi_io_fraction_near_target(self):
        spec = paper_main_spec(calibrate_rates=False)
        topo = generate_topology(spec, np.random.default_rng(3))
        graph = topo.graph
        multi = sum(
            1
            for pe in graph.pe_ids
            if graph.fan_in(pe) > 1 or graph.fan_out(pe) > 1
        )
        assert multi / len(graph) == pytest.approx(0.20, abs=0.05)

    def test_every_pe_placed(self):
        topo = generate_topology(small_spec(), np.random.default_rng(4))
        assert set(topo.placement) == set(topo.graph.pe_ids)
        assert all(0 <= n < topo.num_nodes for n in topo.placement.values())

    def test_source_rates_cover_ingress(self):
        topo = generate_topology(small_spec(), np.random.default_rng(5))
        assert set(topo.source_rates) == set(topo.graph.ingress_ids)
        assert all(rate > 0 for rate in topo.source_rates.values())

    def test_only_egress_pes_weighted(self):
        topo = generate_topology(small_spec(), np.random.default_rng(6))
        graph = topo.graph
        egress = set(graph.egress_ids)
        for pe_id in graph.pe_ids:
            weight = graph.profile(pe_id).weight
            if pe_id in egress:
                assert 0.5 <= weight <= 2.0
            else:
                assert weight == 0.0

    def test_deterministic_given_rng_seed(self):
        a = generate_topology(small_spec(), np.random.default_rng(7))
        b = generate_topology(small_spec(), np.random.default_rng(7))
        assert a.graph.edges() == b.graph.edges()
        assert a.placement == b.placement
        assert a.source_rates == b.source_rates

    def test_different_seeds_differ(self):
        a = generate_topology(small_spec(), np.random.default_rng(8))
        b = generate_topology(small_spec(), np.random.default_rng(9))
        assert a.graph.edges() != b.graph.edges()

    def test_heterogeneity_spreads_service_times(self):
        spec = small_spec(service_heterogeneity=3.0, num_intermediate=30)
        topo = generate_topology(spec, np.random.default_rng(10))
        t0s = [topo.graph.profile(p).t0 for p in topo.graph.pe_ids]
        assert max(t0s) / min(t0s) > 1.5

    def test_heterogeneity_one_is_uniform(self):
        spec = small_spec(service_heterogeneity=1.0)
        topo = generate_topology(spec, np.random.default_rng(11))
        t0s = {topo.graph.profile(p).t0 for p in topo.graph.pe_ids}
        assert t0s == {spec.t0}

    def test_avg_degree_honoured_when_set(self):
        spec = small_spec(avg_degree=1.6, num_intermediate=30)
        topo = generate_topology(spec, np.random.default_rng(12))
        degree = len(topo.graph.edges()) / len(topo.graph)
        assert degree == pytest.approx(1.6, abs=0.2)

    def test_unknown_placement_strategy_rejected(self):
        spec = small_spec(placement_strategy="nope")
        with pytest.raises(ValueError):
            generate_topology(spec, np.random.default_rng(0))

    def test_calibrated_profiles_have_slopes(self):
        spec = small_spec(calibrate_rates=True)
        topo = generate_topology(spec, np.random.default_rng(13))
        for pe_id in topo.graph.pe_ids:
            assert topo.graph.profile(pe_id).calibrated_rate_slope is not None

    def test_pes_on_node_matches_placement(self):
        topo = generate_topology(small_spec(), np.random.default_rng(14))
        for node in range(topo.num_nodes):
            for pe_id in topo.pes_on_node(node):
                assert topo.placement[pe_id] == node


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    intermediates=st.integers(min_value=0, max_value=25),
    nodes=st.integers(min_value=1, max_value=10),
)
def test_property_generator_always_valid(seed, intermediates, nodes):
    spec = TopologySpec(
        num_nodes=nodes,
        num_ingress=2,
        num_egress=2,
        num_intermediate=intermediates,
        calibrate_rates=False,
    )
    topo = generate_topology(spec, np.random.default_rng(seed))
    topo.graph.validate()
    assert set(topo.placement) == set(topo.graph.pe_ids)
