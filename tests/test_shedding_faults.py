"""Tests for the load-shedding baseline and fault injection."""

import numpy as np
import pytest

from repro.core.policies import (
    AcesPolicy,
    LoadSheddingPolicy,
    UdpPolicy,
    policy_by_name,
)
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.params import PEProfile
from repro.model.pe import PERuntime
from repro.model.sdo import SDO
from repro.systems.faults import Fault, FaultPlan
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system


def small_topology(seed=0, **overrides):
    params = dict(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=4,
        calibrate_rates=False,
    )
    params.update(overrides)
    return generate_topology(
        TopologySpec(**params), np.random.default_rng(seed)
    )


class TestLoadSheddingPolicy:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            LoadSheddingPolicy(threshold=1.0)
        with pytest.raises(ValueError):
            LoadSheddingPolicy(threshold=-0.1)

    def test_registered_in_factory(self):
        assert isinstance(policy_by_name("shedding"), LoadSheddingPolicy)

    def test_admits_below_threshold(self):
        policy = LoadSheddingPolicy(threshold=0.5)
        pe = PERuntime(
            PEProfile(pe_id="p"), buffer_capacity=10,
            rng=np.random.default_rng(0),
        )
        admit = policy.make_admission_filter(pe)
        sdo = SDO(stream_id="s", origin_time=0.0)
        assert all(admit(pe, sdo) for _ in range(50))

    def test_always_sheds_at_full(self):
        policy = LoadSheddingPolicy(threshold=0.5)
        pe = PERuntime(
            PEProfile(pe_id="p"), buffer_capacity=4,
            rng=np.random.default_rng(0),
        )
        for _ in range(4):
            pe.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        admit = policy.make_admission_filter(pe)
        sdo = SDO(stream_id="s", origin_time=0.0)
        assert not any(admit(pe, sdo) for _ in range(50))

    def test_partial_shedding_in_ramp(self):
        policy = LoadSheddingPolicy(threshold=0.0)
        pe = PERuntime(
            PEProfile(pe_id="p"), buffer_capacity=10,
            rng=np.random.default_rng(0),
        )
        for _ in range(5):
            pe.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        admit = policy.make_admission_filter(pe)
        sdo = SDO(stream_id="s", origin_time=0.0)
        decisions = [admit(pe, sdo) for _ in range(400)]
        admitted = sum(decisions)
        assert 100 < admitted < 300  # ~50% drop probability

    def test_end_to_end_run(self):
        topology = small_topology(load_factor=2.0)
        report = run_system(
            topology,
            LoadSheddingPolicy(),
            duration=4.0,
            config=SystemConfig(seed=1, warmup=1.0),
        )
        assert report.total_output_sdos > 0
        assert report.buffer_drops > 0  # shedding shows up as drops

    def test_shedding_keeps_buffers_shorter_than_udp(self):
        topology = small_topology(load_factor=2.0)
        shed = run_system(
            topology, LoadSheddingPolicy(threshold=0.3), duration=5.0,
            config=SystemConfig(seed=1, warmup=1.0),
        )
        udp = run_system(
            topology, UdpPolicy(), duration=5.0,
            config=SystemConfig(seed=1, warmup=1.0),
        )
        assert shed.mean_buffer_occupancy < udp.mean_buffer_occupancy
        assert shed.latency.mean < udp.latency.mean


class TestFaultValidation:
    def test_fault_field_validation(self):
        with pytest.raises(ValueError):
            Fault("pe_stall", "x", start=-1.0, duration=1.0, magnitude=0.0)
        with pytest.raises(ValueError):
            Fault("pe_stall", "x", start=0.0, duration=0.0, magnitude=0.0)
        with pytest.raises(ValueError):
            Fault("pe_stall", "x", start=0.0, duration=1.0, magnitude=-1.0)

    def test_plan_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.node_slowdown(0, factor=1.5, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            plan.source_surge("pe-0", factor=0.0, start=0.0, duration=1.0)

    def test_unknown_targets_rejected_at_attach(self):
        topology = small_topology()
        system = SimulatedSystem(
            topology, UdpPolicy(), config=SystemConfig(seed=1, warmup=0.0)
        )
        with pytest.raises(ValueError, match="no node"):
            FaultPlan().node_slowdown(99, 0.5, 1.0, 1.0).attach(system)
        with pytest.raises(ValueError, match="no PE"):
            FaultPlan().pe_stall("ghost", 1.0, 1.0).attach(system)
        with pytest.raises(ValueError, match="no source"):
            FaultPlan().source_surge("ghost", 2.0, 1.0, 1.0).attach(system)

    def test_unknown_kind_rejected(self):
        topology = small_topology()
        system = SimulatedSystem(
            topology, UdpPolicy(), config=SystemConfig(seed=1, warmup=0.0)
        )
        from repro.systems.faults import FaultInjector

        bad = Fault("cosmic_ray", "pe-0", 0.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector(system, [bad])


class TestFaultEffects:
    def make_system(self, policy=None, seed=3):
        topology = small_topology(seed=seed)
        return SimulatedSystem(
            topology,
            policy or AcesPolicy(),
            config=SystemConfig(seed=1, warmup=0.0),
        )

    def test_node_slowdown_applied_and_reverted(self):
        system = self.make_system()
        injector = (
            FaultPlan()
            .node_slowdown(0, factor=0.5, start=1.0, duration=2.0)
            .attach(system)
        )
        system.env.run(until=0.5)
        assert system.nodes[0].cpu_capacity == 1.0
        system.env.run(until=2.0)
        assert system.nodes[0].cpu_capacity == 0.5
        assert system.schedulers[0].capacity == 0.5
        system.env.run(until=4.0)
        assert system.nodes[0].cpu_capacity == 1.0
        assert len(injector.applied) == 2

    def test_pe_stall_stops_processing(self):
        system = self.make_system()
        pe_id = system.topology.graph.ingress_ids[0]
        FaultPlan().pe_stall(pe_id, start=1.0, duration=2.0).attach(system)
        system.env.run(until=1.0)
        consumed_before = system.runtimes[pe_id].counters.consumed
        system.env.run(until=2.8)
        consumed_during = system.runtimes[pe_id].counters.consumed
        assert consumed_during == consumed_before
        system.env.run(until=6.0)
        assert system.runtimes[pe_id].counters.consumed > consumed_during

    def test_pe_stall_recovers_under_udp(self):
        """Baseline policies must also wake from a reverted stall."""
        system = self.make_system(policy=UdpPolicy())
        pe_id = system.topology.graph.ingress_ids[0]
        FaultPlan().pe_stall(pe_id, start=0.5, duration=1.0).attach(system)
        system.env.run(until=5.0)
        assert system.runtimes[pe_id].counters.consumed > 0

    def test_source_surge_increases_arrivals(self):
        system = self.make_system()
        ingress = sorted(system.topology.source_rates)[0]
        FaultPlan().source_surge(
            ingress, factor=5.0, start=0.0, duration=4.0
        ).attach(system)
        baseline = self.make_system()
        system.env.run(until=4.0)
        baseline.env.run(until=4.0)
        surged = next(
            s for s in system.sources if s.stream_id == f"src:{ingress}"
        )
        normal = next(
            s for s in baseline.sources if s.stream_id == f"src:{ingress}"
        )
        assert surged.stats.generated > 2 * normal.stats.generated

    def test_system_survives_combined_faults(self):
        system = self.make_system()
        pe_id = system.topology.graph.ingress_ids[0]
        (
            FaultPlan()
            .node_slowdown(1, factor=0.3, start=0.5, duration=1.0)
            .pe_stall(pe_id, start=1.0, duration=0.5)
            .source_surge(pe_id, factor=3.0, start=2.0, duration=1.0)
            .attach(system)
        )
        report = system.run(4.0)
        assert report.total_output_sdos > 0
