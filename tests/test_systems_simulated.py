"""Tests for the integrated simulated system."""

import numpy as np
import pytest

from repro.core.policies import AcesPolicy, LockStepPolicy, UdpPolicy
from repro.core.targets import fair_share_targets
from repro.graph.dag import ProcessingGraph
from repro.graph.topology import Topology, TopologySpec, generate_topology
from repro.model.params import PEProfile
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system


def small_topology(seed=0, **spec_overrides):
    params = dict(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=4,
        calibrate_rates=False,
    )
    params.update(spec_overrides)
    spec = TopologySpec(**params)
    return generate_topology(spec, np.random.default_rng(seed))


def quick_config(**overrides):
    params = dict(seed=1, warmup=1.0)
    params.update(overrides)
    return SystemConfig(**params)


@pytest.fixture(scope="module")
def shared_topology():
    return small_topology()


class TestConfigValidation:
    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            SystemConfig(buffer_size=0)

    def test_invalid_b0(self):
        with pytest.raises(ValueError):
            SystemConfig(b0_fraction=1.5)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            SystemConfig(dt=0.0)

    def test_invalid_source_kind(self):
        with pytest.raises(ValueError):
            SystemConfig(source_kind="fractal")

    def test_invalid_duty(self):
        with pytest.raises(ValueError):
            SystemConfig(source_duty=0.0)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            SystemConfig(warmup=-1.0)


class TestConstruction:
    def test_runtimes_match_graph(self, shared_topology):
        system = SimulatedSystem(
            shared_topology, UdpPolicy(), config=quick_config()
        )
        assert set(system.runtimes) == set(shared_topology.graph.pe_ids)

    def test_edges_wired(self, shared_topology):
        system = SimulatedSystem(
            shared_topology, UdpPolicy(), config=quick_config()
        )
        for src, dst in shared_topology.graph.edges():
            assert system.runtimes[dst] in system.runtimes[src].downstream

    def test_sources_cover_ingress(self, shared_topology):
        system = SimulatedSystem(
            shared_topology, UdpPolicy(), config=quick_config()
        )
        assert len(system.sources) == len(shared_topology.graph.ingress_ids)

    def test_flow_controllers_only_for_aces(self, shared_topology):
        aces = SimulatedSystem(
            shared_topology, AcesPolicy(), config=quick_config()
        )
        udp = SimulatedSystem(
            shared_topology, UdpPolicy(), config=quick_config()
        )
        assert len(aces.controllers) == len(shared_topology.graph)
        assert udp.controllers == {}

    def test_targets_solved_when_missing(self, shared_topology):
        system = SimulatedSystem(
            shared_topology, UdpPolicy(), config=quick_config()
        )
        assert set(system.targets.cpu) == set(shared_topology.graph.pe_ids)

    def test_explicit_targets_used(self, shared_topology):
        targets = fair_share_targets(
            shared_topology.graph, shared_topology.placement
        )
        system = SimulatedSystem(
            shared_topology, UdpPolicy(), targets=targets,
            config=quick_config(),
        )
        assert system.targets is targets


class TestRun:
    def test_invalid_duration(self, shared_topology):
        system = SimulatedSystem(
            shared_topology, UdpPolicy(), config=quick_config()
        )
        with pytest.raises(ValueError):
            system.run(0.0)

    @pytest.mark.parametrize(
        "policy_cls", [AcesPolicy, UdpPolicy, LockStepPolicy]
    )
    def test_produces_output(self, shared_topology, policy_cls):
        report = run_system(
            shared_topology, policy_cls(), duration=4.0,
            config=quick_config(),
        )
        assert report.total_output_sdos > 0
        assert report.weighted_throughput > 0
        assert report.latency.mean > 0
        assert report.policy == policy_cls().name

    def test_reproducible_given_seed(self, shared_topology):
        a = run_system(
            shared_topology, AcesPolicy(), duration=3.0,
            config=quick_config(seed=7),
        )
        b = run_system(
            shared_topology, AcesPolicy(), duration=3.0,
            config=quick_config(seed=7),
        )
        assert a.weighted_throughput == b.weighted_throughput
        assert a.total_output_sdos == b.total_output_sdos
        assert a.latency.mean == b.latency.mean

    def test_different_seeds_differ(self, shared_topology):
        a = run_system(
            shared_topology, AcesPolicy(), duration=3.0,
            config=quick_config(seed=7),
        )
        b = run_system(
            shared_topology, AcesPolicy(), duration=3.0,
            config=quick_config(seed=8),
        )
        assert a.total_output_sdos != b.total_output_sdos

    def test_cpu_utilization_bounded(self, shared_topology):
        report = run_system(
            shared_topology, UdpPolicy(), duration=3.0,
            config=quick_config(),
        )
        assert 0.0 < report.cpu_utilization <= 1.0 + 1e-6

    def test_occupancy_bounded_by_buffer(self, shared_topology):
        config = quick_config(buffer_size=10)
        report = run_system(
            shared_topology, UdpPolicy(), duration=3.0, config=config
        )
        assert 0.0 <= report.mean_buffer_occupancy <= 10.0

    def test_latency_exceeds_minimum_path_cost(self, shared_topology):
        """End-to-end latency is at least one service time per hop."""
        report = run_system(
            shared_topology, AcesPolicy(), duration=4.0,
            config=quick_config(),
        )
        min_cost = min(
            shared_topology.graph.profile(p).t0
            for p in shared_topology.graph.pe_ids
        )
        assert report.latency.minimum >= min_cost

    @pytest.mark.parametrize("kind", ["constant", "poisson", "onoff"])
    def test_source_kinds_run(self, shared_topology, kind):
        report = run_system(
            shared_topology, UdpPolicy(), duration=3.0,
            config=quick_config(source_kind=kind),
        )
        assert report.source_generated > 0

    def test_overload_causes_loss_somewhere(self):
        topology = small_topology(load_factor=3.0)
        report = run_system(
            topology, UdpPolicy(), duration=4.0, config=quick_config()
        )
        assert report.buffer_drops + report.source_rejections > 0

    def test_underload_is_nearly_lossless_for_aces(self):
        topology = small_topology(load_factor=0.3)
        report = run_system(
            topology, AcesPolicy(), duration=4.0, config=quick_config()
        )
        total_moved = max(1, report.source_generated)
        assert report.source_rejections / total_moved < 0.02

    def test_egress_detail_covers_all_egress(self, shared_topology):
        report = run_system(
            shared_topology, AcesPolicy(), duration=3.0,
            config=quick_config(),
        )
        assert set(report.egress_detail) == set(
            shared_topology.graph.egress_ids
        )


class TestConservation:
    def test_sdo_conservation_per_pe(self, shared_topology):
        """accepted = consumed + still-buffered (+ the one in progress)."""
        system = SimulatedSystem(
            shared_topology, AcesPolicy(), config=quick_config()
        )
        system.env.run(until=5.0)
        for runtime in system.runtimes.values():
            accepted = runtime.buffer.telemetry.accepted
            consumed = runtime.counters.consumed
            buffered = runtime.buffer.occupancy
            in_flight = 1 if runtime._current is not None else 0
            assert accepted == consumed + buffered + in_flight

    def test_emitted_equals_consumed_times_m(self, shared_topology):
        system = SimulatedSystem(
            shared_topology, UdpPolicy(), config=quick_config()
        )
        system.env.run(until=5.0)
        for runtime in system.runtimes.values():
            assert runtime.counters.emitted == runtime.counters.consumed


class TestProfilerAttribution:
    """PhaseProfiler accounting under the batched-delivery kernel path."""

    def run_profiled(self, shared_topology, policy):
        from repro.obs.profiler import PhaseProfiler

        profiler = PhaseProfiler()
        system = SimulatedSystem(
            shared_topology, policy, config=quick_config(),
            profiler=profiler,
        )
        report = system.run(3.0)
        return system, profiler, report

    def test_exclusive_times_sum_to_total(self, shared_topology):
        system, profiler, report = self.run_profiled(
            shared_topology, AcesPolicy()
        )
        assert report.weighted_throughput > 0
        total = profiler.total_seconds
        assert total > 0
        assert sum(profiler.totals.values()) == pytest.approx(total)
        fractions = profiler.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_all_phases_attributed(self, shared_topology):
        """Batched flushes still report under the transport phase."""
        system, profiler, report = self.run_profiled(
            shared_topology, AcesPolicy()
        )
        assert set(profiler.totals) == {
            "event_dispatch",
            "controller_tick",
            "pe_execute",
            "transport",
        }
        assert all(count > 0 for count in profiler.counts.values())
        # One transport bracket per batch flush, not per SDO: strictly
        # fewer pushes than delivered SDOs once batching coalesces.
        delivered = sum(
            r.buffer.telemetry.accepted for r in system.runtimes.values()
        )
        assert 0 < profiler.counts["transport"] <= delivered

    def test_batches_fully_flushed(self, shared_topology):
        """Every batch at or before the clock was flushed; only arrivals
        beyond the stop horizon may remain pending."""
        system, _, _ = self.run_profiled(shared_topology, AcesPolicy())
        now = system.env.now
        assert all(at > now for at in system._delivery_batches)

    def test_profiling_does_not_perturb_results(self, shared_topology):
        _, _, profiled = self.run_profiled(shared_topology, AcesPolicy())
        plain = run_system(
            shared_topology, AcesPolicy(), duration=3.0,
            config=quick_config(),
        )
        assert plain == profiled
