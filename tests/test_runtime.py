"""Tests for the threaded SPC runtime (transport, workers, orchestrator)."""

import threading
import time

import numpy as np
import pytest

from repro.core.policies import AcesPolicy, LockStepPolicy, UdpPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.params import PEProfile
from repro.model.sdo import SDO
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.runtime.transport import Channel
from repro.runtime.worker import RuntimePE


def sdo(i=0):
    return SDO(stream_id="s", origin_time=float(i))


class TestChannel:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Channel(0)

    def test_offer_drop_on_full(self):
        channel = Channel(2)
        assert channel.offer(sdo())
        assert channel.offer(sdo())
        assert not channel.offer(sdo())
        assert channel.stats.dropped == 1
        assert channel.stats.accepted == 2

    def test_get_fifo(self):
        channel = Channel(5)
        items = [sdo(i) for i in range(3)]
        for item in items:
            channel.offer(item)
        popped = [channel.get(timeout=0.1) for _ in range(3)]
        assert [p.sdo_id for p in popped] == [i.sdo_id for i in items]

    def test_get_timeout_returns_none(self):
        channel = Channel(2)
        start = time.monotonic()
        assert channel.get(timeout=0.05) is None
        assert time.monotonic() - start >= 0.04

    def test_put_blocks_until_space(self):
        channel = Channel(1)
        channel.offer(sdo())
        result = {}

        def blocked_put():
            result["ok"] = channel.put(sdo(), timeout=1.0)

        thread = threading.Thread(target=blocked_put)
        thread.start()
        time.sleep(0.05)
        channel.get(timeout=0.1)
        thread.join(timeout=1.0)
        assert result["ok"]

    def test_put_timeout_counts_drop(self):
        channel = Channel(1)
        channel.offer(sdo())
        assert not channel.put(sdo(), timeout=0.05)
        assert channel.stats.dropped == 1

    def test_occupancy_and_free(self):
        channel = Channel(3)
        channel.offer(sdo())
        assert channel.occupancy == 1
        assert channel.free == 2

    def test_concurrent_producers_consumers(self):
        channel = Channel(10)
        received = []
        done = threading.Event()

        def producer():
            for i in range(100):
                while not channel.offer(sdo(i)):
                    time.sleep(0.001)

        def consumer():
            while len(received) < 200:
                item = channel.get(timeout=0.5)
                if item is None:
                    break
                received.append(item)
            done.set()

        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(received) == 200


class TestRuntimePE:
    def make_pe(self, **kwargs):
        defaults = dict(pe_id="pe-0", t0=0.001, t1=0.001, lambda_s=0.0)
        defaults.update(kwargs)
        return RuntimePE(
            PEProfile(**defaults),
            channel_capacity=10,
            rng=np.random.default_rng(0),
            dilation=1.0,
        )

    def test_start_requires_attach(self):
        pe = self.make_pe()
        with pytest.raises(RuntimeError):
            pe.start()

    def test_processes_and_emits_to_egress_sink(self):
        pe = self.make_pe()
        pe.is_egress = True
        outputs = []
        pe.attach(clock=lambda: 0.0, egress_sink=outputs.append)
        pe.allocation = 1.0
        pe.start()
        for i in range(5):
            pe.channel.offer(sdo(i))
        time.sleep(0.3)
        pe.stop()
        assert len(outputs) == 5
        assert pe.consumed == 5

    def test_emits_downstream(self):
        producer = self.make_pe(pe_id="p")
        consumer = self.make_pe(pe_id="c")
        producer.link_downstream(consumer)
        producer.attach(clock=lambda: 0.0)
        producer.allocation = 1.0
        producer.start()
        producer.channel.offer(sdo())
        time.sleep(0.2)
        producer.stop()
        assert consumer.channel.occupancy == 1

    def test_scheduler_protocol_surface(self):
        pe = self.make_pe()
        assert pe.backlog_work == 0.0
        pe.channel.offer(sdo())
        assert pe.backlog_work > 0.0
        assert pe.current_service_time == 0.001
        assert pe.processing_rate(0.5) == pytest.approx(500.0)
        assert pe.cpu_for_output_rate_now(100.0) == pytest.approx(0.1)
        assert not pe.blocked_last_interval

    def test_min_flow_gate_blocks(self):
        producer = self.make_pe(pe_id="p")
        consumer = RuntimePE(
            PEProfile(pe_id="c"),
            channel_capacity=1,
            rng=np.random.default_rng(1),
            dilation=1.0,
        )
        producer.link_downstream(consumer)
        producer.min_flow_gate = True
        producer.attach(clock=lambda: 0.0)
        producer.allocation = 1.0
        consumer.channel.offer(sdo())  # consumer full
        producer.start()
        producer.channel.offer(sdo())
        time.sleep(0.15)
        producer.stop()
        assert producer.consumed == 0  # gated the whole time


class TestSPCRuntime:
    @pytest.fixture(scope="class")
    def topology(self):
        spec = TopologySpec(
            num_nodes=3,
            num_ingress=2,
            num_egress=2,
            num_intermediate=3,
            calibrate_rates=False,
        )
        return generate_topology(spec, np.random.default_rng(0))

    @pytest.mark.parametrize(
        "policy_cls", [AcesPolicy, UdpPolicy, LockStepPolicy]
    )
    def test_end_to_end_produces_output(self, topology, policy_cls):
        runtime = SPCRuntime(
            topology,
            policy_cls(),
            config=RuntimeConfig(seed=3, warmup=0.5, dt=0.05),
        )
        report = runtime.run(duration=1.5)
        assert report.total_output_sdos > 0
        assert report.weighted_throughput > 0
        assert report.policy == policy_cls().name
        assert report.duration == pytest.approx(1.5, abs=0.3)

    def test_invalid_duration(self, topology):
        runtime = SPCRuntime(topology, UdpPolicy())
        with pytest.raises(ValueError):
            runtime.run(0.0)

    def test_latency_measured(self, topology):
        runtime = SPCRuntime(
            topology, AcesPolicy(),
            config=RuntimeConfig(seed=4, warmup=0.5, dt=0.05),
        )
        report = runtime.run(duration=1.5)
        assert report.latency.count > 0
        assert report.latency.mean > 0
