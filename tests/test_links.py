"""Tests for network links and their integration into the system."""

import numpy as np
import pytest

from repro.core.policies import AcesPolicy, UdpPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.links import Link
from repro.model.sdo import SDO
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system


def sdo(size=1.0):
    return SDO(stream_id="s", origin_time=0.0, size=size)


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            Link("l", bandwidth=0.0)
        with pytest.raises(ValueError):
            Link("l", bandwidth=10.0, latency=-1.0)

    def test_serialization_time(self):
        link = Link("l", bandwidth=10.0)
        arrival = link.transfer_completion(sdo(size=5.0), now=1.0)
        assert arrival == pytest.approx(1.5)

    def test_latency_added(self):
        link = Link("l", bandwidth=10.0, latency=0.25)
        arrival = link.transfer_completion(sdo(size=5.0), now=0.0)
        assert arrival == pytest.approx(0.75)

    def test_fifo_serialization_queues(self):
        link = Link("l", bandwidth=1.0)
        first = link.transfer_completion(sdo(size=2.0), now=0.0)
        second = link.transfer_completion(sdo(size=2.0), now=0.0)
        assert first == pytest.approx(2.0)
        assert second == pytest.approx(4.0)

    def test_idle_gap_not_accumulated(self):
        link = Link("l", bandwidth=1.0)
        link.transfer_completion(sdo(size=1.0), now=0.0)
        arrival = link.transfer_completion(sdo(size=1.0), now=10.0)
        assert arrival == pytest.approx(11.0)

    def test_stats(self):
        link = Link("l", bandwidth=2.0)
        link.transfer_completion(sdo(size=4.0), now=0.0)
        assert link.stats.transferred == 1
        assert link.stats.bytes_moved == 4.0
        assert link.stats.busy_time == pytest.approx(2.0)
        assert link.utilization(4.0) == pytest.approx(0.5)

    def test_utilization_zero_time(self):
        assert Link("l", bandwidth=1.0).utilization(0.0) == 0.0

    def test_negative_now_rejected(self):
        link = Link("l", bandwidth=1.0)
        with pytest.raises(ValueError):
            link.transfer_completion(sdo(), now=-1.0)


class TestSystemWithLinks:
    def topology(self):
        spec = TopologySpec(
            num_nodes=3,
            num_ingress=2,
            num_egress=2,
            num_intermediate=4,
            calibrate_rates=False,
        )
        return generate_topology(spec, np.random.default_rng(0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(link_bandwidth=0.0)
        with pytest.raises(ValueError):
            SystemConfig(link_latency=-1.0)

    def test_no_links_by_default(self):
        system = SimulatedSystem(
            self.topology(), UdpPolicy(),
            config=SystemConfig(seed=1, warmup=0.0),
        )
        assert system.links == {}

    def test_links_only_across_nodes(self):
        topology = self.topology()
        system = SimulatedSystem(
            topology, UdpPolicy(),
            config=SystemConfig(seed=1, warmup=0.0, link_bandwidth=1000.0),
        )
        for (src, dst), link in system.links.items():
            assert topology.placement[src] != topology.placement[dst]
        cross_edges = [
            (s, d)
            for s, d in topology.graph.edges()
            if topology.placement[s] != topology.placement[d]
        ]
        assert len(system.links) == len(cross_edges)

    def test_system_runs_with_links(self):
        report = run_system(
            self.topology(), AcesPolicy(), duration=3.0,
            config=SystemConfig(
                seed=1, warmup=1.0, link_bandwidth=10000.0,
                link_latency=0.001,
            ),
        )
        assert report.total_output_sdos > 0

    def test_slow_links_raise_latency(self):
        fast = run_system(
            self.topology(), UdpPolicy(), duration=4.0,
            config=SystemConfig(seed=1, warmup=1.0),
        )
        slow = run_system(
            self.topology(), UdpPolicy(), duration=4.0,
            config=SystemConfig(
                seed=1, warmup=1.0, link_bandwidth=10000.0,
                link_latency=0.1,
            ),
        )
        assert slow.latency.mean > fast.latency.mean + 0.05

    def test_narrow_links_throttle_throughput(self):
        wide = run_system(
            self.topology(), UdpPolicy(), duration=4.0,
            config=SystemConfig(
                seed=1, warmup=1.0, link_bandwidth=100000.0,
            ),
        )
        narrow = run_system(
            self.topology(), UdpPolicy(), duration=4.0,
            config=SystemConfig(seed=1, warmup=1.0, link_bandwidth=5.0),
        )
        assert narrow.total_output_sdos < wide.total_output_sdos
