"""Tests for workload sources (CBR, Poisson, on/off bursty)."""

import numpy as np
import pytest

from repro.model.workload import (
    ConstantRateSource,
    FlashCrowdSource,
    OnOffSource,
    PoissonSource,
    SquareWaveSource,
)
from repro.sim import Environment


def accepting_sink(log):
    def sink(sdo, now):
        log.append((sdo, now))
        return True

    return sink


class TestConstantRateSource:
    def test_rate_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            ConstantRateSource(env, "s", lambda sdo, now: True, rate=0.0)

    def test_deterministic_spacing(self):
        env = Environment()
        log = []
        ConstantRateSource(env, "s", accepting_sink(log), rate=10.0)
        env.run(until=1.05)
        times = [now for _, now in log]
        assert times == pytest.approx([0.1 * (i + 1) for i in range(10)])

    def test_stats_track_admission(self):
        env = Environment()
        pattern = [True, False, True, False]
        calls = {"n": 0}

        def alternating_sink(sdo, now):
            result = pattern[calls["n"] % len(pattern)]
            calls["n"] += 1
            return result

        source = ConstantRateSource(env, "s", alternating_sink, rate=10.0)
        env.run(until=0.45)
        assert source.stats.generated == 4
        assert source.stats.admitted == 2
        assert source.stats.rejected == 2
        assert source.stats.rejection_rate == pytest.approx(0.5)

    def test_origin_time_is_creation_time(self):
        env = Environment()
        log = []
        ConstantRateSource(env, "s", accepting_sink(log), rate=5.0)
        env.run(until=1.0)
        for sdo, now in log:
            assert sdo.origin_time == now

    def test_stream_id_tagging(self):
        env = Environment()
        log = []
        ConstantRateSource(env, "my-stream", accepting_sink(log), rate=10.0)
        env.run(until=0.25)
        assert all(sdo.stream_id == "my-stream" for sdo, _ in log)


class TestPoissonSource:
    def test_rate_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            PoissonSource(
                env, "s", lambda s, n: True, rate=-1.0,
                rng=np.random.default_rng(0),
            )

    def test_mean_rate_approximately_correct(self):
        env = Environment()
        log = []
        PoissonSource(
            env, "s", accepting_sink(log), rate=100.0,
            rng=np.random.default_rng(42),
        )
        env.run(until=50.0)
        measured = len(log) / 50.0
        assert measured == pytest.approx(100.0, rel=0.05)

    def test_reproducible_with_seed(self):
        def run(seed):
            env = Environment()
            log = []
            PoissonSource(
                env, "s", accepting_sink(log), rate=50.0,
                rng=np.random.default_rng(seed),
            )
            env.run(until=2.0)
            return [now for _, now in log]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestOnOffSource:
    def test_validation(self):
        env = Environment()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            OnOffSource(env, "s", lambda s, n: True, peak_rate=0.0,
                        mean_on=1.0, mean_off=1.0, rng=rng)
        with pytest.raises(ValueError):
            OnOffSource(env, "s", lambda s, n: True, peak_rate=10.0,
                        mean_on=0.0, mean_off=1.0, rng=rng)

    def test_mean_rate_property(self):
        env = Environment()
        source = OnOffSource(
            env, "s", lambda s, n: True, peak_rate=100.0,
            mean_on=1.0, mean_off=3.0, rng=np.random.default_rng(0),
        )
        assert source.mean_rate == pytest.approx(25.0)

    def test_long_run_rate_matches_mean(self):
        env = Environment()
        log = []
        source = OnOffSource(
            env, "s", accepting_sink(log), peak_rate=200.0,
            mean_on=0.5, mean_off=0.5, rng=np.random.default_rng(3),
        )
        env.run(until=100.0)
        measured = len(log) / 100.0
        assert measured == pytest.approx(source.mean_rate, rel=0.1)

    def test_burstier_than_poisson(self):
        """Variance of per-window counts far exceeds Poisson's."""

        def window_counts(make_source, windows=200, width=0.25):
            env = Environment()
            log = []
            make_source(env, accepting_sink(log))
            env.run(until=windows * width)
            counts = [0] * windows
            for _, now in log:
                index = min(windows - 1, int(now / width))
                counts[index] += 1
            return counts

        onoff = window_counts(
            lambda env, sink: OnOffSource(
                env, "s", sink, peak_rate=400.0, mean_on=0.5, mean_off=0.5,
                rng=np.random.default_rng(1),
            )
        )
        poisson = window_counts(
            lambda env, sink: PoissonSource(
                env, "s", sink, rate=200.0, rng=np.random.default_rng(1),
            )
        )
        assert np.var(onoff) > 3 * np.var(poisson)


class TestSquareWaveSource:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SquareWaveSource(env, "s", lambda s, n: True, peak_rate=0.0,
                             period=1.0, duty=0.5)
        with pytest.raises(ValueError):
            SquareWaveSource(env, "s", lambda s, n: True, peak_rate=10.0,
                             period=0.0, duty=0.5)
        with pytest.raises(ValueError):
            SquareWaveSource(env, "s", lambda s, n: True, peak_rate=10.0,
                             period=1.0, duty=1.5)

    def test_mean_rate_property(self):
        env = Environment()
        source = SquareWaveSource(
            env, "s", lambda s, n: True, peak_rate=80.0,
            period=2.0, duty=0.25,
        )
        assert source.mean_rate == pytest.approx(20.0)

    def test_fully_deterministic(self):
        def arrivals():
            env = Environment()
            log = []
            SquareWaveSource(
                env, "s", accepting_sink(log), peak_rate=50.0,
                period=1.0, duty=0.4,
            )
            env.run(until=10.0)
            return [now for _, now in log]

        first, second = arrivals(), arrivals()
        assert first == second
        assert len(first) == pytest.approx(50.0 * 0.4 * 10.0, rel=0.1)

    def test_silent_outside_duty_window(self):
        env = Environment()
        log = []
        SquareWaveSource(
            env, "s", accepting_sink(log), peak_rate=100.0,
            period=1.0, duty=0.5,
        )
        env.run(until=4.0)
        for _, now in log:
            # Arrivals land only in the first half of each period.
            assert (now % 1.0) <= 0.5 + 1e-9


class TestFlashCrowdSource:
    def test_validation(self):
        env = Environment()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FlashCrowdSource(env, "s", lambda s, n: True, rate=0.0,
                             surge_start=1.0, surge_duration=1.0,
                             surge_factor=4.0, rng=rng)
        with pytest.raises(ValueError):
            FlashCrowdSource(env, "s", lambda s, n: True, rate=10.0,
                             surge_start=-1.0, surge_duration=1.0,
                             surge_factor=4.0, rng=rng)
        with pytest.raises(ValueError):
            FlashCrowdSource(env, "s", lambda s, n: True, rate=10.0,
                             surge_start=1.0, surge_duration=1.0,
                             surge_factor=0.5, rng=rng)

    def test_current_rate_window(self):
        env = Environment()
        source = FlashCrowdSource(
            env, "s", lambda s, n: True, rate=10.0, surge_start=5.0,
            surge_duration=2.0, surge_factor=4.0,
            rng=np.random.default_rng(0),
        )
        assert source.current_rate(4.9) == 10.0
        assert source.current_rate(5.0) == 40.0
        assert source.current_rate(6.9) == 40.0
        assert source.current_rate(7.0) == 10.0

    def test_surge_window_is_denser(self):
        env = Environment()
        log = []
        FlashCrowdSource(
            env, "s", accepting_sink(log), rate=50.0, surge_start=4.0,
            surge_duration=4.0, surge_factor=5.0,
            rng=np.random.default_rng(7),
        )
        env.run(until=12.0)
        inside = sum(1 for _, now in log if 4.0 <= now < 8.0)
        outside = len(log) - inside
        # 4 s at 250/s vs 8 s at 50/s: the surge window dominates.
        assert inside > 1.5 * outside

    def test_reproducible_with_seed(self):
        def arrivals(seed):
            env = Environment()
            log = []
            FlashCrowdSource(
                env, "s", accepting_sink(log), rate=30.0, surge_start=2.0,
                surge_duration=1.0, surge_factor=3.0,
                rng=np.random.default_rng(seed),
            )
            env.run(until=5.0)
            return [now for _, now in log]

        assert arrivals(9) == arrivals(9)
        assert arrivals(9) != arrivals(10)


class TestRetryAfterBackoff:
    def test_backoff_defers_offers(self):
        env = Environment()
        log = []
        source = ConstantRateSource(env, "s", accepting_sink(log), rate=10.0)
        source.backoff(until=0.5)
        env.run(until=1.0)
        # Offers in [0, 0.5) are withheld, not generated-and-rejected.
        assert source.stats.deferred > 0
        assert source.stats.rejected == 0
        assert all(now >= 0.5 for _, now in log)
        assert source.stats.generated == len(log)

    def test_backoff_horizon_only_extends(self):
        env = Environment()
        source = ConstantRateSource(env, "s", lambda s, n: True, rate=10.0)
        source.backoff(until=2.0)
        source.backoff(until=1.0)  # shorter horizon must not shrink it
        env.run(until=1.5)
        assert source.stats.generated == 0
        assert source.stats.deferred > 0
