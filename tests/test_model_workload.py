"""Tests for workload sources (CBR, Poisson, on/off bursty)."""

import numpy as np
import pytest

from repro.model.workload import ConstantRateSource, OnOffSource, PoissonSource
from repro.sim import Environment


def accepting_sink(log):
    def sink(sdo, now):
        log.append((sdo, now))
        return True

    return sink


class TestConstantRateSource:
    def test_rate_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            ConstantRateSource(env, "s", lambda sdo, now: True, rate=0.0)

    def test_deterministic_spacing(self):
        env = Environment()
        log = []
        ConstantRateSource(env, "s", accepting_sink(log), rate=10.0)
        env.run(until=1.05)
        times = [now for _, now in log]
        assert times == pytest.approx([0.1 * (i + 1) for i in range(10)])

    def test_stats_track_admission(self):
        env = Environment()
        pattern = [True, False, True, False]
        calls = {"n": 0}

        def alternating_sink(sdo, now):
            result = pattern[calls["n"] % len(pattern)]
            calls["n"] += 1
            return result

        source = ConstantRateSource(env, "s", alternating_sink, rate=10.0)
        env.run(until=0.45)
        assert source.stats.generated == 4
        assert source.stats.admitted == 2
        assert source.stats.rejected == 2
        assert source.stats.rejection_rate == pytest.approx(0.5)

    def test_origin_time_is_creation_time(self):
        env = Environment()
        log = []
        ConstantRateSource(env, "s", accepting_sink(log), rate=5.0)
        env.run(until=1.0)
        for sdo, now in log:
            assert sdo.origin_time == now

    def test_stream_id_tagging(self):
        env = Environment()
        log = []
        ConstantRateSource(env, "my-stream", accepting_sink(log), rate=10.0)
        env.run(until=0.25)
        assert all(sdo.stream_id == "my-stream" for sdo, _ in log)


class TestPoissonSource:
    def test_rate_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            PoissonSource(
                env, "s", lambda s, n: True, rate=-1.0,
                rng=np.random.default_rng(0),
            )

    def test_mean_rate_approximately_correct(self):
        env = Environment()
        log = []
        PoissonSource(
            env, "s", accepting_sink(log), rate=100.0,
            rng=np.random.default_rng(42),
        )
        env.run(until=50.0)
        measured = len(log) / 50.0
        assert measured == pytest.approx(100.0, rel=0.05)

    def test_reproducible_with_seed(self):
        def run(seed):
            env = Environment()
            log = []
            PoissonSource(
                env, "s", accepting_sink(log), rate=50.0,
                rng=np.random.default_rng(seed),
            )
            env.run(until=2.0)
            return [now for _, now in log]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestOnOffSource:
    def test_validation(self):
        env = Environment()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            OnOffSource(env, "s", lambda s, n: True, peak_rate=0.0,
                        mean_on=1.0, mean_off=1.0, rng=rng)
        with pytest.raises(ValueError):
            OnOffSource(env, "s", lambda s, n: True, peak_rate=10.0,
                        mean_on=0.0, mean_off=1.0, rng=rng)

    def test_mean_rate_property(self):
        env = Environment()
        source = OnOffSource(
            env, "s", lambda s, n: True, peak_rate=100.0,
            mean_on=1.0, mean_off=3.0, rng=np.random.default_rng(0),
        )
        assert source.mean_rate == pytest.approx(25.0)

    def test_long_run_rate_matches_mean(self):
        env = Environment()
        log = []
        source = OnOffSource(
            env, "s", accepting_sink(log), peak_rate=200.0,
            mean_on=0.5, mean_off=0.5, rng=np.random.default_rng(3),
        )
        env.run(until=100.0)
        measured = len(log) / 100.0
        assert measured == pytest.approx(source.mean_rate, rel=0.1)

    def test_burstier_than_poisson(self):
        """Variance of per-window counts far exceeds Poisson's."""

        def window_counts(make_source, windows=200, width=0.25):
            env = Environment()
            log = []
            make_source(env, accepting_sink(log))
            env.run(until=windows * width)
            counts = [0] * windows
            for _, now in log:
                index = min(windows - 1, int(now / width))
                counts[index] += 1
            return counts

        onoff = window_counts(
            lambda env, sink: OnOffSource(
                env, "s", sink, peak_rate=400.0, mean_on=0.5, mean_off=0.5,
                rng=np.random.default_rng(1),
            )
        )
        poisson = window_counts(
            lambda env, sink: PoissonSource(
                env, "s", sink, rate=200.0, rng=np.random.default_rng(1),
            )
        )
        assert np.var(onoff) > 3 * np.var(poisson)
