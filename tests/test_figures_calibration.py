"""Tests for the per-figure experiment functions and calibration."""

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.calibration import calibration_spec, run_calibration
from repro.experiments.config import ExperimentConfig
from repro.graph.topology import TopologySpec, generate_topology
from repro.runtime.spc import RuntimeConfig


def tiny_config():
    config = ExperimentConfig(
        name="tiny",
        spec=TopologySpec(
            num_nodes=2,
            num_ingress=2,
            num_egress=2,
            num_intermediate=2,
            calibrate_rates=False,
        ),
        duration=2.0,
        replications=1,
    )
    return config.with_system(warmup=1.0)


class TestFigureFunctions:
    def test_figure3_rows(self):
        rows = figures.figure3_latency(
            config=tiny_config(), buffer_sizes=(5, 20)
        )
        assert [row["buffer_size"] for row in rows] == [5, 20]
        for row in rows:
            assert row["aces_latency_ms"] > 0
            assert row["lockstep_latency_ms"] > 0
            assert row["aces_latency_std_ms"] >= 0

    def test_figure4_rows(self):
        rows = figures.figure4_tradeoff(
            config=tiny_config(), buffer_sizes=(5,)
        )
        assert rows[0]["aces_throughput"] > 0
        assert rows[0]["lockstep_throughput"] > 0

    def test_figure5_rows(self):
        rows = figures.figure5_burstiness(
            config=tiny_config(), lambda_s_values=(5.0, 20.0)
        )
        assert [row["lambda_s"] for row in rows] == [5.0, 20.0]
        for row in rows:
            for name in ("aces", "udp", "lockstep"):
                assert row[f"{name}_throughput"] > 0
                assert row[f"{name}_normalized"] > 0

    def test_buffer_sweep_rows(self):
        rows = figures.buffer_sweep(config=tiny_config(), buffer_sizes=(10,))
        row = rows[0]
        assert row["aces_over_udp"] > 0
        assert row["aces_over_lockstep"] > 0

    def test_robustness_rows(self):
        rows = figures.robustness(
            config=tiny_config(), error_levels=(0.0, 0.5)
        )
        assert rows[0]["epsilon"] == 0.0
        assert rows[0]["aces_relative"] == pytest.approx(1.0)
        assert rows[1]["aces_relative"] > 0


class TestCalibration:
    def test_calibration_spec_scaling(self):
        full = calibration_spec(1.0)
        assert full.num_pes == 60
        assert full.num_nodes == 10
        small = calibration_spec(0.2)
        assert small.num_pes < 20
        assert small.num_nodes >= 2

    def test_run_calibration_compares_substrates(self):
        topology = generate_topology(
            calibration_spec(scale=0.15), np.random.default_rng(0)
        )
        from repro.core.policies import UdpPolicy

        rows = run_calibration(
            topology=topology,
            policies=[UdpPolicy()],
            sim_duration=3.0,
            runtime_duration=1.5,
            runtime_config=RuntimeConfig(seed=1, warmup=0.5, dt=0.05),
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.policy == "udp"
        assert row.simulator_throughput > 0
        assert row.runtime_throughput > 0
        assert row.throughput_ratio > 0


class TestCliFigurePath:
    def test_cli_figure_uses_registry(self, capsys, monkeypatch):
        from repro import cli

        calls = {}

        def fake_figure(config=None, jobs=None):
            calls["config"] = config
            calls["jobs"] = jobs
            return [{"x": 1, "y": 2.0}]

        monkeypatch.setitem(cli._FIGURES, "fig3", fake_figure)
        assert cli.main(["figure", "fig3", "--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert calls["config"].spec.num_pes == 60  # quick scale
        assert calls["jobs"] == 4

    def test_cli_figure_full_flag(self, capsys, monkeypatch):
        from repro import cli

        seen = {}

        def fake_figure(config=None, jobs=None):
            seen["config"] = config
            return [{"x": 1}]

        monkeypatch.setitem(cli._FIGURES, "fig4", fake_figure)
        assert cli.main(["figure", "fig4", "--full"]) == 0
        assert seen["config"].spec.num_pes == 200
