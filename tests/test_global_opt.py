"""Tests for the Tier-1 global weighted-throughput optimization."""

import numpy as np
import pytest

from repro.core.global_opt import solve_global_allocation
from repro.core.utility import LinearUtility, LogUtility
from repro.graph.dag import ProcessingGraph
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.params import PEProfile


def two_stage_pipeline(weight=1.0, t=0.01):
    """src (node 0) -> sink (node 1), deterministic service times."""
    graph = ProcessingGraph()
    graph.add_pe(PEProfile(pe_id="src", weight=0.0, t0=t, t1=t, lambda_s=0.0))
    graph.add_pe(
        PEProfile(pe_id="sink", weight=weight, t0=t, t1=t, lambda_s=0.0)
    )
    graph.add_edge("src", "sink")
    placement = {"src": 0, "sink": 1}
    return graph, placement


class TestSimpleInstances:
    def test_single_pipeline_saturates_bottleneck(self):
        graph, placement = two_stage_pipeline()
        result = solve_global_allocation(
            graph, placement, {"src": 1000.0}, utility=LogUtility()
        )
        # Both PEs alone on their nodes: full CPU each, rate 100 SDO/s.
        assert result.targets.cpu["src"] == pytest.approx(1.0, abs=0.01)
        assert result.targets.rate_out["sink"] == pytest.approx(100.0, rel=0.02)

    def test_source_rate_caps_ingress(self):
        graph, placement = two_stage_pipeline()
        result = solve_global_allocation(
            graph, placement, {"src": 30.0}, utility=LogUtility()
        )
        assert result.targets.rate_in["src"] <= 30.0 + 1e-6
        # Downstream never exceeds upstream output (Eq. 5).
        assert (
            result.targets.rate_in["sink"]
            <= result.targets.rate_out["src"] + 1e-6
        )

    def test_flow_constraint_binds_consumer(self):
        """A slow producer limits a fast consumer's useful allocation."""
        graph = ProcessingGraph()
        graph.add_pe(
            PEProfile(pe_id="slow", weight=0.0, t0=0.1, t1=0.1, lambda_s=0.0)
        )
        graph.add_pe(
            PEProfile(
                pe_id="fast", weight=1.0, t0=0.001, t1=0.001, lambda_s=0.0
            )
        )
        graph.add_edge("slow", "fast")
        placement = {"slow": 0, "fast": 1}
        result = solve_global_allocation(
            graph, placement, {"slow": 1e9}, utility=LogUtility()
        )
        # Producer at full CPU makes 10 SDO/s; consumer needs only 1% CPU.
        assert result.targets.rate_out["fast"] == pytest.approx(10.0, rel=0.05)
        assert result.targets.cpu["fast"] < 0.05

    def test_weights_steer_shared_node_allocation(self):
        """Two independent pipelines sharing one node: the heavier-weighted
        egress gets more CPU under the log utility."""
        graph = ProcessingGraph()
        for pe_id, weight in (("a", 4.0), ("b", 1.0)):
            graph.add_pe(
                PEProfile(
                    pe_id=pe_id, weight=weight, t0=0.01, t1=0.01, lambda_s=0.0
                )
            )
        placement = {"a": 0, "b": 0}
        result = solve_global_allocation(
            graph, placement, {"a": 1e9, "b": 1e9}, utility=LogUtility()
        )
        assert result.targets.cpu["a"] > result.targets.cpu["b"]
        total = result.targets.cpu["a"] + result.targets.cpu["b"]
        assert total == pytest.approx(1.0, abs=0.01)

    def test_linear_utility_winner_takes_node(self):
        """With U(x) = x the heavier stream takes the whole shared node."""
        graph = ProcessingGraph()
        for pe_id, weight in (("a", 2.0), ("b", 1.0)):
            graph.add_pe(
                PEProfile(
                    pe_id=pe_id, weight=weight, t0=0.01, t1=0.01, lambda_s=0.0
                )
            )
        placement = {"a": 0, "b": 0}
        result = solve_global_allocation(
            graph, placement, {"a": 1e9, "b": 1e9}, utility=LinearUtility()
        )
        assert result.targets.cpu["a"] == pytest.approx(1.0, abs=0.02)


class TestConstraintsOnRandomInstances:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasibility(self, seed):
        spec = TopologySpec(
            num_nodes=5,
            num_ingress=4,
            num_egress=4,
            num_intermediate=10,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(seed))
        result = solve_global_allocation(
            topology.graph, topology.placement, topology.source_rates
        )
        assert result.max_violation < 1e-4
        result.targets.validate(topology.placement, tolerance=1e-4)
        # Flow constraint per consumer (merged-buffer form of Eq. 5).
        for dst in topology.graph.pe_ids:
            upstream = topology.graph.upstream(dst)
            if not upstream:
                continue
            supply = sum(result.targets.rate_out[u] for u in upstream)
            assert result.targets.rate_in[dst] <= supply + 1e-4
        # Ingress caps.
        for pe_id, rate in topology.source_rates.items():
            assert result.targets.rate_in[pe_id] <= rate + 1e-4

    def test_solvers_agree(self):
        spec = TopologySpec(
            num_nodes=4,
            num_ingress=3,
            num_egress=3,
            num_intermediate=8,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(3))
        slsqp = solve_global_allocation(
            topology.graph, topology.placement, topology.source_rates,
            solver="slsqp",
        )
        gradient = solve_global_allocation(
            topology.graph, topology.placement, topology.source_rates,
            solver="projected_gradient",
        )
        # The penalty/projection method lands within a few percent of the
        # exact SLSQP optimum on random instances.
        assert gradient.objective == pytest.approx(
            slsqp.objective, rel=0.08
        )
        assert gradient.max_violation < 1e-4

    def test_unknown_solver_rejected(self):
        graph, placement = two_stage_pipeline()
        with pytest.raises(ValueError):
            solve_global_allocation(
                graph, placement, {}, solver="simulated-annealing"
            )

    def test_objective_improves_on_fair_share(self):
        """The optimizer beats fair-share on its own (log) objective,
        comparing against a *flow-feasible* version of fair share."""
        import math

        from repro.core.targets import fair_share_targets

        spec = TopologySpec(
            num_nodes=4,
            num_ingress=3,
            num_egress=3,
            num_intermediate=8,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(4))
        graph = topology.graph
        optimized = solve_global_allocation(
            graph, topology.placement, topology.source_rates
        )

        fair = fair_share_targets(graph, topology.placement)
        # Make fair-share rates flow-feasible with a topological sweep.
        rate_out = {}
        for pe_id in graph.topological_order():
            profile = graph.profile(pe_id)
            rate = profile.rate_at(fair.cpu[pe_id])
            if graph.upstream(pe_id):
                rate = min(
                    rate,
                    sum(rate_out[u] for u in graph.upstream(pe_id)),
                )
            else:
                rate = min(rate, topology.source_rates[pe_id])
            rate_out[pe_id] = profile.lambda_m * rate

        def log_objective(rates):
            return sum(
                graph.profile(p).weight * math.log1p(max(0.0, rates[p]))
                for p in graph.pe_ids
            )

        assert optimized.objective >= log_objective(rate_out) - 1e-6

    def test_diagnostics_populated(self):
        graph, placement = two_stage_pipeline()
        result = solve_global_allocation(graph, placement, {"src": 100.0})
        assert result.solver in ("slsqp", "projected_gradient")
        assert result.iterations > 0
        assert result.converged
