"""Smoke tests for the public API surface."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.model",
    "repro.graph",
    "repro.core",
    "repro.systems",
    "repro.runtime",
    "repro.metrics",
    "repro.experiments",
]


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


def test_readme_quickstart_names_exist():
    """Names used in the README snippet are part of the public API."""
    for name in (
        "AcesPolicy",
        "SystemConfig",
        "TopologySpec",
        "UdpPolicy",
        "generate_topology",
        "run_system",
        "solve_global_allocation",
    ):
        assert name in repro.__all__


def test_policy_names_stable():
    """Experiment results key on these names; they are API."""
    from repro.core.policies import (
        AcesPolicy,
        LoadSheddingPolicy,
        LockStepPolicy,
        UdpPolicy,
    )

    assert AcesPolicy().name == "aces"
    assert UdpPolicy().name == "udp"
    assert LockStepPolicy().name == "lockstep"
    assert LoadSheddingPolicy().name == "shedding"


def test_defaults_are_frozen():
    from repro.model.params import DEFAULTS

    with pytest.raises(Exception):
        DEFAULTS.buffer_size = 99  # type: ignore[misc]
