"""LogHistogram: accuracy bounds, merge algebra, and grid behavior."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.hist import LogHistogram


def exact_quantile(samples, q):
    """The rank-``ceil(q*n)`` order statistic the histogram estimates."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestAccuracy:
    def test_percentiles_within_bucket_error_bound(self):
        """Estimates bracket the exact order statistic from above, within
        one bucket's relative width (the documented guarantee)."""
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-3.0, sigma=1.2, size=5000).tolist()
        hist = LogHistogram()
        for value in samples:
            hist.add(value)
        for q in (0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0):
            exact = exact_quantile(samples, q)
            estimate = hist.percentile(q)
            assert exact <= estimate * (1 + 1e-12)
            assert estimate <= exact * hist.growth * (1 + 1e-9)

    def test_single_value(self):
        hist = LogHistogram()
        hist.add(0.25)
        assert 0.25 <= hist.percentile(0.5) <= 0.25 * hist.growth * 1.001
        assert hist.mean == 0.25

    def test_empty_returns_zero(self):
        assert LogHistogram().percentile(0.95) == 0.0
        assert LogHistogram().mean == 0.0

    def test_invalid_quantile_rejected(self):
        hist = LogHistogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_underflow_bucket(self):
        """Values below min_value (incl. zero) report min_value at most."""
        hist = LogHistogram(min_value=1e-3)
        hist.add(0.0)
        hist.add(1e-9)
        assert hist.count == 2
        assert hist.percentile(1.0) == 1e-3

    def test_percentiles_named_dict(self):
        hist = LogHistogram()
        for value in (0.01, 0.02, 0.03):
            hist.add(value)
        named = hist.percentiles((0.50, 0.95, 0.99))
        assert set(named) == {"p50", "p95", "p99"}
        assert named["p50"] <= named["p95"] <= named["p99"]


class TestMerge:
    def test_merge_matches_pooled(self):
        rng = np.random.default_rng(3)
        a_samples = rng.exponential(0.1, size=400).tolist()
        b_samples = rng.exponential(0.5, size=700).tolist()
        a, b, pooled = LogHistogram(), LogHistogram(), LogHistogram()
        for value in a_samples:
            a.add(value)
            pooled.add(value)
        for value in b_samples:
            b.add(value)
            pooled.add(value)
        a.merge(b)
        assert a.count == pooled.count
        assert a.bucket_counts() == pooled.bucket_counts()
        for q in (0.5, 0.95, 0.99):
            assert a.percentile(q) == pooled.percentile(q)

    def test_merge_associative(self):
        rng = np.random.default_rng(11)
        groups = [rng.exponential(0.2, size=100).tolist() for _ in range(3)]

        def hist_of(samples):
            hist = LogHistogram()
            for value in samples:
                hist.add(value)
            return hist

        left = hist_of(groups[0]).merge(hist_of(groups[1]))
        left.merge(hist_of(groups[2]))
        right = hist_of(groups[1]).merge(hist_of(groups[2]))
        combined = hist_of(groups[0]).merge(right)
        assert left.bucket_counts() == combined.bucket_counts()
        assert left.count == combined.count
        assert left.total == pytest.approx(combined.total)

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(min_value=1e-6).merge(LogHistogram(min_value=1e-3))
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=20).merge(
                LogHistogram(buckets_per_decade=10)
            )


class TestCumulative:
    def test_cumulative_buckets_monotone_and_complete(self):
        hist = LogHistogram()
        rng = np.random.default_rng(5)
        for value in rng.exponential(0.05, size=300):
            hist.add(float(value))
        buckets = hist.cumulative_buckets()
        edges = [edge for edge, _ in buckets]
        counts = [count for _, count in buckets]
        assert edges == sorted(edges)
        assert counts == sorted(counts)
        assert counts[-1] == hist.count


@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-7, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    q_lo=st.floats(min_value=0.0, max_value=1.0),
    q_hi=st.floats(min_value=0.0, max_value=1.0),
)
def test_percentile_monotone_in_q(samples, q_lo, q_hi):
    """q <= q' implies percentile(q) <= percentile(q')."""
    if q_lo > q_hi:
        q_lo, q_hi = q_hi, q_lo
    hist = LogHistogram()
    for value in samples:
        hist.add(value)
    assert hist.percentile(q_lo) <= hist.percentile(q_hi)
