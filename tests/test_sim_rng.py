"""Tests for deterministic named random streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RandomStreams, exponential


def test_same_seed_same_name_same_draws():
    a = RandomStreams(seed=7).stream("pe-3")
    b = RandomStreams(seed=7).stream("pe-3")
    assert a.random(10).tolist() == b.random(10).tolist()


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("pe-1").random(10)
    b = streams.stream("pe-2").random(10)
    assert a.tolist() != b.tolist()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random(10)
    b = RandomStreams(seed=2).stream("x").random(10)
    assert a.tolist() != b.tolist()


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("a") is streams.stream("a")


def test_request_order_does_not_matter():
    forward = RandomStreams(seed=3)
    backward = RandomStreams(seed=3)
    f_a = forward.stream("a").random(5)
    f_b = forward.stream("b").random(5)
    b_b = backward.stream("b").random(5)
    b_a = backward.stream("a").random(5)
    assert f_a.tolist() == b_a.tolist()
    assert f_b.tolist() == b_b.tolist()


def test_spawn_children_reproducible_and_distinct():
    parent = RandomStreams(seed=11)
    child1 = parent.spawn("rep-1")
    child2 = parent.spawn("rep-2")
    again = RandomStreams(seed=11).spawn("rep-1")
    assert child1.stream("x").random(5).tolist() == again.stream("x").random(5).tolist()
    assert child1.stream("x").random(5).tolist() != child2.stream("x").random(5).tolist()


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RandomStreams(seed="abc")


def test_exponential_zero_mean():
    rng = np.random.default_rng(0)
    assert exponential(rng, 0.0) == 0.0


def test_exponential_negative_mean_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        exponential(rng, -1.0)


def test_exponential_sample_mean_close():
    rng = np.random.default_rng(42)
    samples = [exponential(rng, 3.0) for _ in range(20000)]
    assert np.mean(samples) == pytest.approx(3.0, rel=0.05)


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_property_streams_reproducible(seed, name):
    a = RandomStreams(seed=seed).stream(name).random(3)
    b = RandomStreams(seed=seed).stream(name).random(3)
    assert a.tolist() == b.tolist()


@given(st.floats(min_value=0.001, max_value=1e6))
def test_property_exponential_non_negative(mean):
    rng = np.random.default_rng(0)
    assert exponential(rng, mean) >= 0.0
