"""Tests for repro.obs: trace recording, gauges, profiling, exporters."""

import csv
import io

import numpy as np
import pytest

from repro.core.policies import AcesPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.obs import (
    ENVELOPE_KEYS,
    EVENT_KINDS,
    GaugeRegistry,
    JsonlRecorder,
    MemoryRecorder,
    NULL_RECORDER,
    NullRecorder,
    PhaseProfiler,
    TraceFilter,
    TraceRecorder,
    read_events_jsonl,
    validate_event,
    write_events_csv,
    write_events_jsonl,
    write_gauges_csv,
)
from repro.cli import main
from repro.sim.engine import Environment
from repro.systems.simulated import SimulatedSystem, SystemConfig

#: The event kinds the acceptance criteria require a traced ACES run to emit.
REQUIRED_KINDS = {
    "r_max",
    "token_bucket",
    "cpu_grant",
    "buffer_occupancy",
    "drop",
    "tier1_resolve",
}


def small_topology(seed=1, load=2.0):
    spec = TopologySpec(
        num_nodes=2, num_ingress=2, num_egress=2, num_intermediate=4,
        load_factor=load, calibrate_rates=False,
    )
    return generate_topology(spec, np.random.default_rng(seed))


class TestTraceFilter:
    def test_empty_admits_everything(self):
        for expression in (None, "", " , "):
            f = TraceFilter.parse(expression)
            assert f.admits("drop", "pe-1", "node-0")
            assert f.admits("gauge", None, None)

    def test_kind_alternatives(self):
        f = TraceFilter.parse("kind=r_max|drop")
        assert f.admits("r_max", "pe-1", None)
        assert f.admits("drop", None, None)
        assert not f.admits("cpu_grant", "pe-1", None)

    def test_pe_and_node_terms(self):
        f = TraceFilter.parse("pe=pe-3,node=node-0")
        assert f.admits("r_max", "pe-3", "node-0")
        assert not f.admits("r_max", "pe-4", "node-0")
        assert not f.admits("r_max", "pe-3", "node-1")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown trace filter key"):
            TraceFilter.parse("stream=s-1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            TraceFilter.parse("kind=r_max|bogus")

    def test_malformed_term_rejected(self):
        with pytest.raises(ValueError, match="not key=value"):
            TraceFilter.parse("r_max")


class TestMemoryRecorder:
    def test_emit_stamps_clock_and_counts(self):
        clock = iter([1.5, 2.5])
        recorder = MemoryRecorder(clock=lambda: next(clock))
        recorder.emit("drop", pe="pe-1", cause="buffer_full")
        recorder.emit("r_max", pe="pe-1", r_max=3.0)
        assert [e["t"] for e in recorder.events] == [1.5, 2.5]
        assert recorder.counts == {"drop": 1, "r_max": 1}
        assert recorder.by_kind("drop")[0]["cause"] == "buffer_full"
        assert len(recorder) == 2

    def test_unbound_clock_stamps_zero(self):
        recorder = MemoryRecorder()
        recorder.emit("drop", pe="pe-1")
        assert recorder.events[0]["t"] == 0.0

    def test_filter_applies_before_recording(self):
        recorder = MemoryRecorder(
            trace_filter=TraceFilter.parse("kind=drop")
        )
        recorder.emit("r_max", pe="pe-1")
        recorder.emit("drop", pe="pe-1")
        assert [e["kind"] for e in recorder.events] == ["drop"]
        assert recorder.counts == {"drop": 1}

    def test_events_are_valid(self):
        recorder = MemoryRecorder(clock=lambda: 0.25)
        recorder.emit("tier1_resolve", reason="initial", objective=1.0)
        assert validate_event(recorder.events[0]) == []


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.emit("drop", pe="pe-1", cause="buffer_full")
        assert not NULL_RECORDER.counts

    def test_hot_paths_never_emit_when_disabled(self):
        """The zero-overhead contract: every instrumented hot path guards
        event construction with ``if recorder.enabled:``, so a run with the
        (default) NullRecorder performs one attribute read and one branch
        per potential event — ``emit`` is never reached.  That structural
        guarantee is what keeps NullRecorder runs within the <2% wall-time
        budget versus the uninstrumented seed."""

        class TrippingNull(NullRecorder):
            def emit(self, kind, pe=None, node=None, **data):
                raise AssertionError(
                    f"emit({kind!r}) called on a disabled recorder"
                )

        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(seed=3, warmup=0.2, buffer_size=10),
            recorder=TrippingNull(),
        )
        report = system.run(1.0)
        assert report.total_output_sdos > 0


class TestJsonlRecorder:
    def test_lazy_open_and_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = JsonlRecorder(str(path), clock=lambda: 0.5)
        assert not path.exists()  # opened lazily on the first event
        recorder.emit("drop", pe="pe-1", cause="shed")
        recorder.emit("gauge", pe="pe-2", name="occupancy", value=4.0)
        recorder.close()
        events = read_events_jsonl(str(path), validate=True)
        assert [e["kind"] for e in events] == ["drop", "gauge"]
        assert events[0]["cause"] == "shed"
        assert events[1]["value"] == 4.0

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as recorder:
            recorder.emit("drop", pe="pe-1")
        assert len(read_events_jsonl(str(path))) == 1

    def test_accepts_open_file_object(self):
        sink = io.StringIO()
        recorder = JsonlRecorder(sink, clock=lambda: 1.0)
        recorder.emit("r_max", pe="pe-1", r_max=2.0)
        sink.seek(0)
        events = read_events_jsonl(sink, validate=True)
        assert events[0]["r_max"] == 2.0


class TestValidateEvent:
    def good(self):
        return {"t": 1.0, "kind": "drop", "pe": "pe-1", "node": None}

    def test_good_event(self):
        assert validate_event(self.good()) == []

    def test_bad_time(self):
        assert validate_event({**self.good(), "t": "later"})
        assert validate_event({**self.good(), "t": -1.0})
        assert validate_event({**self.good(), "t": float("inf")})
        assert validate_event({**self.good(), "t": float("nan")})
        assert validate_event({**self.good(), "t": True})

    def test_bad_kind(self):
        assert validate_event({**self.good(), "kind": "explosion"})
        assert validate_event({"t": 1.0, "pe": None, "node": None})

    def test_bad_labels(self):
        assert validate_event({**self.good(), "pe": 7})
        assert validate_event({**self.good(), "node": 7})

    def test_read_jsonl_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": -1.0, "kind": "drop", "pe": null, "node": null}\n')
        with pytest.raises(ValueError, match="line 1"):
            read_events_jsonl(str(path), validate=True)


class TestExporters:
    def events(self):
        return [
            {"t": 0.0, "kind": "drop", "pe": "pe-1", "node": None,
             "cause": "buffer_full"},
            {"t": 0.1, "kind": "tier1_resolve", "pe": None, "node": None,
             "cpu_targets": {"pe-1": 0.5}},
        ]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(self.events(), str(path)) == 2
        assert read_events_jsonl(str(path), validate=True) == self.events()

    def test_csv_columns_and_payload_union(self, tmp_path):
        path = tmp_path / "events.csv"
        assert write_events_csv(self.events(), str(path)) == 2
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert list(rows[0]) == list(ENVELOPE_KEYS) + [
            "cause", "cpu_targets",
        ]
        assert rows[0]["cause"] == "buffer_full"
        assert rows[0]["cpu_targets"] == ""
        # Structured payloads survive as JSON cells.
        assert rows[1]["cpu_targets"] == '{"pe-1":0.5}'


class TestPhaseProfiler:
    def make(self):
        clock = {"t": 0.0}

        def advance(dt):
            clock["t"] += dt

        return PhaseProfiler(clock=lambda: clock["t"]), advance

    def test_nested_phases_are_exclusive(self):
        profiler, advance = self.make()
        profiler.push("outer")
        advance(1.0)
        profiler.push("inner")
        advance(2.0)
        profiler.pop()
        advance(3.0)
        profiler.pop()
        assert profiler.totals["outer"] == pytest.approx(4.0)
        assert profiler.totals["inner"] == pytest.approx(2.0)
        assert profiler.total_seconds == pytest.approx(6.0)
        assert profiler.counts == {"outer": 1, "inner": 1}

    def test_context_manager(self):
        profiler, advance = self.make()
        with profiler.phase("only"):
            advance(0.5)
        assert profiler.totals["only"] == pytest.approx(0.5)

    def test_fractions_and_rows(self):
        profiler, advance = self.make()
        with profiler.phase("a"):
            advance(3.0)
        with profiler.phase("b"):
            advance(1.0)
        fractions = profiler.fractions()
        assert fractions["a"] == pytest.approx(0.75)
        rows = profiler.report_rows()
        assert [row["phase"] for row in rows] == ["a", "b"]  # heaviest first
        assert "a=3.000s(75%)" in profiler.one_line()

    def test_empty_profiler(self):
        profiler, _ = self.make()
        assert profiler.total_seconds == 0.0
        assert profiler.fractions() == {}
        assert profiler.one_line() == "profile: <empty>"


class TestGaugeRegistry:
    def test_cadence_validation(self):
        with pytest.raises(ValueError):
            GaugeRegistry(Environment(), cadence=0.0)

    def test_duplicate_key_rejected(self):
        registry = GaugeRegistry(Environment())
        registry.register("occupancy", lambda: 0.0, pe="pe-1")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("occupancy", lambda: 1.0, pe="pe-1")
        # Same name under a different label is fine.
        registry.register("occupancy", lambda: 1.0, pe="pe-2")
        assert len(registry) == 2

    def test_samples_on_cadence(self):
        env = Environment()
        state = {"v": 0.0}
        registry = GaugeRegistry(env, cadence=0.5)
        registry.register("level", lambda: state["v"], pe="pe-1")
        registry.start()
        registry.start()  # idempotent

        def bump():
            while True:
                yield env.timeout(0.5)
                state["v"] += 1.0

        env.process(bump())
        env.run(until=2.1)
        series = registry.series("level", pe="pe-1")
        assert series.times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])
        # The sampler was scheduled first, so at each shared timestamp it
        # observes the value from before that tick's bump.
        assert series.values == pytest.approx([0.0, 0.0, 1.0, 2.0, 3.0])

    def test_unknown_series_raises(self):
        registry = GaugeRegistry(Environment())
        with pytest.raises(KeyError, match="no gauge"):
            registry.series("missing")

    def test_recorder_receives_gauge_events(self):
        env = Environment()
        recorder = MemoryRecorder(clock=lambda: env.now)
        registry = GaugeRegistry(env, cadence=1.0, recorder=recorder)
        registry.register("level", lambda: 7.0, node="node-0")
        registry.start()
        env.run(until=2.5)
        events = recorder.by_kind("gauge")
        assert len(events) == 3
        assert events[0]["name"] == "level"
        assert events[0]["value"] == 7.0
        assert events[0]["node"] == "node-0"
        assert all(validate_event(e) == [] for e in events)

    def test_gauges_csv_export(self, tmp_path):
        env = Environment()
        registry = GaugeRegistry(env, cadence=1.0)
        registry.register("level", lambda: 2.0, pe="pe-1")
        registry.start()
        env.run(until=1.5)
        path = tmp_path / "gauges.csv"
        assert write_gauges_csv(registry, str(path)) == 2
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0] == {
            "t": "0.0", "gauge": "level", "pe": "pe-1", "node": "",
            "value": "2.0",
        }


class TestSystemTracing:
    """End-to-end: an overloaded ACES run publishes every required kind."""

    def traced_run(self, **config):
        recorder = MemoryRecorder()
        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(
                seed=3, warmup=0.2, buffer_size=10, **config
            ),
            recorder=recorder,
            gauge_cadence=0.25,
        )
        report = system.run(2.0)
        return recorder, system, report

    def test_all_required_kinds_present(self):
        recorder, _, _ = self.traced_run()
        assert REQUIRED_KINDS | {"gauge"} <= set(recorder.counts)

    def test_every_event_is_schema_valid(self):
        recorder, _, _ = self.traced_run()
        assert len(recorder) > 100
        for event in recorder:
            assert validate_event(event) == []

    def test_event_times_cover_the_run(self):
        recorder, system, _ = self.traced_run()
        times = [e["t"] for e in recorder]
        assert min(times) >= 0.0
        assert max(times) <= system.env.now

    def test_drop_events_carry_pe_and_cause(self):
        recorder, _, report = self.traced_run()
        drops = recorder.by_kind("drop")
        assert drops
        assert all(e["pe"] for e in drops)
        assert all(
            e["cause"] in ("buffer_full", "shed") for e in drops
        )

    def test_tier1_resolve_carries_cpu_targets(self):
        recorder, system, _ = self.traced_run()
        (resolve,) = recorder.by_kind("tier1_resolve")
        assert resolve["reason"] == "initial"
        assert set(resolve["cpu_targets"]) == set(
            system.topology.graph.pe_ids
        )

    def test_reoptimize_emits_further_resolves(self):
        recorder, _, _ = self.traced_run(reoptimize_interval=0.5)
        reasons = [e["reason"] for e in recorder.by_kind("tier1_resolve")]
        assert reasons[0] == "initial"
        assert "reoptimize" in reasons

    def test_profiler_attributes_phases(self):
        profiler = PhaseProfiler()
        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(seed=3, warmup=0.2, buffer_size=10),
            profiler=profiler,
        )
        system.run(1.0)
        for phase in ("event_dispatch", "controller_tick", "pe_execute"):
            assert profiler.totals.get(phase, 0.0) > 0.0
        assert profiler.fractions()["controller_tick"] < 1.0


class TestCliTrace:
    def run_cli(self, tmp_path, *extra):
        path = tmp_path / "out.jsonl"
        argv = [
            "trace", "--pes", "10", "--nodes", "2", "--seed", "0",
            "--load", "2.0", "--buffer", "10",
            "--duration", "2", "--warmup", "0.5",
            "--trace", str(path), *extra,
        ]
        assert main(argv) == 0
        return path

    def test_emits_valid_jsonl_with_required_kinds(self, tmp_path, capsys):
        path = self.run_cli(tmp_path)
        events = read_events_jsonl(str(path), validate=True)
        kinds = {e["kind"] for e in events}
        assert REQUIRED_KINDS <= kinds
        assert kinds <= EVENT_KINDS
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "tier1_resolve=" in out

    def test_filter_restricts_kinds(self, tmp_path):
        path = self.run_cli(tmp_path, "--trace-filter", "kind=r_max|drop")
        kinds = {
            e["kind"]
            for e in read_events_jsonl(str(path), validate=True)
        }
        assert kinds == {"r_max", "drop"}

    def test_csv_format(self, tmp_path):
        path = tmp_path / "out.csv"
        argv = [
            "trace", "--pes", "10", "--nodes", "2",
            "--duration", "1", "--warmup", "0.2",
            "--trace", str(path), "--format", "csv",
            "--trace-filter", "kind=cpu_grant",
        ]
        assert main(argv) == 0
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        assert all(row["kind"] == "cpu_grant" for row in rows)

    def test_gauges_export_and_profile(self, tmp_path, capsys):
        gauges = tmp_path / "gauges.csv"
        self.run_cli(
            tmp_path, "--gauges", str(gauges), "--profile",
            "--trace-filter", "kind=drop",
        )
        out = capsys.readouterr().out
        assert "gauges:" in out
        assert "profile:" in out
        with open(gauges, newline="") as handle:
            assert list(csv.DictReader(handle))

    def test_bad_filter_fails_fast(self, tmp_path, capsys):
        # The CLI converts the TraceFilter ValueError into exit code 2
        # with the parse error on stderr (no traceback for usage errors).
        path = tmp_path / "out.jsonl"
        argv = [
            "trace", "--pes", "10", "--nodes", "2", "--seed", "0",
            "--duration", "2", "--trace", str(path),
            "--trace-filter", "stream=s-1",
        ]
        assert main(argv) == 2
        assert "unknown trace filter key" in capsys.readouterr().err
