"""Tests for Stream Data Objects."""

import pytest

from repro.model.sdo import SDO


def test_ids_are_unique():
    a = SDO(stream_id="s", origin_time=0.0)
    b = SDO(stream_id="s", origin_time=0.0)
    assert a.sdo_id != b.sdo_id


def test_age_measures_from_origin():
    sdo = SDO(stream_id="s", origin_time=2.0)
    assert sdo.age(5.0) == pytest.approx(3.0)


def test_derive_inherits_origin_and_increments_hops():
    parent = SDO(stream_id="src", origin_time=1.5, hops=2)
    child = parent.derive(stream_id="pe-1")
    assert child.origin_time == 1.5
    assert child.hops == 3
    assert child.stream_id == "pe-1"
    assert child.sdo_id != parent.sdo_id


def test_derive_overrides_size():
    parent = SDO(stream_id="src", origin_time=0.0, size=10.0)
    assert parent.derive("pe-1").size == 10.0
    assert parent.derive("pe-1", size=3.0).size == 3.0


def test_merge_takes_earliest_origin():
    parents = [
        SDO(stream_id="a", origin_time=5.0, hops=1),
        SDO(stream_id="b", origin_time=2.0, hops=4),
        SDO(stream_id="c", origin_time=9.0, hops=2),
    ]
    merged = SDO.merge(parents, stream_id="join")
    assert merged.origin_time == 2.0
    assert merged.hops == 5  # max parent hops + 1
    assert merged.stream_id == "join"


def test_merge_empty_rejected():
    with pytest.raises(ValueError):
        SDO.merge([], stream_id="join")


def test_merge_single_parent():
    parent = SDO(stream_id="a", origin_time=1.0)
    merged = SDO.merge([parent], stream_id="j")
    assert merged.origin_time == 1.0
    assert merged.hops == 1
