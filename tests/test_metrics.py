"""Tests for metrics: collectors, weighted throughput, summary stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policies import AcesPolicy
from repro.core.utility import LinearUtility
from repro.graph.topology import TopologySpec, generate_topology
from repro.metrics.collectors import EgressCollector, MetricsReport, _merge_moments
from repro.metrics.stats import (
    StreamingMoments,
    SummaryStats,
    confidence_interval,
    summarize,
)
from repro.metrics.timeseries import ThroughputProbe
from repro.model.sdo import SDO
from repro.systems.simulated import SimulatedSystem, SystemConfig


class TestSummarize:
    def test_empty(self):
        stats = summarize([])
        assert stats == SummaryStats.empty()

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.count == 1

    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(math.sqrt(1.25))
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_confidence_interval_brackets_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0])
        assert low < 2.0 < high

    def test_confidence_interval_degenerate(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)


class TestStreamingMoments:
    def test_matches_batch_summary(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 3.0, size=1000).tolist()
        moments = StreamingMoments()
        for value in values:
            moments.add(value)
        batch = summarize(values)
        assert moments.mean == pytest.approx(batch.mean)
        assert moments.std == pytest.approx(batch.std)
        assert moments.minimum == batch.minimum
        assert moments.maximum == batch.maximum

    def test_empty_moments(self):
        moments = StreamingMoments()
        assert moments.mean == 0.0
        assert moments.variance == 0.0
        assert moments.summary() == SummaryStats.empty()


class TestStreamingMomentsMerge:
    def filled(self, values):
        moments = StreamingMoments()
        for value in values:
            moments.add(value)
        return moments

    def test_merge_matches_batch(self):
        rng = np.random.default_rng(3)
        left = rng.normal(2.0, 1.0, size=300).tolist()
        right = rng.normal(9.0, 4.0, size=40).tolist()
        merged = self.filled(left).merge(self.filled(right))
        batch = summarize(left + right)
        assert merged.count == 340
        assert merged.mean == pytest.approx(batch.mean)
        assert merged.std == pytest.approx(batch.std)
        assert merged.minimum == batch.minimum
        assert merged.maximum == batch.maximum

    def test_merge_returns_self(self):
        moments = self.filled([1.0])
        assert moments.merge(self.filled([2.0])) is moments

    def test_merge_empty_other_is_noop(self):
        moments = self.filled([1.0, 2.0])
        before = moments.summary()
        moments.merge(StreamingMoments())
        assert moments.summary() == before

    def test_merge_into_empty_copies_other(self):
        other = self.filled([3.0, 5.0, 7.0])
        moments = StreamingMoments()
        moments.merge(other)
        assert moments.summary() == other.summary()

    def test_merge_does_not_mutate_other(self):
        other = self.filled([1.0, 4.0])
        before = other.summary()
        self.filled([2.0]).merge(other)
        assert other.summary() == before

    def test_deprecated_shim_warns_and_merges(self):
        into = self.filled([1.0])
        with pytest.warns(DeprecationWarning):
            _merge_moments(into, self.filled([3.0]))
        assert into.count == 2
        assert into.mean == pytest.approx(2.0)


class TestEgressCollector:
    def sdo(self, origin):
        return SDO(stream_id="s", origin_time=origin)

    def test_duplicate_registration_rejected(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        with pytest.raises(ValueError):
            collector.register("e1", 1.0)

    def test_weighted_throughput(self):
        collector = EgressCollector()
        collector.register("e1", 2.0)
        collector.register("e2", 0.5)
        for _ in range(10):
            collector.record("e1", self.sdo(0.0), 1.0)
        for _ in range(4):
            collector.record("e2", self.sdo(0.0), 1.0)
        # Window [0, 2]: (2.0 * 10 + 0.5 * 4) / 2 = 11.
        assert collector.weighted_throughput(2.0) == pytest.approx(11.0)

    def test_zero_window(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        assert collector.weighted_throughput(0.0) == 0.0

    def test_latency_pooled_over_egress(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        collector.register("e2", 1.0)
        collector.record("e1", self.sdo(0.0), 1.0)  # latency 1
        collector.record("e2", self.sdo(0.0), 3.0)  # latency 3
        stats = collector.latency_summary()
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)

    def test_pooled_variance_matches_direct(self):
        rng = np.random.default_rng(1)
        collector = EgressCollector()
        collector.register("e1", 1.0)
        collector.register("e2", 1.0)
        all_latencies = []
        for pe_id, loc in (("e1", 1.0), ("e2", 5.0)):
            for _ in range(200):
                latency = float(rng.exponential(loc))
                collector.record(pe_id, self.sdo(0.0), latency)
                all_latencies.append(latency)
        stats = collector.latency_summary()
        batch = summarize(all_latencies)
        assert stats.mean == pytest.approx(batch.mean)
        assert stats.std == pytest.approx(batch.std)

    def test_weighted_utility_log(self):
        collector = EgressCollector()
        collector.register("e1", 2.0)
        collector.register("e2", 0.5)
        for _ in range(10):
            collector.record("e1", self.sdo(0.0), 1.0)
        for _ in range(4):
            collector.record("e2", self.sdo(0.0), 1.0)
        # Window [0, 2]: rates 5 and 2 -> 2*log(6) + 0.5*log(3).
        expected = 2.0 * math.log(6.0) + 0.5 * math.log(3.0)
        assert collector.weighted_utility(2.0) == pytest.approx(expected)

    def test_weighted_utility_linear_matches_throughput(self):
        collector = EgressCollector()
        collector.register("e1", 2.0)
        for _ in range(6):
            collector.record("e1", self.sdo(0.0), 1.0)
        assert collector.weighted_utility(
            3.0, LinearUtility()
        ) == pytest.approx(collector.weighted_throughput(3.0))

    def test_weighted_utility_zero_window(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        assert collector.weighted_utility(0.0) == 0.0

    def test_reset_discards_warmup(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        for _ in range(100):
            collector.record("e1", self.sdo(0.0), 1.0)
        collector.reset(5.0)
        assert collector.total_output() == 0
        collector.record("e1", self.sdo(5.0), 6.0)
        # Window starts at 5; one SDO over 5 seconds of window at t=10.
        assert collector.weighted_throughput(10.0) == pytest.approx(0.2)


class TestMetricsReport:
    def make_report(self, **overrides):
        params = dict(
            policy="aces",
            duration=10.0,
            weighted_throughput=100.0,
            total_output_sdos=1000,
            latency=summarize([0.1, 0.2]),
            buffer_drops=5,
            source_rejections=10,
            source_generated=100,
            mean_buffer_occupancy=12.0,
        )
        params.update(overrides)
        return MetricsReport(**params)

    def test_input_loss_rate(self):
        assert self.make_report().input_loss_rate == pytest.approx(0.1)

    def test_input_loss_rate_no_input(self):
        report = self.make_report(source_generated=0, source_rejections=0)
        assert report.input_loss_rate == 0.0

    def test_one_line_contains_key_numbers(self):
        line = self.make_report().one_line()
        assert "aces" in line
        assert "100.00" in line

    def test_one_line_reports_weighted_utility(self):
        line = self.make_report(weighted_utility=12.34).one_line()
        assert "wutil=" in line
        assert "12.34" in line

    def test_weighted_utility_defaults_to_zero(self):
        assert self.make_report().weighted_utility == 0.0


class TestThroughputProbeEdgeCases:
    """Degenerate probe configurations from tests/test_metrics.py's remit;
    the happy-path probe tests live in test_placement_opt_timeseries.py."""

    def build_system(self, rate=None):
        spec = TopologySpec(
            num_nodes=2, num_ingress=1, num_egress=1, num_intermediate=2,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(1))
        if rate is not None:
            for pe_id in topology.source_rates:
                topology.source_rates[pe_id] = rate
        return SimulatedSystem(
            topology, AcesPolicy(), config=SystemConfig(seed=2, warmup=0.0)
        )

    def test_window_longer_than_run_yields_no_samples(self):
        system = self.build_system()
        probe = ThroughputProbe(system, window=10.0)
        system.env.run(until=2.0)
        assert probe.samples == []

    def test_zero_egress_output_gives_zero_samples(self):
        # Sources reject rate <= 0, so starve the graph instead: at
        # 0.05 SDO/s the first arrival lands far past this 2 s run.
        system = self.build_system(rate=0.05)
        probe = ThroughputProbe(system, window=0.5)
        system.env.run(until=2.0)
        assert len(probe.samples) >= 3
        assert all(s.output_sdos == 0 for s in probe.samples)
        assert all(s.weighted_throughput == 0.0 for s in probe.samples)
        assert all(s.mean_latency == 0.0 for s in probe.samples)

    def test_probe_attached_mid_run_counts_only_new_output(self):
        system = self.build_system()
        system.env.run(until=3.0)
        already_out = system.collector.total_output()
        probe = ThroughputProbe(system, window=0.5)
        system.env.run(until=6.0)
        assert probe.samples
        assert probe.samples[0].start >= 3.0
        counted = sum(s.output_sdos for s in probe.samples)
        # Pre-attach output must not be re-counted; the window closing
        # exactly at the horizon may not fire, so this is an upper bound.
        assert 0 < counted <= system.collector.total_output() - already_out


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
def test_property_streaming_equals_batch(values):
    moments = StreamingMoments()
    for value in values:
        moments.add(value)
    batch = summarize(values)
    assert moments.mean == pytest.approx(batch.mean, rel=1e-6, abs=1e-6)
    assert moments.std == pytest.approx(batch.std, rel=1e-6, abs=1e-3)
