"""Tests for metrics: collectors, weighted throughput, summary stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.collectors import EgressCollector, MetricsReport
from repro.metrics.stats import (
    StreamingMoments,
    SummaryStats,
    confidence_interval,
    summarize,
)
from repro.model.sdo import SDO


class TestSummarize:
    def test_empty(self):
        stats = summarize([])
        assert stats == SummaryStats.empty()

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.count == 1

    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(math.sqrt(1.25))
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_confidence_interval_brackets_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0])
        assert low < 2.0 < high

    def test_confidence_interval_degenerate(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)


class TestStreamingMoments:
    def test_matches_batch_summary(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 3.0, size=1000).tolist()
        moments = StreamingMoments()
        for value in values:
            moments.add(value)
        batch = summarize(values)
        assert moments.mean == pytest.approx(batch.mean)
        assert moments.std == pytest.approx(batch.std)
        assert moments.minimum == batch.minimum
        assert moments.maximum == batch.maximum

    def test_empty_moments(self):
        moments = StreamingMoments()
        assert moments.mean == 0.0
        assert moments.variance == 0.0
        assert moments.summary() == SummaryStats.empty()


class TestEgressCollector:
    def sdo(self, origin):
        return SDO(stream_id="s", origin_time=origin)

    def test_duplicate_registration_rejected(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        with pytest.raises(ValueError):
            collector.register("e1", 1.0)

    def test_weighted_throughput(self):
        collector = EgressCollector()
        collector.register("e1", 2.0)
        collector.register("e2", 0.5)
        for _ in range(10):
            collector.record("e1", self.sdo(0.0), 1.0)
        for _ in range(4):
            collector.record("e2", self.sdo(0.0), 1.0)
        # Window [0, 2]: (2.0 * 10 + 0.5 * 4) / 2 = 11.
        assert collector.weighted_throughput(2.0) == pytest.approx(11.0)

    def test_zero_window(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        assert collector.weighted_throughput(0.0) == 0.0

    def test_latency_pooled_over_egress(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        collector.register("e2", 1.0)
        collector.record("e1", self.sdo(0.0), 1.0)  # latency 1
        collector.record("e2", self.sdo(0.0), 3.0)  # latency 3
        stats = collector.latency_summary()
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)

    def test_pooled_variance_matches_direct(self):
        rng = np.random.default_rng(1)
        collector = EgressCollector()
        collector.register("e1", 1.0)
        collector.register("e2", 1.0)
        all_latencies = []
        for pe_id, loc in (("e1", 1.0), ("e2", 5.0)):
            for _ in range(200):
                latency = float(rng.exponential(loc))
                collector.record(pe_id, self.sdo(0.0), latency)
                all_latencies.append(latency)
        stats = collector.latency_summary()
        batch = summarize(all_latencies)
        assert stats.mean == pytest.approx(batch.mean)
        assert stats.std == pytest.approx(batch.std)

    def test_reset_discards_warmup(self):
        collector = EgressCollector()
        collector.register("e1", 1.0)
        for _ in range(100):
            collector.record("e1", self.sdo(0.0), 1.0)
        collector.reset(5.0)
        assert collector.total_output() == 0
        collector.record("e1", self.sdo(5.0), 6.0)
        # Window starts at 5; one SDO over 5 seconds of window at t=10.
        assert collector.weighted_throughput(10.0) == pytest.approx(0.2)


class TestMetricsReport:
    def make_report(self, **overrides):
        params = dict(
            policy="aces",
            duration=10.0,
            weighted_throughput=100.0,
            total_output_sdos=1000,
            latency=summarize([0.1, 0.2]),
            buffer_drops=5,
            source_rejections=10,
            source_generated=100,
            mean_buffer_occupancy=12.0,
        )
        params.update(overrides)
        return MetricsReport(**params)

    def test_input_loss_rate(self):
        assert self.make_report().input_loss_rate == pytest.approx(0.1)

    def test_input_loss_rate_no_input(self):
        report = self.make_report(source_generated=0, source_rejections=0)
        assert report.input_loss_rate == 0.0

    def test_one_line_contains_key_numbers(self):
        line = self.make_report().one_line()
        assert "aces" in line
        assert "100.00" in line


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
def test_property_streaming_equals_batch(values):
    moments = StreamingMoments()
    for value in values:
        moments.add(value)
    batch = summarize(values)
    assert moments.mean == pytest.approx(batch.mean, rel=1e-6, abs=1e-6)
    assert moments.std == pytest.approx(batch.std, rel=1e-6, abs=1e-3)
