"""Latency spans: exact closure in sim, disarmed no-op, threaded smoke.

The tentpole invariant: for every egress SDO, the accumulated
queue-wait + service + transit segments telescope to exactly
``now - origin_time``.  In the simulated substrate every segment is a
difference of consecutive stamps from one clock, so the identity holds
to float rounding; the :class:`SpanTracker` records any breach as a
violation and :func:`check_conservation` lifts it into the oracle
report.
"""

import numpy as np
import pytest

from repro.check import check_conservation
from repro.core.policies import AcesPolicy, policy_by_name
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.sdo import SDO
from repro.obs import MemoryRecorder, SpanTracker
from repro.obs.spans import (
    SPAN_EMITTED,
    SPAN_ENQUEUED,
    SPAN_QUEUE,
    SPAN_SERVICE,
    SPAN_TRANSIT,
)
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.simulated import SimulatedSystem, SystemConfig


def small_topology(seed=1, load=2.0):
    spec = TopologySpec(
        num_nodes=2, num_ingress=2, num_egress=2, num_intermediate=4,
        load_factor=load, calibrate_rates=False,
    )
    return generate_topology(spec, np.random.default_rng(seed))


def armed_run(policy="aces", duration=2.0, warmup=0.0, **config):
    recorder = MemoryRecorder()
    spans = SpanTracker(recorder=recorder)
    system = SimulatedSystem(
        small_topology(),
        policy_by_name(policy),
        config=SystemConfig(seed=3, warmup=warmup, buffer_size=10, **config),
        recorder=recorder,
        spans=spans,
    )
    report = system.run(duration)
    return system, recorder, spans, report


class TestSimClosure:
    @pytest.mark.parametrize("policy", ["aces", "udp", "lockstep"])
    def test_closure_exact_all_policies(self, policy):
        system, recorder, spans, report = armed_run(policy=policy)
        assert report.total_output_sdos > 0
        assert spans.violations == []
        # Every egress SDO produced exactly one span observation.
        assert spans.egress_spans == system.collector.total_output()
        assert recorder.counts["span"] == spans.egress_spans

    def test_span_events_telescope(self):
        _, recorder, _, _ = armed_run()
        events = recorder.by_kind("span")
        assert events
        for event in events:
            total = event["queue"] + event["service"] + event["transit"]
            assert total == pytest.approx(event["e2e"], abs=1e-9)
            assert event["queue"] >= 0.0
            assert event["service"] >= 0.0
            assert event["transit"] >= 0.0
            assert event["hops"] >= 1
            assert event["pe"]
            assert event["stream"]

    def test_conservation_checker_is_clean(self):
        system, _, _, _ = armed_run()
        assert check_conservation(system) == []

    def test_segment_histograms_populated(self):
        system, _, spans, _ = armed_run()
        assert spans.queue_wait
        assert spans.service
        assert spans.transit
        # Service time was observed for every SDO a PE consumed after
        # the (zero-length) warmup window.
        observed = sum(h.count for h in spans.service.values())
        popped = sum(
            r.buffer.telemetry.popped for r in system.runtimes.values()
        )
        assert 0 < observed <= popped
        rows = spans.hop_rows()
        assert {row["segment"] for row in rows} >= {
            "queue", "service", "transit",
        }
        for row in rows:
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]

    def test_warmup_reset_keeps_accounting_aligned(self):
        """Span and collector windows reset together, so the egress span
        count still matches total_output for a nonzero warmup."""
        system, _, spans, _ = armed_run(warmup=0.5)
        assert spans.violations == []
        assert spans.egress_spans == system.collector.total_output()
        assert check_conservation(system) == []

    def test_injected_broken_span_is_lifted(self):
        """A hand-broken span trips span_closure and the checker sees it."""
        system, _, spans, _ = armed_run(duration=1.0)
        sdo = SDO(
            stream_id="s-0", origin_time=0.0,
            span=[1.0, 1.0, 1.0, 0.0, 0.0],
        )
        spans.observe_egress("pe-x", sdo, now=1.0)  # 3.0 claimed vs 1.0 e2e
        assert any(
            v["invariant"] == "span_closure" for v in spans.violations
        )
        names = {v.invariant for v in check_conservation(system)}
        assert "span_closure" in names


class TestDisarmed:
    def test_no_span_state_without_tracker(self):
        recorder = MemoryRecorder()
        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(seed=3, warmup=0.0, buffer_size=10),
            recorder=recorder,
        )
        report = system.run(1.5)
        assert report.total_output_sdos > 0
        assert "span" not in recorder.counts
        # The in-flight SDOs never grew a span record.
        for runtime in system.runtimes.values():
            head = runtime.buffer.peek()
            if head is not None:
                assert head.span is None

    def test_disarmed_report_still_has_percentiles(self):
        """e2e percentiles ride the always-on egress histogram and don't
        require arming spans."""
        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(seed=3, warmup=0.0, buffer_size=10),
        )
        report = system.run(1.5)
        pct = report.latency_percentiles
        assert set(pct) == {"p50", "p95", "p99"}
        assert 0 < pct["p50"] <= pct["p95"] <= pct["p99"]


class TestFanout:
    def test_fanout_copy_is_independent(self):
        sdo = SDO(
            stream_id="s-1", origin_time=0.5, size=2.0, hops=3,
            span=[0.1, 0.2, 0.3, 1.0, 1.1],
        )
        clone = sdo.fanout_copy()
        assert clone.stream_id == sdo.stream_id
        assert clone.origin_time == sdo.origin_time
        assert clone.hops == sdo.hops
        assert clone.span == sdo.span
        assert clone.span is not sdo.span
        clone.span[SPAN_QUEUE] += 9.0
        assert sdo.span[SPAN_QUEUE] == 0.1

    def test_fanout_copy_disarmed(self):
        assert SDO(stream_id="s", origin_time=0.0).fanout_copy().span is None


class TestTrackerUnits:
    def test_arrival_then_queue_then_egress(self):
        spans = SpanTracker()
        sdo = SDO(stream_id="s-1", origin_time=1.0)
        spans.observe_arrival("pe-1", sdo, now=1.25)  # transit 0.25
        assert sdo.span[SPAN_TRANSIT] == pytest.approx(0.25)
        assert sdo.span[SPAN_ENQUEUED] == 1.25
        spans.observe_queue("pe-1", sdo, wall=1.75)  # queue 0.5
        assert sdo.span[SPAN_QUEUE] == pytest.approx(0.5)
        spans.observe_service("pe-1", sdo, segment=0.1)
        assert sdo.span[SPAN_SERVICE] == pytest.approx(0.1)
        sdo.span[SPAN_EMITTED] = 1.85
        spans.observe_egress("pe-1", sdo, now=1.85)  # final transit 0
        assert spans.violations == []
        assert spans.egress_spans == 1

    def test_egress_ignores_unarmed_lineage(self):
        """SDOs born before arming (span None) are skipped, not crashed."""
        spans = SpanTracker()
        spans.observe_egress("pe-1", SDO(stream_id="s", origin_time=0.0), 1.0)
        assert spans.egress_spans == 0
        assert spans.violations == []

    def test_reset_clears_everything(self):
        spans = SpanTracker()
        sdo = SDO(stream_id="s-1", origin_time=0.0)
        spans.observe_arrival("pe-1", sdo, now=0.5)
        spans.observe_queue("pe-1", sdo, wall=0.6)
        spans.reset()
        assert not spans.queue_wait
        assert not spans.transit
        assert spans.egress_spans == 0


class TestThreaded:
    @pytest.fixture(scope="class")
    def topology(self):
        spec = TopologySpec(
            num_nodes=2, num_ingress=1, num_egress=1, num_intermediate=3,
            calibrate_rates=False,
        )
        return generate_topology(spec, np.random.default_rng(0))

    def test_threaded_spans_close(self, topology):
        recorder = MemoryRecorder()
        spans = SpanTracker(recorder=recorder, locking=True)
        runtime = SPCRuntime(
            topology,
            AcesPolicy(),
            config=RuntimeConfig(seed=3, warmup=0.3, dt=0.05),
            recorder=recorder,
            spans=spans,
        )
        report = runtime.run(duration=1.5)
        assert report.total_output_sdos > 0
        # Real wall clocks: segments are stamped from the same monotonic
        # reading at hand-offs, so the identity still telescopes exactly.
        assert spans.violations == []
        assert spans.egress_spans > 0
        events = recorder.by_kind("span")
        assert events
        for event in events:
            total = event["queue"] + event["service"] + event["transit"]
            assert total == pytest.approx(event["e2e"], rel=1e-6, abs=1e-6)
        # Report percentiles come from the same always-on histograms.
        pct = report.latency_percentiles
        assert 0 < pct["p50"] <= pct["p95"] <= pct["p99"]
