"""Integration tests: the paper's qualitative results on small systems.

These run full (topology -> tier 1 -> tier 2 -> metrics) pipelines at a
scale small enough for CI, asserting the *shape* of the paper's findings:
who wins, and the direction of the trends.
"""

import numpy as np
import pytest

from repro.core.global_opt import solve_global_allocation
from repro.core.policies import AcesPolicy, LockStepPolicy, UdpPolicy
from repro.core.targets import AllocationTargets
from repro.graph.dag import ProcessingGraph
from repro.graph.topology import Topology, TopologySpec, generate_topology
from repro.model.params import PEProfile
from repro.systems.simulated import SystemConfig, run_system


@pytest.fixture(scope="module")
def contended_topology():
    """A 30-PE / 6-node topology under overload — the paper's regime."""
    spec = TopologySpec(
        num_nodes=6,
        num_ingress=6,
        num_egress=6,
        num_intermediate=18,
        load_factor=1.5,
    )
    return generate_topology(spec, np.random.default_rng(2))


@pytest.fixture(scope="module")
def shared_targets(contended_topology):
    return solve_global_allocation(
        contended_topology.graph,
        contended_topology.placement,
        contended_topology.source_rates,
    ).targets


def run_policy(topology, targets, policy, duration=12.0, **config_overrides):
    params = dict(seed=5, warmup=4.0)
    params.update(config_overrides)
    return run_system(
        topology, policy, duration=duration, targets=targets,
        config=SystemConfig(**params),
    )


class TestPolicyOrdering:
    def test_aces_beats_udp_on_weighted_throughput(
        self, contended_topology, shared_targets
    ):
        aces = run_policy(contended_topology, shared_targets, AcesPolicy())
        udp = run_policy(contended_topology, shared_targets, UdpPolicy())
        assert aces.weighted_throughput > udp.weighted_throughput

    def test_aces_wastes_less_than_udp(
        self, contended_topology, shared_targets
    ):
        aces = run_policy(contended_topology, shared_targets, AcesPolicy())
        udp = run_policy(contended_topology, shared_targets, UdpPolicy())
        assert aces.wasted_work_fraction < udp.wasted_work_fraction

    def test_aces_competitive_with_lockstep(
        self, contended_topology, shared_targets
    ):
        aces = run_policy(contended_topology, shared_targets, AcesPolicy())
        lockstep = run_policy(
            contended_topology, shared_targets, LockStepPolicy()
        )
        assert aces.weighted_throughput > 0.9 * lockstep.weighted_throughput

    def test_throughput_grows_with_buffer_size(
        self, contended_topology, shared_targets
    ):
        small = run_policy(
            contended_topology, shared_targets, AcesPolicy(), buffer_size=4
        )
        large = run_policy(
            contended_topology, shared_targets, AcesPolicy(), buffer_size=50
        )
        assert large.weighted_throughput > small.weighted_throughput

    def test_latency_grows_with_buffer_size(
        self, contended_topology, shared_targets
    ):
        small = run_policy(
            contended_topology, shared_targets, AcesPolicy(), buffer_size=4
        )
        large = run_policy(
            contended_topology, shared_targets, AcesPolicy(), buffer_size=100
        )
        assert large.latency.mean > small.latency.mean


class TestMaxFlowScenario:
    """The paper's Figure-2 scenario: one producer, four consumers with
    heterogeneous entitlements, contention on every consumer node."""

    @pytest.fixture(scope="class")
    def scenario(self):
        graph = ProcessingGraph()
        graph.add_pe(
            PEProfile(pe_id="src", weight=0.0, t0=0.002, t1=0.002, lambda_s=0)
        )
        consumer_rates = {"c1": 10.0, "c2": 20.0, "c3": 20.0, "c4": 30.0}
        service = PEProfile(pe_id="tmp").mean_service_time
        cpu = {"src": 0.2}
        for index, (cid, rate) in enumerate(sorted(consumer_rates.items())):
            graph.add_pe(PEProfile(pe_id=cid, weight=1.0))
            graph.add_edge("src", cid)
            kid = f"bg{index}"
            graph.add_pe(PEProfile(pe_id=kid, weight=0.3))
            cpu[cid] = rate * service
            cpu[kid] = 1.0 - cpu[cid]
        placement = {"src": 0}
        for index, cid in enumerate(sorted(consumer_rates)):
            placement[cid] = index + 1
            placement[f"bg{index}"] = index + 1
        spec = TopologySpec(
            num_nodes=5, num_ingress=5, num_egress=8, num_intermediate=0
        )
        source_rates = {"src": 40.0}
        for index in range(4):
            source_rates[f"bg{index}"] = 500.0
        topology = Topology(
            spec=spec, graph=graph, placement=placement,
            source_rates=source_rates,
        )
        return topology, AllocationTargets(cpu=cpu)

    def test_max_flow_beats_min_flow(self, scenario):
        topology, targets = scenario
        aces = run_policy(
            topology, targets, AcesPolicy(), duration=30.0, buffer_size=10
        )
        lockstep = run_policy(
            topology, targets, LockStepPolicy(), duration=30.0, buffer_size=10
        )
        assert aces.weighted_throughput > lockstep.weighted_throughput

    def test_fast_consumer_not_slaved_to_slowest(self, scenario):
        """Under ACES the fastest consumer (c4) clearly outruns the
        slowest (c1); under Lock-Step the two are pulled together."""
        topology, targets = scenario
        aces = run_policy(
            topology, targets, AcesPolicy(), duration=30.0, buffer_size=10
        )
        lockstep = run_policy(
            topology, targets, LockStepPolicy(), duration=30.0, buffer_size=10
        )
        aces_spread = (
            aces.egress_detail["c4"][1] / max(1, aces.egress_detail["c1"][1])
        )
        lock_spread = (
            lockstep.egress_detail["c4"][1]
            / max(1, lockstep.egress_detail["c1"][1])
        )
        assert aces_spread > lock_spread


class TestStability:
    def test_aces_occupancy_tracks_b0_in_sustained_overload(self):
        """A single saturated pipeline settles near the b0 set-point."""
        graph = ProcessingGraph()
        graph.add_pe(
            PEProfile(pe_id="a", weight=0.0, t0=0.005, t1=0.005, lambda_s=0)
        )
        graph.add_pe(
            PEProfile(pe_id="b", weight=1.0, t0=0.005, t1=0.005, lambda_s=0)
        )
        graph.add_edge("a", "b")
        topology = Topology(
            spec=TopologySpec(
                num_nodes=2, num_ingress=1, num_egress=1, num_intermediate=0
            ),
            graph=graph,
            placement={"a": 0, "b": 1},
            source_rates={"a": 1000.0},
        )
        targets = AllocationTargets(cpu={"a": 1.0, "b": 1.0})
        report = run_policy(
            topology, targets, AcesPolicy(), duration=20.0,
            buffer_size=50, source_kind="constant",
        )
        # b's buffer should sit near b0 = 25; the average over both PEs
        # (a's is pinned at ~50 by overload) must lie between.
        assert 15.0 < report.mean_buffer_occupancy <= 50.0

    def test_aces_robust_to_allocation_errors(
        self, contended_topology, shared_targets
    ):
        """20% target errors cost ACES well under 20% of its throughput."""
        from repro.core.targets import perturb_targets

        noisy = perturb_targets(
            shared_targets, 0.2, np.random.default_rng(11),
            placement=contended_topology.placement,
        )
        clean = run_policy(contended_topology, shared_targets, AcesPolicy())
        perturbed = run_policy(contended_topology, noisy, AcesPolicy())
        assert (
            perturbed.weighted_throughput
            > 0.85 * clean.weighted_throughput
        )
