"""Tests for the discrete-event simulation engine and event primitives."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_run_until_time_advances_clock():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=3.0)


def test_timeout_fires_at_right_time():
    env = Environment()
    fired_at = []

    def proc(env):
        yield env.timeout(3.5)
        fired_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert fired_at == [3.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    results = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        results.append(value)

    env.process(proc(env))
    env.run()
    assert results == ["payload"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for _ in range(4):
            yield env.timeout(2.0)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [2.0, 4.0, 6.0, 8.0]


def test_simultaneous_events_fifo_deterministic():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        env.process(proc(env, tag))
    env.run()
    assert order == list("abcd")


def test_event_succeed_resumes_waiter_with_value():
    env = Environment()
    event = env.event()
    seen = []

    def waiter(env):
        value = yield event
        seen.append(value)

    def trigger(env):
        yield env.timeout(2.0)
        event.succeed(42)

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert seen == [42]


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def waiter(env):
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    def trigger(env):
        yield env.timeout(1.0)
        event.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_surfaces():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_run_until_event_returns_its_value():
    env = Environment()
    done = env.event()

    def proc(env):
        yield env.timeout(4.0)
        done.succeed("result")

    env.process(proc(env))
    assert env.run(until=done) == "result"
    assert env.now == 4.0


def test_run_until_event_never_fires_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_queue_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_allof_waits_for_all_children():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        values = yield AllOf(env, [t1, t2])
        results.append((env.now, sorted(values.values())))

    env.process(proc(env))
    env.run()
    assert results == [(3.0, ["a", "b"])]


def test_anyof_fires_on_first_child():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(9.0, value="slow")
        values = yield AnyOf(env, [t1, t2])
        results.append((env.now, list(values.values())))

    env.process(proc(env))
    env.run()
    assert results == [(1.0, ["fast"])]


def test_condition_operators():
    env = Environment()
    t1 = env.timeout(1.0)
    t2 = env.timeout(2.0)
    assert isinstance(t1 & t2, AllOf)
    t3 = env.timeout(1.0)
    t4 = env.timeout(2.0)
    assert isinstance(t3 | t4, AnyOf)


def test_condition_rejects_foreign_environment():
    env1 = Environment()
    env2 = Environment()
    t1 = env1.timeout(1.0)
    t2 = env2.timeout(1.0)
    with pytest.raises(ValueError):
        AllOf(env1, [t1, t2])


def test_empty_allof_triggers_immediately():
    env = Environment()
    results = []

    def proc(env):
        values = yield AllOf(env, [])
        results.append(values)

    env.process(proc(env))
    env.run()
    assert results == [{}]


def test_process_is_event_waitable():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2.0)
        return "child-result"

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(2.0, "child-result")]


def test_process_yielding_non_event_fails():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_interrupt_raises_with_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def attacker(env, victim_proc):
        yield env.timeout(3.0)
        victim_proc.interrupt(cause="preempt")

    victim_proc = env.process(victim(env))
    env.process(attacker(env, victim_proc))
    env.run()
    assert log == [(3.0, "preempt")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def selfish(env):
        yield env.timeout(0.0)
        try:
            env.active_process.interrupt()
        except RuntimeError as exc:
            errors.append(str(exc))

    env.process(selfish(env))
    env.run()
    assert len(errors) == 1


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(5.0)
        log.append(env.now)

    def attacker(env, victim_proc):
        yield env.timeout(2.0)
        victim_proc.interrupt()

    victim_proc = env.process(victim(env))
    env.process(attacker(env, victim_proc))
    env.run()
    assert log == [7.0]


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    process = env.process(proc(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_active_process_visible_inside_process():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1.0)

    process = env.process(proc(env))
    env.run()
    assert seen == [process]
    assert env.active_process is None
