"""Tests for the utility functions of the Tier-1 objective."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.utility import (
    ExponentialUtility,
    LinearUtility,
    LogUtility,
    get_utility,
)

ALL_UTILITIES = [LinearUtility(), LogUtility(), ExponentialUtility()]


@pytest.mark.parametrize("utility", ALL_UTILITIES, ids=lambda u: u.name)
class TestCommonProperties:
    def test_zero_at_origin_or_nonnegative(self, utility):
        assert utility.value(0.0) == pytest.approx(0.0)

    def test_strictly_increasing(self, utility):
        xs = [0.0, 0.5, 1.0, 2.0, 5.0]
        values = [utility.value(x) for x in xs]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_concave(self, utility):
        for x in (0.0, 1.0, 4.0):
            mid = utility.value(x + 0.5)
            chord = 0.5 * (utility.value(x) + utility.value(x + 1.0))
            assert mid >= chord - 1e-12

    def test_derivative_positive_non_increasing(self, utility):
        derivatives = [utility.derivative(x) for x in (0.0, 1.0, 3.0)]
        assert all(d > 0 for d in derivatives)
        assert derivatives == sorted(derivatives, reverse=True)

    def test_negative_argument_rejected(self, utility):
        with pytest.raises(ValueError):
            utility.value(-1.0)
        with pytest.raises(ValueError):
            utility.derivative(-1.0)

    def test_callable(self, utility):
        assert utility(2.0) == utility.value(2.0)

    def test_derivative_matches_finite_difference(self, utility):
        eps = 1e-6
        for x in (0.5, 2.0, 7.0):
            numeric = (utility.value(x + eps) - utility.value(x - eps)) / (
                2 * eps
            )
            assert utility.derivative(x) == pytest.approx(numeric, rel=1e-4)


class TestSpecifics:
    def test_linear_values(self):
        assert LinearUtility().value(3.5) == 3.5

    def test_linear_inverse_derivative_undefined(self):
        with pytest.raises(ValueError):
            LinearUtility().inverse_derivative(1.0)

    def test_log_values(self):
        assert LogUtility().value(math.e - 1) == pytest.approx(1.0)

    def test_log_inverse_derivative(self):
        utility = LogUtility()
        for y in (0.1, 0.5, 0.9):
            x = utility.inverse_derivative(y)
            assert utility.derivative(x) == pytest.approx(y)

    def test_log_inverse_derivative_clamps(self):
        assert LogUtility().inverse_derivative(2.0) == 0.0

    def test_exponential_saturates_at_one(self):
        assert ExponentialUtility().value(50.0) == pytest.approx(1.0)

    def test_exponential_inverse_derivative(self):
        utility = ExponentialUtility()
        for y in (0.1, 0.5, 0.9):
            x = utility.inverse_derivative(y)
            assert utility.derivative(x) == pytest.approx(y)

    def test_inverse_derivative_rejects_non_positive(self):
        with pytest.raises(ValueError):
            LogUtility().inverse_derivative(0.0)
        with pytest.raises(ValueError):
            ExponentialUtility().inverse_derivative(-1.0)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_utility("linear"), LinearUtility)
        assert isinstance(get_utility("log"), LogUtility)
        assert isinstance(get_utility("exponential"), ExponentialUtility)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown utility"):
            get_utility("quadratic")


@given(st.floats(min_value=0.0, max_value=100.0))
def test_property_log_below_linear(x):
    assert LogUtility().value(x) <= LinearUtility().value(x) + 1e-12


@given(st.floats(min_value=0.0, max_value=100.0))
def test_property_exponential_bounded(x):
    assert 0.0 <= ExponentialUtility().value(x) < 1.0 + 1e-12
