"""Tests for placement optimization and the throughput time-series probe."""

import numpy as np
import pytest

from repro.core.policies import AcesPolicy
from repro.graph.dag import ProcessingGraph
from repro.graph.placement import load_balanced_placement
from repro.graph.placement_opt import optimize_placement
from repro.graph.topology import TopologySpec, generate_topology
from repro.metrics.timeseries import ThroughputProbe, WindowSample
from repro.model.params import PEProfile
from repro.systems.faults import FaultPlan
from repro.systems.simulated import SimulatedSystem, SystemConfig


class TestPlacementOptimization:
    def pathological_instance(self):
        """Two heavy pipelines crammed onto one node, one node idle."""
        graph = ProcessingGraph()
        for name in ("a", "b"):
            graph.add_pe(
                PEProfile(
                    pe_id=f"src-{name}", weight=0.0,
                    t0=0.01, t1=0.01, lambda_s=0.0,
                )
            )
            graph.add_pe(
                PEProfile(
                    pe_id=f"sink-{name}", weight=1.0,
                    t0=0.01, t1=0.01, lambda_s=0.0,
                )
            )
            graph.add_edge(f"src-{name}", f"sink-{name}")
        placement = {
            "src-a": 0, "sink-a": 0, "src-b": 0, "sink-b": 0,
        }
        rates = {"src-a": 1000.0, "src-b": 1000.0}
        return graph, placement, rates

    def test_validation(self):
        graph, placement, rates = self.pathological_instance()
        with pytest.raises(ValueError):
            optimize_placement(graph, placement, rates, num_nodes=0)
        with pytest.raises(ValueError):
            optimize_placement(
                graph, placement, rates, num_nodes=2, max_evaluations=0
            )

    def test_improves_pathological_placement(self):
        graph, placement, rates = self.pathological_instance()
        result = optimize_placement(
            graph, placement, rates, num_nodes=2, max_evaluations=30
        )
        assert result.objective > result.initial_objective * 1.2
        assert result.gain > 0.2
        # The search spread PEs across both nodes.
        assert len(set(result.placement.values())) == 2
        assert result.improvements

    def test_respects_evaluation_budget(self):
        graph, placement, rates = self.pathological_instance()
        result = optimize_placement(
            graph, placement, rates, num_nodes=2, max_evaluations=5
        )
        assert result.evaluations <= 5

    def test_no_regression_from_good_placement(self):
        spec = TopologySpec(
            num_nodes=3, num_ingress=2, num_egress=2, num_intermediate=4,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(0))
        balanced = load_balanced_placement(topology.graph, 3)
        result = optimize_placement(
            topology.graph, balanced, topology.source_rates,
            num_nodes=3, max_evaluations=12,
        )
        assert result.objective >= result.initial_objective - 1e-9

    def test_deterministic_given_rng(self):
        graph, placement, rates = self.pathological_instance()
        a = optimize_placement(
            graph, placement, rates, num_nodes=2, max_evaluations=15,
            rng=np.random.default_rng(5),
        )
        b = optimize_placement(
            graph, placement, rates, num_nodes=2, max_evaluations=15,
            rng=np.random.default_rng(5),
        )
        assert a.placement == b.placement
        assert a.objective == b.objective


class TestThroughputProbe:
    def build_system(self):
        spec = TopologySpec(
            num_nodes=3, num_ingress=2, num_egress=2, num_intermediate=4,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(1))
        return SimulatedSystem(
            topology, AcesPolicy(), config=SystemConfig(seed=2, warmup=0.0)
        )

    def test_window_validation(self):
        system = self.build_system()
        with pytest.raises(ValueError):
            ThroughputProbe(system, window=0.0)

    def test_collects_expected_number_of_windows(self):
        system = self.build_system()
        probe = ThroughputProbe(system, window=0.5)
        system.env.run(until=5.0)
        assert 8 <= len(probe.samples) <= 10

    def test_windows_tile_the_run(self):
        system = self.build_system()
        probe = ThroughputProbe(system, window=1.0)
        system.env.run(until=4.0)
        for earlier, later in zip(probe.samples, probe.samples[1:]):
            assert later.start == pytest.approx(earlier.end)

    def test_throughput_positive_once_warm(self):
        system = self.build_system()
        probe = ThroughputProbe(system, window=1.0)
        system.env.run(until=6.0)
        tail = probe.samples[2:]
        assert all(s.weighted_throughput > 0 for s in tail)

    def test_series_matches_samples(self):
        system = self.build_system()
        probe = ThroughputProbe(system, window=1.0)
        system.env.run(until=3.0)
        series = probe.series()
        assert len(series) == len(probe.samples)
        assert series[0][0] == probe.samples[0].midpoint

    def test_survives_warmup_reset(self):
        system = self.build_system()
        probe = ThroughputProbe(system, window=0.5)
        system.env.run(until=2.0)
        system.collector.reset(system.env.now)
        system.env.run(until=4.0)
        assert all(s.output_sdos >= 0 for s in probe.samples)

    def test_detects_fault_dip_and_recovery(self):
        system = self.build_system()
        pe_id = system.topology.graph.ingress_ids[0]
        # Stall both ingress PEs: output must dip, then recover.
        plan = FaultPlan()
        for ingress in system.topology.graph.ingress_ids:
            plan.pe_stall(ingress, start=4.0, duration=1.5)
        plan.attach(system)
        probe = ThroughputProbe(system, window=0.5)
        system.env.run(until=12.0)

        def mean_thr(t0, t1):
            window = [
                s.weighted_throughput
                for s in probe.samples
                if t0 <= s.midpoint < t1
            ]
            return sum(window) / max(1, len(window))

        before = mean_thr(2.0, 4.0)
        during = mean_thr(4.5, 5.5)
        after = mean_thr(8.0, 12.0)
        assert during < 0.8 * before
        assert after > 0.8 * before
        recovery = probe.recovery_time(5.5, reference=before, fraction=0.8)
        assert recovery is not None

    def test_recovery_time_none_when_never_recovers(self):
        probe = ThroughputProbe.__new__(ThroughputProbe)
        probe.samples = [
            WindowSample(0.0, 1.0, 1.0, 1, 0.0),
            WindowSample(1.0, 2.0, 1.0, 1, 0.0),
        ]
        assert probe.recovery_time(0.0, reference=100.0) is None

    def test_recovery_time_zero_reference(self):
        probe = ThroughputProbe.__new__(ThroughputProbe)
        probe.samples = []
        assert probe.recovery_time(0.0, reference=0.0) == 0.0
