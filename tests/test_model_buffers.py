"""Tests for bounded input buffers and their telemetry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.buffers import InputBuffer
from repro.model.sdo import SDO


def sdo(i=0):
    return SDO(stream_id="s", origin_time=float(i))


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            InputBuffer(0)

    def test_offer_accepts_until_full(self):
        buffer = InputBuffer(2)
        assert buffer.offer(sdo(), 0.0)
        assert buffer.offer(sdo(), 0.0)
        assert not buffer.offer(sdo(), 0.0)
        assert buffer.occupancy == 2
        assert buffer.is_full

    def test_pop_fifo_order(self):
        buffer = InputBuffer(10)
        items = [sdo(i) for i in range(4)]
        for item in items:
            buffer.offer(item, 0.0)
        popped = [buffer.pop(1.0) for _ in range(4)]
        assert [p.sdo_id for p in popped] == [i.sdo_id for i in items]

    def test_pop_empty_raises(self):
        buffer = InputBuffer(2)
        with pytest.raises(IndexError):
            buffer.pop(0.0)

    def test_peek_does_not_remove(self):
        buffer = InputBuffer(2)
        assert buffer.peek() is None
        item = sdo()
        buffer.offer(item, 0.0)
        assert buffer.peek() is item
        assert buffer.occupancy == 1

    def test_free_tracks_occupancy(self):
        buffer = InputBuffer(5)
        buffer.offer(sdo(), 0.0)
        assert buffer.free == 4
        assert not buffer.is_empty

    def test_drain_all(self):
        buffer = InputBuffer(5)
        for i in range(3):
            buffer.offer(sdo(i), 0.0)
        drained = buffer.drain(1.0)
        assert len(drained) == 3
        assert buffer.is_empty

    def test_drain_with_limit(self):
        buffer = InputBuffer(5)
        for i in range(3):
            buffer.offer(sdo(i), 0.0)
        assert len(buffer.drain(1.0, limit=2)) == 2
        assert buffer.occupancy == 1

    def test_len(self):
        buffer = InputBuffer(5)
        buffer.offer(sdo(), 0.0)
        assert len(buffer) == 1


class TestTelemetry:
    def test_drop_counting(self):
        buffer = InputBuffer(1)
        buffer.offer(sdo(), 0.0)
        buffer.offer(sdo(), 0.0)
        assert buffer.telemetry.offered == 2
        assert buffer.telemetry.accepted == 1
        assert buffer.telemetry.dropped == 1
        assert buffer.telemetry.drop_rate() == pytest.approx(0.5)

    def test_drop_rate_empty(self):
        assert InputBuffer(1).telemetry.drop_rate() == 0.0

    def test_high_water_mark(self):
        buffer = InputBuffer(10)
        for i in range(4):
            buffer.offer(sdo(i), 0.0)
        buffer.pop(0.0)
        buffer.pop(0.0)
        assert buffer.telemetry.high_water == 4

    def test_occupancy_integral(self):
        buffer = InputBuffer(10)
        buffer.offer(sdo(), 0.0)  # occupancy 1 from t=0
        buffer.offer(sdo(), 2.0)  # integral += 1 * 2
        buffer.pop(4.0)  # integral += 2 * 2
        buffer.sample(10.0)  # integral += 1 * 6
        assert buffer.telemetry.occupancy_integral == pytest.approx(12.0)
        assert buffer.telemetry.mean_occupancy(10.0) == pytest.approx(1.2)

    def test_time_going_backwards_rejected(self):
        buffer = InputBuffer(10)
        buffer.offer(sdo(), 5.0)
        with pytest.raises(ValueError):
            buffer.offer(sdo(), 4.0)

    def test_popped_counter(self):
        buffer = InputBuffer(10)
        buffer.offer(sdo(), 0.0)
        buffer.pop(0.0)
        assert buffer.telemetry.popped == 1


@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_property_occupancy_invariants(operations):
    """Random offer/pop sequences keep 0 <= occupancy <= capacity and
    conservation: accepted == popped + occupancy."""
    buffer = InputBuffer(7)
    now = 0.0
    for is_offer in operations:
        now += 1.0
        if is_offer:
            buffer.offer(sdo(), now)
        elif not buffer.is_empty:
            buffer.pop(now)
        assert 0 <= buffer.occupancy <= buffer.capacity
    telemetry = buffer.telemetry
    assert telemetry.accepted == telemetry.popped + buffer.occupancy
    assert telemetry.offered == telemetry.accepted + telemetry.dropped


class TestFlushAccounting:
    """Occupancy/drop accounting stays consistent across flush cycles.

    A crash-flush discards *accepted* SDOs, which is a different loss
    class than an overflow rejection (never accepted): the ``flushed``
    counter carries the difference so both conservation identities hold
    after any flush + re-enqueue sequence.
    """

    def test_flush_empties_and_counts(self):
        buffer = InputBuffer(5)
        for i in range(3):
            buffer.offer(sdo(i), 0.0)
        assert buffer.flush(1.0) == 3
        assert buffer.occupancy == 0
        assert buffer.telemetry.flushed == 3
        # dropped stays the all-losses counter (drop metrics include
        # crash losses), flushed carves out the accepted-loss component.
        assert buffer.telemetry.dropped == 3

    def test_identities_after_flush_and_reenqueue(self):
        buffer = InputBuffer(2)
        buffer.offer(sdo(0), 0.0)
        buffer.offer(sdo(1), 0.0)
        buffer.offer(sdo(2), 0.0)  # overflow drop
        buffer.flush(1.0)
        # Re-enqueue after the flush: the buffer must accept again and
        # every counter identity must close.
        assert buffer.offer(sdo(3), 2.0)
        buffer.pop(3.0)
        assert buffer.offer(sdo(4), 4.0)
        telemetry = buffer.telemetry
        assert telemetry.offered == 5
        assert telemetry.dropped == 3  # 1 overflow + 2 flushed
        assert telemetry.flushed == 2
        assert telemetry.offered == telemetry.accepted + (
            telemetry.dropped - telemetry.flushed
        )
        assert telemetry.accepted == (
            telemetry.popped + telemetry.flushed + buffer.occupancy
        )

    def test_flush_empty_buffer_is_free(self):
        buffer = InputBuffer(3)
        assert buffer.flush(0.0) == 0
        assert buffer.telemetry.flushed == 0
        assert buffer.telemetry.dropped == 0

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=200))
    def test_property_identities_with_flushes(self, operations):
        """Random offer/pop/flush sequences keep both identities closed."""
        buffer = InputBuffer(4)
        now = 0.0
        for operation in operations:
            now += 1.0
            if operation == 0:
                buffer.offer(sdo(), now)
            elif operation == 1 and not buffer.is_empty:
                buffer.pop(now)
            elif operation == 2:
                buffer.flush(now)
        telemetry = buffer.telemetry
        assert telemetry.offered == telemetry.accepted + (
            telemetry.dropped - telemetry.flushed
        )
        assert telemetry.accepted == (
            telemetry.popped + telemetry.flushed + buffer.occupancy
        )
