"""Tests for the token-bucket and strict CPU schedulers."""

import numpy as np
import pytest

from repro.core.cpu_control import (
    AcesCpuScheduler,
    StrictProportionalScheduler,
    TokenBucket,
    _proportional_fill,
)
from repro.model.params import PEProfile
from repro.model.pe import PERuntime
from repro.model.sdo import SDO


def make_pe(pe_id, buffered=0, t0=0.002, t1=0.002, **kwargs):
    pe = PERuntime(
        PEProfile(pe_id=pe_id, t0=t0, t1=t1, lambda_s=0.0, **kwargs),
        buffer_capacity=100,
        rng=np.random.default_rng(0),
    )
    for i in range(buffered):
        pe.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
    return pe


class TestTokenBucket:
    def test_fill_caps_at_depth(self):
        bucket = TokenBucket(rate=1.0, depth=0.5, level=0.4)
        bucket.fill(1.0)
        assert bucket.level == 0.5

    def test_spend_reduces_level(self):
        bucket = TokenBucket(rate=1.0, depth=1.0, level=0.5)
        bucket.spend(0.2)
        assert bucket.level == pytest.approx(0.3)

    def test_overspend_rejected(self):
        bucket = TokenBucket(rate=1.0, depth=1.0, level=0.1)
        with pytest.raises(ValueError):
            bucket.spend(0.5)


class TestProportionalFill:
    def test_splits_by_weight(self):
        grants = _proportional_fill(
            {"a": 10.0, "b": 10.0}, {"a": 1.0, "b": 3.0}, 4.0
        )
        assert grants["a"] == pytest.approx(1.0)
        assert grants["b"] == pytest.approx(3.0)

    def test_caps_at_demand_and_redistributes(self):
        grants = _proportional_fill(
            {"a": 0.5, "b": 10.0}, {"a": 1.0, "b": 1.0}, 4.0
        )
        assert grants["a"] == pytest.approx(0.5)
        assert grants["b"] == pytest.approx(3.5)

    def test_budget_not_exceeded(self):
        grants = _proportional_fill(
            {"a": 100.0, "b": 100.0}, {"a": 1.0, "b": 2.0}, 1.0
        )
        assert sum(grants.values()) == pytest.approx(1.0)

    def test_zero_demand_gets_nothing(self):
        grants = _proportional_fill(
            {"a": 0.0, "b": 5.0}, {"a": 10.0, "b": 1.0}, 2.0
        )
        assert grants["a"] == 0.0
        assert grants["b"] == pytest.approx(2.0)

    def test_empty_inputs(self):
        assert _proportional_fill({}, {}, 1.0) == {}

    def test_zero_weights_still_serve_demand(self):
        grants = _proportional_fill(
            {"a": 1.0, "b": 1.0}, {"a": 0.0, "b": 0.0}, 1.0
        )
        assert sum(grants.values()) == pytest.approx(1.0)


class TestAcesCpuScheduler:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AcesCpuScheduler([], {}, capacity=0.0)

    def test_allocations_respect_node_capacity(self):
        pes = [make_pe("a", buffered=50), make_pe("b", buffered=50)]
        scheduler = AcesCpuScheduler(
            pes, {"a": 0.5, "b": 0.5}, capacity=1.0, dt=0.01
        )
        allocations = scheduler.allocate(0.01, {})
        assert sum(allocations.values()) <= 1.0 + 1e-9

    def test_idle_pe_gets_nothing(self):
        pes = [make_pe("a", buffered=0), make_pe("b", buffered=50)]
        scheduler = AcesCpuScheduler(
            pes, {"a": 0.5, "b": 0.5}, capacity=1.0, dt=0.01
        )
        allocations = scheduler.allocate(0.01, {})
        assert allocations["a"] == 0.0
        assert allocations["b"] > 0.0

    def test_occupancy_weighting_favours_congested(self):
        pes = [make_pe("a", buffered=5), make_pe("b", buffered=50)]
        # Give both big targets so tokens aren't binding.
        scheduler = AcesCpuScheduler(
            pes, {"a": 0.5, "b": 0.5}, capacity=0.2, dt=0.01,
            bucket_depth_intervals=1000.0,
        )
        allocations = scheduler.allocate(0.01, {})
        assert allocations["b"] > allocations["a"]

    def test_eq8_cap_bounds_allocation(self):
        pe = make_pe("a", buffered=100)
        scheduler = AcesCpuScheduler(
            [pe], {"a": 1.0}, capacity=1.0, dt=0.01
        )
        # Output cap 100 SDO/s at t=2 ms and lambda_m=1 -> cpu cap 0.2.
        allocations = scheduler.allocate(0.01, {"a": 100.0})
        assert allocations["a"] <= 0.2 + 1e-9

    def test_zero_cap_blocks_pe(self):
        pe = make_pe("a", buffered=100)
        scheduler = AcesCpuScheduler([pe], {"a": 1.0}, dt=0.01)
        allocations = scheduler.allocate(0.01, {"a": 0.0})
        assert allocations["a"] == 0.0

    def test_work_conserving_round_uses_leftover(self):
        # 'a' is token-poor (tiny target) but has lots of work; with
        # work conservation it should receive most of the node.
        pe = make_pe("a", buffered=100)
        scheduler = AcesCpuScheduler(
            [pe], {"a": 0.01}, capacity=1.0, dt=0.01, work_conserving=True
        )
        allocations = scheduler.allocate(0.01, {})
        assert allocations["a"] > 0.5

    def test_strict_tokens_without_work_conservation(self):
        pe = make_pe("a", buffered=100)
        scheduler = AcesCpuScheduler(
            [pe], {"a": 0.01}, capacity=1.0, dt=0.01, work_conserving=False
        )
        # Drain the initial half-full bucket first.
        for _ in range(30):
            allocations = scheduler.allocate(0.01, {})
            scheduler.settle("a", allocations["a"] * 0.01, 0.01)
        # Now the grant is limited to roughly the fill rate.
        assert allocations["a"] <= 0.05

    def test_settle_spends_tokens(self):
        pe = make_pe("a", buffered=100)
        scheduler = AcesCpuScheduler([pe], {"a": 0.5}, dt=0.01)
        before = scheduler.token_level("a")
        scheduler.settle("a", before / 2, 0.01)
        assert scheduler.token_level("a") == pytest.approx(before / 2)

    def test_long_term_average_tracks_target_under_contention(self):
        """Two always-busy PEs with unequal targets split the node 50/50
        in occupancy terms but tokens keep long-term shares near targets
        when both are equally backlogged and capacity is scarce."""
        pes = [make_pe("a", buffered=100), make_pe("b", buffered=100)]
        scheduler = AcesCpuScheduler(
            pes, {"a": 0.2, "b": 0.8}, capacity=1.0, dt=0.01,
            work_conserving=False, bucket_depth_intervals=5.0,
        )
        totals = {"a": 0.0, "b": 0.0}
        for _ in range(500):
            allocations = scheduler.allocate(0.01, {})
            for pe_id, cpu in allocations.items():
                totals[pe_id] += cpu * 0.01
                scheduler.settle(pe_id, cpu * 0.01, 0.01)
        share_a = totals["a"] / (totals["a"] + totals["b"])
        assert share_a == pytest.approx(0.2, abs=0.05)


class TestStrictProportionalScheduler:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StrictProportionalScheduler([], {}, capacity=-1.0)

    def test_allocates_by_target(self):
        pes = [make_pe("a", buffered=50), make_pe("b", buffered=50)]
        scheduler = StrictProportionalScheduler(pes, {"a": 0.25, "b": 0.75})
        allocations = scheduler.allocate(0.01)
        assert allocations["a"] == pytest.approx(0.25)
        assert allocations["b"] == pytest.approx(0.75)

    def test_blocked_pe_share_redistributed(self):
        pes = [make_pe("a", buffered=50), make_pe("b", buffered=50)]
        scheduler = StrictProportionalScheduler(pes, {"a": 0.5, "b": 0.5})
        allocations = scheduler.allocate(0.01, blocked={"a"})
        assert allocations["a"] == 0.0
        assert allocations["b"] == pytest.approx(1.0)

    def test_idle_pe_share_redistributed(self):
        pes = [make_pe("a", buffered=0), make_pe("b", buffered=50)]
        scheduler = StrictProportionalScheduler(pes, {"a": 0.5, "b": 0.5})
        allocations = scheduler.allocate(0.01)
        assert allocations["b"] == pytest.approx(1.0)

    def test_settle_is_noop(self):
        pes = [make_pe("a", buffered=5)]
        scheduler = StrictProportionalScheduler(pes, {"a": 1.0})
        scheduler.settle("a", 123.0, 0.01)  # must not raise
