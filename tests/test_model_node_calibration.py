"""Tests for processing nodes and empirical rate calibration."""

import numpy as np
import pytest

from repro.model.calibration import (
    calibrated_slope,
    calibrate_profile,
    clear_cache,
    effective_rate,
)
from repro.model.node import ProcessingNode
from repro.model.params import PEProfile
from repro.model.pe import PERuntime
from repro.model.sdo import SDO


def make_runtime(pe_id="pe-0", **kwargs):
    defaults = dict(pe_id=pe_id)
    defaults.update(kwargs)
    return PERuntime(
        PEProfile(**defaults), buffer_capacity=10,
        rng=np.random.default_rng(0),
    )


class TestProcessingNode:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ProcessingNode("n", cpu_capacity=0.0)

    def test_place_and_list(self):
        node = ProcessingNode("n0")
        node.place(make_runtime("a"))
        node.place(make_runtime("b"))
        assert node.pe_ids == ["a", "b"]

    def test_duplicate_placement_rejected(self):
        node = ProcessingNode("n0")
        node.place(make_runtime("a"))
        with pytest.raises(ValueError):
            node.place(make_runtime("a"))

    def test_total_backlog(self):
        node = ProcessingNode("n0")
        pe = make_runtime("a", t0=0.002, t1=0.002, lambda_s=0.0)
        node.place(pe)
        pe.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        assert node.total_backlog_work() == pytest.approx(0.002)


class TestCalibration:
    def setup_method(self):
        clear_cache()

    def test_effective_rate_constant_profile(self):
        profile = PEProfile(pe_id="p", t0=0.01, t1=0.01)
        rate = effective_rate(profile, cpu=1.0, num_sdos=500)
        assert rate == pytest.approx(100.0, rel=0.01)

    def test_effective_rate_scales_with_cpu(self):
        profile = PEProfile(pe_id="p", t0=0.01, t1=0.01)
        full = effective_rate(profile, cpu=1.0, num_sdos=500)
        half = effective_rate(profile, cpu=0.5, num_sdos=500)
        assert half == pytest.approx(full / 2, rel=0.05)

    def test_invalid_cpu_rejected(self):
        profile = PEProfile(pe_id="p")
        with pytest.raises(ValueError):
            effective_rate(profile, cpu=0.0)
        with pytest.raises(ValueError):
            effective_rate(profile, cpu=1.5)

    def test_bursty_rate_between_bounds(self):
        """The measured rate lies between 1/E[T] and the arithmetic mean."""
        profile = PEProfile(pe_id="p", t0=0.002, t1=0.020, lambda_s=3.0)
        slope = calibrated_slope(profile)
        lower = 1.0 / profile.per_sdo_state_mix_cost  # ~91
        upper = 1.0 / profile.mean_service_time  # ~275
        assert lower * 0.9 < slope < upper * 1.3

    def test_long_dwell_limit_approaches_arithmetic_mean(self):
        profile = PEProfile(pe_id="p", lambda_s=200.0)
        slope = calibrated_slope(profile, num_sdos=20000)
        assert slope == pytest.approx(1.0 / profile.mean_service_time, rel=0.3)

    def test_slope_scales_inversely_with_service_scale(self):
        base = PEProfile(pe_id="p", t0=0.002, t1=0.020)
        doubled = PEProfile(pe_id="p", t0=0.004, t1=0.040)
        assert calibrated_slope(doubled) == pytest.approx(
            calibrated_slope(base) / 2.0
        )

    def test_cache_hit_is_deterministic(self):
        profile = PEProfile(pe_id="p", lambda_s=7.0)
        assert calibrated_slope(profile) == calibrated_slope(profile)

    def test_calibrate_profile_attaches_slope(self):
        profile = PEProfile(pe_id="p")
        calibrated = calibrate_profile(profile)
        assert calibrated.calibrated_rate_slope is not None
        assert calibrated.rate_slope == calibrated.calibrated_rate_slope
        assert profile.calibrated_rate_slope is None  # original untouched
