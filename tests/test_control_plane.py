"""Tests for the repro.control package: policy hooks, shims, plane state.

Covers the satellite guarantees of the control-plane extraction:

* policy factories (gate, admission filter, scheduler) resolve through
  :class:`~repro.control.plane.ControlPlane` hook points and behave;
* feedback aggregation (Eq. 8 max vs min ablation) is resolved exactly
  once, in the plane — never re-derived per tick;
* the deprecated ``SimulatedSystem.set_gate / suspend_node /
  resume_node`` surface forwards to the plane unchanged (the chaos
  harness depends on it);
* ``run_system`` / ``run_runtime`` keep their public signatures.
"""

import inspect

import numpy as np
import pytest

from repro.control import ControlPlane, NodeController
from repro.core.policies import (
    AcesPolicy,
    LoadSheddingPolicy,
    LockStepPolicy,
    UdpPolicy,
)
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.sdo import SDO
from repro.runtime.spc import RuntimeConfig, SPCRuntime, run_runtime
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system


def small_topology(seed=0, **spec_overrides):
    params = dict(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=4,
        calibrate_rates=False,
    )
    params.update(spec_overrides)
    spec = TopologySpec(**params)
    return generate_topology(spec, np.random.default_rng(seed))


def build_system(policy, **config_overrides):
    params = dict(seed=1, warmup=0.5, dt=0.02)
    params.update(config_overrides)
    return SimulatedSystem(
        small_topology(), policy, config=SystemConfig(**params)
    )


class CountingAcesPolicy(AcesPolicy):
    """Counts aggregate_feedback() resolutions (must be exactly one)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.aggregate_calls = 0

    def aggregate_feedback(self):
        self.aggregate_calls += 1
        return super().aggregate_feedback()


class TestAggregationResolvedOnce:
    def test_resolved_once_at_construction(self):
        policy = CountingAcesPolicy()
        system = build_system(policy)
        assert policy.aggregate_calls == 1
        system.run(0.5)
        # Hundreds of control ticks later: still the single resolution.
        assert policy.aggregate_calls == 1

    def test_resolved_once_in_runtime(self):
        policy = CountingAcesPolicy()
        SPCRuntime(
            small_topology(), policy, config=RuntimeConfig(seed=1)
        )
        assert policy.aggregate_calls == 1

    def test_min_ablation_reaches_plane(self):
        system = build_system(AcesPolicy(aggregation="min"))
        assert system.plane.aggregate_max is False
        assert all(
            c.aggregate_max is False
            for c in system.plane.node_controllers
        )

    def test_non_feedback_policy_never_asks(self):
        policy = LockStepPolicy()
        calls = []
        original = policy.aggregate_feedback
        policy.aggregate_feedback = lambda: calls.append(1) or original()
        system = build_system(policy)
        system.run(0.3)
        assert calls == []


class TestGateHookPoint:
    def test_lockstep_gate_blocks_on_full_downstream(self):
        system = build_system(LockStepPolicy())
        plane = system.plane
        # Find a PE with downstream consumers.
        pe = next(
            r for r in system.runtimes.values() if r.downstream
        )
        gate = plane.gates[pe.pe_id]
        assert gate is not None
        assert gate(pe) is True  # all buffers empty: clear to process
        consumer = pe.downstream[0]
        for i in range(consumer.buffer.capacity):
            consumer.ingest(SDO(stream_id="t", origin_time=0.0), 0.0)
        assert gate(pe) is False  # a full downstream blocks min-flow

    def test_feedback_policies_have_no_gates(self):
        system = build_system(AcesPolicy())
        assert all(g is None for g in system.plane.gates.values())

    def test_gate_travels_into_control_records(self):
        system = build_system(LockStepPolicy())
        for controller in system.plane.node_controllers:
            for record in controller.records:
                assert record.gate is system.plane.gates[record.pe_id]


class TestAdmissionHookPoint:
    def test_shedding_filter_installed_for_every_pe(self):
        system = build_system(LoadSheddingPolicy(threshold=0.5))
        filters = system.plane.admission_filters
        assert set(filters) == set(system.runtimes)
        assert all(f is not None for f in filters.values())

    def test_other_policies_install_no_filter(self):
        for policy in (AcesPolicy(), UdpPolicy(), LockStepPolicy()):
            system = build_system(policy)
            assert all(
                f is None
                for f in system.plane.admission_filters.values()
            )

    def test_filter_admits_below_threshold(self):
        system = build_system(LoadSheddingPolicy(threshold=0.5))
        pe = next(iter(system.runtimes.values()))
        admit = system.plane.admission_filters[pe.pe_id]
        assert pe.buffer.occupancy == 0
        sdo = SDO(stream_id="t", origin_time=0.0)
        assert all(admit(pe, sdo) for _ in range(50))

    def test_filter_sheds_as_buffer_fills(self):
        system = build_system(LoadSheddingPolicy(threshold=0.2, seed=7))
        pe = next(iter(system.runtimes.values()))
        # Fill to one below capacity: drop probability approaches 1.
        for _ in range(pe.buffer.capacity - 1):
            pe.ingest(SDO(stream_id="t", origin_time=0.0), 0.0)
        admit = system.plane.admission_filters[pe.pe_id]
        sdo = SDO(stream_id="t", origin_time=0.0)
        decisions = [admit(pe, sdo) for _ in range(200)]
        assert decisions.count(False) > 150

    def test_dataplane_counts_shed_drops(self):
        system = build_system(LoadSheddingPolicy(threshold=0.1, seed=3))
        pe = next(iter(system.runtimes.values()))
        for _ in range(pe.buffer.capacity - 1):
            pe.ingest(SDO(stream_id="t", origin_time=0.0), 0.0)
        before = system.dataplane.shed_drops
        for _ in range(100):
            system.dataplane.admit(
                pe, SDO(stream_id="t", origin_time=0.0), 0.0
            )
        assert system.dataplane.shed_drops > before

    def test_shedding_end_to_end_run(self):
        report = run_system(
            small_topology(),
            LoadSheddingPolicy(threshold=0.3),
            duration=1.0,
            config=SystemConfig(seed=2, warmup=0.5),
        )
        assert report.policy == "shedding"
        assert report.total_output_sdos > 0


class TestDeprecatedShims:
    def test_set_gate_forwards_to_plane(self):
        system = build_system(AcesPolicy())
        pe_id = next(iter(system.runtimes))
        sentinel = lambda pe: False  # noqa: E731
        system.set_gate(pe_id, sentinel)
        assert system.plane.gates[pe_id] is sentinel
        assert system.gates[pe_id] is sentinel
        # ...and into the live control record the tick loop reads.
        record = next(
            r
            for c in system.plane.node_controllers
            for r in c.records
            if r.pe_id == pe_id
        )
        assert record.gate is sentinel
        system.set_gate(pe_id, None)
        assert record.gate is None

    def test_suspend_resume_forward_to_plane(self):
        system = build_system(AcesPolicy())
        assert system._node_paused == [False] * len(system.nodes)
        system.suspend_node(1)
        assert system.plane.paused[1] is True
        assert system._node_paused[1] is True
        system.resume_node(1)
        assert system.plane.paused[1] is False

    def test_suspended_node_skips_ticks(self):
        system = build_system(AcesPolicy())
        system.suspend_node(0)
        system.run(0.3)
        assert system.plane.node_controllers[0].ticks == 0
        assert system.plane.node_controllers[1].ticks > 0

    def test_bus_swap_reaches_controllers(self):
        """Fault injection swaps system.bus; ticks must see the new bus."""
        system = build_system(AcesPolicy())

        class Probe:
            def __init__(self, inner):
                self.inner = inner
                self.reads = 0

            def max_downstream_rate(self, ids, now):
                self.reads += 1
                return self.inner.max_downstream_rate(ids, now)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        probe = Probe(system.bus)
        system.bus = probe
        assert system.plane.bus is probe
        system.run(0.2)
        assert probe.reads > 0

    def test_run_system_signature_stable(self):
        names = list(inspect.signature(run_system).parameters)
        assert names == [
            "topology",
            "policy",
            "duration",
            "targets",
            "config",
            "recorder",
            "profiler",
            "gauge_cadence",
            "spans",
        ]

    def test_run_runtime_signature_stable(self):
        names = list(inspect.signature(run_runtime).parameters)
        assert names == [
            "topology",
            "policy_name",
            "duration",
            "targets",
            "config",
            "recorder",
            "spans",
        ]


class TestPlaneState:
    def test_targets_identity_preserved(self):
        from repro.core.global_opt import solve_global_allocation

        topology = small_topology()
        targets = solve_global_allocation(
            topology.graph, topology.placement, topology.source_rates
        ).targets
        system = SimulatedSystem(
            topology, AcesPolicy(), targets=targets
        )
        assert system.targets is targets
        assert system.plane.targets is targets

    def test_one_controller_per_node(self):
        system = build_system(AcesPolicy())
        assert len(system.plane.node_controllers) == len(system.nodes)
        assert all(
            isinstance(c, NodeController)
            for c in system.plane.node_controllers
        )

    def test_adopt_targets_refreshes_records(self):
        system = build_system(AcesPolicy())
        new_cpu = {
            pe_id: 0.123 for pe_id in system.runtimes
        }
        new_targets = type(system.targets)(cpu=new_cpu)
        system.plane.adopt_targets(new_targets)
        assert system.targets is new_targets
        for controller in system.plane.node_controllers:
            for record in controller.records:
                assert record.cpu_target == 0.123

    def test_plane_without_tier1_refuses_reoptimize(self):
        runtime = SPCRuntime(
            small_topology(), AcesPolicy(), config=RuntimeConfig(seed=1)
        )
        assert runtime.plane.tier1 is None
        with pytest.raises(RuntimeError):
            runtime.plane.reoptimize(
                runtime.topology.graph,
                runtime.topology.placement,
                {},
            )

    def test_repr(self):
        system = build_system(AcesPolicy())
        text = repr(system.plane)
        assert "aces" in text
        assert repr(system.plane.node_controllers[0]).startswith(
            "NodeController("
        )
