"""Tests for the Eq. 7 flow controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow_control import FlowController
from repro.core.lqr import LQRGains, design_gains, proportional_gains


def make_controller(b0=25.0, capacity=50.0, **design_kwargs):
    defaults = dict(dt=0.01)
    defaults.update(design_kwargs)
    gains = design_gains(**defaults)
    return FlowController(gains, target_occupancy=b0, buffer_capacity=capacity)


class TestValidation:
    def test_b0_out_of_range_rejected(self):
        gains = design_gains(dt=0.01)
        with pytest.raises(ValueError):
            FlowController(gains, target_occupancy=-1.0, buffer_capacity=50)
        with pytest.raises(ValueError):
            FlowController(gains, target_occupancy=60.0, buffer_capacity=50)

    def test_negative_occupancy_rejected(self):
        controller = make_controller()
        with pytest.raises(ValueError):
            controller.update(-1.0, 100.0)


class TestControlLaw:
    def test_at_setpoint_rate_matches_rho(self):
        controller = make_controller(b0=25.0)
        r_max = controller.update(25.0, 100.0)
        assert r_max == pytest.approx(100.0)

    def test_below_setpoint_asks_for_more(self):
        controller = make_controller(b0=25.0)
        assert controller.update(5.0, 100.0) > 100.0

    def test_above_setpoint_asks_for_less(self):
        controller = make_controller(b0=25.0)
        assert controller.update(45.0, 100.0) < 100.0

    def test_never_negative(self):
        controller = make_controller(b0=1.0, capacity=50.0)
        r_max = controller.update(50.0, 1.0)
        assert r_max >= 0.0

    def test_safety_clamp_limits_refill(self):
        """r_max cannot exceed free-space/dt + rho in one interval."""
        controller = make_controller(b0=25.0, capacity=50.0, r=1e-9)
        r_max = controller.update(48.0, 10.0)
        ceiling = (50.0 - 48.0) / 0.01 + 10.0
        assert r_max <= ceiling + 1e-9

    def test_full_buffer_zero_rho_gives_zero(self):
        controller = make_controller(b0=25.0, capacity=50.0)
        assert controller.update(50.0, 0.0) == 0.0

    def test_updates_counter(self):
        controller = make_controller()
        controller.update(25.0, 100.0)
        controller.update(25.0, 100.0)
        assert controller.updates == 2

    def test_last_r_max_exposed(self):
        controller = make_controller()
        value = controller.update(25.0, 100.0)
        assert controller.last_r_max == value

    def test_history_terms_affect_output(self):
        """After a big rate surplus, the mu term damps the next request."""
        controller = make_controller(b0=25.0)
        first = controller.update(5.0, 100.0)  # large surplus requested
        second = controller.update(5.0, 100.0)
        assert second < first

    def test_proportional_controller_works(self):
        gains = proportional_gains(dt=0.01, gain=10.0)
        controller = FlowController(gains, 25.0, 50.0)
        assert controller.update(15.0, 100.0) == pytest.approx(200.0)

    def test_reset_clears_history(self):
        controller = make_controller(b0=25.0)
        controller.update(50.0, 100.0)
        controller.reset()
        assert controller.last_r_max == 0.0
        # After reset, behaves as freshly constructed.
        fresh = make_controller(b0=25.0)
        assert controller.update(25.0, 100.0) == pytest.approx(
            fresh.update(25.0, 100.0)
        )


class TestClosedLoop:
    def simulate(self, controller, b_start, rho=100.0, steps=600, dt=0.01):
        """Upstream complies exactly with r_max (one interval late); the
        PE drains at rho.  b' = clamp(b + dt (arrivals - rho), 0, B)."""
        b = b_start
        occupancies = []
        pending = rho  # arrivals applied one interval after being advertised
        for _ in range(steps):
            b = max(0.0, min(controller.capacity, b + dt * (pending - rho)))
            pending = controller.update(b, rho)
            occupancies.append(b)
        return occupancies

    @pytest.mark.parametrize("b_start", [0.0, 25.0, 50.0])
    def test_converges_to_setpoint(self, b_start):
        controller = make_controller(b0=25.0, capacity=50.0)
        occupancies = self.simulate(controller, b_start)
        tail = occupancies[-50:]
        assert sum(tail) / len(tail) == pytest.approx(25.0, abs=1.0)

    def test_steady_state_input_equals_processing(self):
        """The paper's steady-state property: r_in -> rho."""
        controller = make_controller(b0=25.0, capacity=50.0)
        rho = 80.0
        self.simulate(controller, 10.0, rho=rho)
        assert controller.last_r_max == pytest.approx(rho, rel=0.02)


@settings(max_examples=50, deadline=None)
@given(
    occupancy=st.floats(min_value=0.0, max_value=50.0),
    rho=st.floats(min_value=0.0, max_value=1000.0),
)
def test_property_r_max_bounded(occupancy, rho):
    controller = make_controller(b0=25.0, capacity=50.0)
    r_max = controller.update(occupancy, rho)
    assert r_max >= 0.0
    assert r_max <= (50.0 - occupancy) / 0.01 + rho + 1e-6
