"""The seeded scenario fuzzer: determinism, campaigns, and shrinking.

The acceptance bar for the fuzzer is two-sided, like the oracles': a
healthy system must fuzz clean across policies and modes, and an
intentionally broken controller must be (a) caught by the oracles on a
fuzzed scenario and (b) shrunk down to a minimal (<= 3 node) reproducer
that still fails.
"""

import json

import pytest

from repro.core import flow_control
from repro.experiments.fuzzing import (
    FuzzScenario,
    generate_scenario,
    run_differential_case,
    run_fuzz_campaign,
    run_fuzz_case,
    shrink_scenario,
)

from tests.test_check_oracles import _update_without_surplus_terms


class TestScenarioGeneration:
    def test_same_seed_same_scenario(self):
        assert generate_scenario(5) == generate_scenario(5)

    def test_different_seeds_differ(self):
        scenarios = {generate_scenario(seed) for seed in range(8)}
        assert len(scenarios) == 8

    def test_scenario_roundtrips_to_dict(self):
        scenario = generate_scenario(2)
        record = scenario.as_dict()
        assert record["seed"] == 2
        assert isinstance(record["faults"], list)
        json.dumps(record)  # JSONL-serializable

    def test_topology_is_deterministic(self):
        scenario = generate_scenario(4)
        first = scenario.build_topology()
        second = scenario.build_topology()
        assert sorted(first.placement) == sorted(second.placement)
        assert first.source_rates == second.source_rates

    def test_scenario_library_and_forecast_dimensions_drawn(self):
        scenarios = [generate_scenario(seed) for seed in range(25)]
        kinds = {scenario.source_kind for scenario in scenarios}
        assert kinds & {"diurnal", "drift", "correlatedburst", "driftsquare"}
        assert any(scenario.forecast for scenario in scenarios)
        assert any(not scenario.forecast for scenario in scenarios)


class TestFuzzCases:
    @pytest.mark.parametrize("policy_name", ["udp", "lockstep", "aces"])
    def test_simulated_case_clean(self, policy_name):
        result = run_fuzz_case(generate_scenario(1), policy_name)
        assert not result.failed, result.violations
        assert result.events > 0

    @pytest.mark.parametrize("policy_name", ["udp", "lockstep", "aces"])
    def test_differential_case_clean(self, policy_name):
        result = run_differential_case(generate_scenario(1), policy_name)
        assert not result.failed, (result.violations, result.error)
        assert not result.mismatch

    def test_campaign_writes_jsonl(self, tmp_path):
        output = tmp_path / "fuzz.jsonl"
        summary = run_fuzz_campaign(
            range(2), policies=["aces"], output=str(output)
        )
        assert summary["ok"], summary["failures"]
        lines = output.read_text().splitlines()
        assert len(lines) == summary["cases"] == 4  # 2 seeds x 2 modes
        for line in lines:
            record = json.loads(line)
            assert record["failed"] is False
            assert record["scenario"]["seed"] in (0, 1)

    def test_scenario_library_source_surge_reproducer(self):
        """Pinned campaign finding: seed 1 expands to a diurnal source
        with a ``source_surge`` fault (forecast and elastic tiers both
        armed).  The fault injector's source dispatch predated the
        scenario library and crashed with ``AttributeError: 'DiurnalSource'
        object has no attribute 'peak_rate'`` on the new rate-based
        sources until the dispatch was extended; this pins the fix."""
        scenario = generate_scenario(1)
        assert scenario.source_kind == "diurnal"
        assert scenario.forecast and scenario.elasticity
        assert any(fault.kind == "source_surge" for fault in scenario.faults)
        result = run_fuzz_case(scenario, "aces")
        assert not result.failed, (result.error, result.violations)

    def test_shrink_can_disarm_forecast(self):
        from dataclasses import replace

        from repro.experiments.fuzzing import _shrink_candidates

        scenario = generate_scenario(1)
        assert scenario.forecast
        assert replace(scenario, forecast=False) in _shrink_candidates(
            scenario
        )

    def test_campaign_is_deterministic(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        run_fuzz_campaign(range(2), policies=["udp"], output=str(first))
        run_fuzz_campaign(range(2), policies=["udp"], output=str(second))
        assert first.read_bytes() == second.read_bytes()


class TestInjectedBugShrinks:
    def test_bug_caught_and_shrunk_to_minimal_reproducer(self, monkeypatch):
        monkeypatch.setattr(
            flow_control.FlowController,
            "update",
            _update_without_surplus_terms,
        )
        scenario = generate_scenario(1)
        result = run_fuzz_case(scenario, "aces")
        assert result.failed
        assert result.violation_counts.get("r_max_law", 0) >= 1

        minimal = shrink_scenario(
            scenario, lambda candidate: run_fuzz_case(candidate, "aces").failed
        )
        # Still a reproducer...
        assert run_fuzz_case(minimal, "aces").failed
        # ...and minimal: the bug needs no faults and almost no structure.
        assert minimal.num_nodes <= 3
        assert minimal.faults == ()
        assert minimal.num_intermediate == 0
        assert minimal.duration <= scenario.duration

    def test_shrink_skips_unbuildable_candidates(self):
        # A predicate that raises on some candidates (unbuildable shrink)
        # must not abort the search.
        scenario = generate_scenario(3)

        def predicate(candidate: FuzzScenario) -> bool:
            if candidate.num_nodes < scenario.num_nodes:
                raise ValueError("cannot build")
            return bool(candidate.faults)

        minimal = shrink_scenario(scenario, predicate)
        assert minimal.num_nodes == scenario.num_nodes

    def test_shrink_returns_scenario_when_nothing_helps(self):
        scenario = generate_scenario(2)
        minimal = shrink_scenario(scenario, lambda candidate: False)
        assert minimal == scenario
