"""Tests for policies and allocation targets."""

import numpy as np
import pytest

from repro.core.cpu_control import (
    AcesCpuScheduler,
    StrictProportionalScheduler,
)
from repro.core.policies import (
    AcesPolicy,
    LockStepPolicy,
    UdpPolicy,
    policy_by_name,
)
from repro.core.targets import (
    AllocationTargets,
    fair_share_targets,
    perturb_targets,
)
from repro.graph.dag import ProcessingGraph
from repro.model.params import PEProfile
from repro.model.pe import PERuntime
from repro.model.sdo import SDO


def make_runtime(pe_id="pe-0", lambda_m=1.0):
    return PERuntime(
        PEProfile(pe_id=pe_id, lambda_m=lambda_m),
        buffer_capacity=4,
        rng=np.random.default_rng(0),
    )


class TestPolicyConstruction:
    def test_aces_validation(self):
        with pytest.raises(ValueError):
            AcesPolicy(aggregation="sideways")
        with pytest.raises(ValueError):
            AcesPolicy(scheduler="fifo")
        with pytest.raises(ValueError):
            AcesPolicy(controller="pid")

    def test_policy_by_name(self):
        assert isinstance(policy_by_name("aces"), AcesPolicy)
        assert isinstance(policy_by_name("udp"), UdpPolicy)
        assert isinstance(policy_by_name("lockstep"), LockStepPolicy)

    def test_policy_by_name_kwargs(self):
        policy = policy_by_name("aces", aggregation="min")
        assert policy.aggregate_feedback() == "min"

    def test_unknown_policy_name(self):
        with pytest.raises(ValueError):
            policy_by_name("tcp")

    def test_feedback_flags(self):
        assert AcesPolicy().uses_feedback
        assert not UdpPolicy().uses_feedback
        assert not LockStepPolicy().uses_feedback


class TestPolicySchedulers:
    def test_aces_makes_token_scheduler(self):
        pe = make_runtime()
        scheduler = AcesPolicy().make_scheduler([pe], {"pe-0": 0.5}, 1.0, 0.01)
        assert isinstance(scheduler, AcesCpuScheduler)

    def test_aces_strict_ablation(self):
        pe = make_runtime()
        scheduler = AcesPolicy(scheduler="strict").make_scheduler(
            [pe], {"pe-0": 0.5}, 1.0, 0.01
        )
        assert isinstance(scheduler, StrictProportionalScheduler)

    def test_baselines_make_strict_scheduler(self):
        pe = make_runtime()
        for policy in (UdpPolicy(), LockStepPolicy()):
            scheduler = policy.make_scheduler([pe], {"pe-0": 0.5}, 1.0, 0.01)
            assert isinstance(scheduler, StrictProportionalScheduler)


class TestControllers:
    def test_aces_lqr_gains(self):
        gains = AcesPolicy().controller_gains(0.01)
        assert gains.lambdas[0] > 0
        assert len(gains.mus) == 1

    def test_aces_proportional_ablation(self):
        policy = AcesPolicy(controller="proportional", proportional_gain=7.0)
        gains = policy.controller_gains(0.01)
        assert gains.lambdas == (7.0,)
        assert gains.mus == ()

    def test_baselines_have_no_controller(self):
        assert UdpPolicy().controller_gains(0.01) is None
        assert LockStepPolicy().controller_gains(0.01) is None


class TestGates:
    def test_udp_and_aces_have_no_gate(self):
        pe = make_runtime()
        assert UdpPolicy().make_gate(pe) is None
        assert AcesPolicy().make_gate(pe) is None

    def test_lockstep_gate_blocks_on_full_downstream(self):
        producer = make_runtime("p")
        consumer = make_runtime("c")
        producer.link_downstream(consumer)
        gate = LockStepPolicy().make_gate(producer)
        assert gate(producer)
        for i in range(4):  # fill the consumer (capacity 4)
            consumer.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        assert not gate(producer)

    def test_lockstep_gate_requires_room_for_all_consumers(self):
        producer = make_runtime("p")
        fast = make_runtime("c1")
        slow = make_runtime("c2")
        producer.link_downstream(fast)
        producer.link_downstream(slow)
        gate = LockStepPolicy().make_gate(producer)
        for i in range(4):
            slow.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        assert not gate(producer)  # min-flow: one full consumer blocks

    def test_lockstep_gate_accounts_for_fanout_m(self):
        producer = make_runtime("p", lambda_m=3.0)
        consumer = make_runtime("c")
        producer.link_downstream(consumer)
        gate = LockStepPolicy().make_gate(producer)
        consumer.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        consumer.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        # Only 2 slots free but M = 3 outputs expected.
        assert not gate(producer)


class TestAllocationTargets:
    def chain(self):
        graph = ProcessingGraph()
        for pe_id in ("a", "b", "c", "d"):
            graph.add_pe(PEProfile(pe_id=pe_id))
        graph.add_edge("a", "b")
        graph.add_edge("c", "d")
        return graph

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            AllocationTargets(cpu={"a": -0.5})

    def test_node_utilization(self):
        targets = AllocationTargets(cpu={"a": 0.3, "b": 0.4, "c": 0.2})
        placement = {"a": 0, "b": 0, "c": 1}
        util = targets.node_utilization(placement)
        assert util[0] == pytest.approx(0.7)
        assert util[1] == pytest.approx(0.2)

    def test_validate_catches_overcommit(self):
        targets = AllocationTargets(cpu={"a": 0.7, "b": 0.7})
        with pytest.raises(ValueError):
            targets.validate({"a": 0, "b": 0})
        targets.validate({"a": 0, "b": 1})  # fine when split

    def test_fair_share_targets(self):
        graph = self.chain()
        placement = {"a": 0, "b": 0, "c": 1, "d": 1}
        targets = fair_share_targets(graph, placement)
        assert targets.cpu["a"] == pytest.approx(0.5)
        assert targets.rate_in["a"] == pytest.approx(
            graph.profile("a").rate_at(0.5)
        )
        targets.validate(placement)


class TestPerturbTargets:
    def base(self):
        return AllocationTargets(cpu={"a": 0.5, "b": 0.5, "c": 0.3})

    def test_zero_epsilon_identity(self):
        rng = np.random.default_rng(0)
        noisy = perturb_targets(self.base(), 0.0, rng)
        assert noisy.cpu == self.base().cpu

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            perturb_targets(self.base(), -0.1, np.random.default_rng(0))

    def test_perturbation_bounded(self):
        rng = np.random.default_rng(1)
        noisy = perturb_targets(self.base(), 0.2, rng)
        for pe_id, original in self.base().cpu.items():
            assert abs(noisy.cpu[pe_id] - original) <= 0.2 * original + 1e-12

    def test_renormalization_keeps_feasible(self):
        placement = {"a": 0, "b": 0, "c": 1}
        rng = np.random.default_rng(2)
        for _ in range(20):
            noisy = perturb_targets(self.base(), 0.8, rng, placement=placement)
            noisy.validate(placement)

    def test_deterministic_given_rng(self):
        a = perturb_targets(self.base(), 0.3, np.random.default_rng(5))
        b = perturb_targets(self.base(), 0.3, np.random.default_rng(5))
        assert a.cpu == b.cpu
