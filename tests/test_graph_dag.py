"""Tests for the processing-graph DAG structure."""

import pytest

from repro.graph.dag import GraphValidationError, ProcessingGraph
from repro.model.params import PEProfile


def build_diamond():
    """src -> (a, b) -> sink."""
    graph = ProcessingGraph()
    for pe_id in ("src", "a", "b", "sink"):
        graph.add_pe(PEProfile(pe_id=pe_id))
    graph.add_edge("src", "a")
    graph.add_edge("src", "b")
    graph.add_edge("a", "sink")
    graph.add_edge("b", "sink")
    return graph


class TestConstruction:
    def test_duplicate_pe_rejected(self):
        graph = ProcessingGraph()
        graph.add_pe(PEProfile(pe_id="x"))
        with pytest.raises(GraphValidationError):
            graph.add_pe(PEProfile(pe_id="x"))

    def test_edge_unknown_pe_rejected(self):
        graph = ProcessingGraph()
        graph.add_pe(PEProfile(pe_id="x"))
        with pytest.raises(GraphValidationError):
            graph.add_edge("x", "y")

    def test_self_loop_rejected(self):
        graph = ProcessingGraph()
        graph.add_pe(PEProfile(pe_id="x"))
        with pytest.raises(GraphValidationError):
            graph.add_edge("x", "x")

    def test_duplicate_edge_rejected(self):
        graph = build_diamond()
        with pytest.raises(GraphValidationError):
            graph.add_edge("src", "a")

    def test_cycle_rejected_and_rolled_back(self):
        graph = build_diamond()
        with pytest.raises(GraphValidationError):
            graph.add_edge("sink", "src")
        assert ("sink", "src") not in graph.edges()

    def test_len_and_contains(self):
        graph = build_diamond()
        assert len(graph) == 4
        assert "src" in graph
        assert "nope" not in graph


class TestStructure:
    def test_upstream_downstream(self):
        graph = build_diamond()
        assert set(graph.upstream("sink")) == {"a", "b"}
        assert set(graph.downstream("src")) == {"a", "b"}
        assert graph.upstream("src") == []
        assert graph.downstream("sink") == []

    def test_fan_degrees(self):
        graph = build_diamond()
        assert graph.fan_out("src") == 2
        assert graph.fan_in("sink") == 2
        assert graph.fan_in("a") == 1

    def test_ingress_egress_intermediate(self):
        graph = build_diamond()
        assert graph.ingress_ids == ["src"]
        assert graph.egress_ids == ["sink"]
        assert set(graph.intermediate_ids) == {"a", "b"}

    def test_topological_order_respects_edges(self):
        graph = build_diamond()
        order = graph.topological_order()
        assert order.index("src") < order.index("a")
        assert order.index("a") < order.index("sink")
        assert order.index("b") < order.index("sink")

    def test_topological_order_deterministic(self):
        assert (
            build_diamond().topological_order()
            == build_diamond().topological_order()
        )

    def test_reverse_topological_order(self):
        graph = build_diamond()
        assert graph.reverse_topological_order() == list(
            reversed(graph.topological_order())
        )

    def test_depth(self):
        assert build_diamond().depth() == 2

    def test_ancestors_descendants(self):
        graph = build_diamond()
        assert graph.descendants("src") == {"a", "b", "sink"}
        assert graph.ancestors("sink") == {"src", "a", "b"}

    def test_connected_components(self):
        graph = build_diamond()
        graph.add_pe(PEProfile(pe_id="lonely-src"))
        graph.add_pe(PEProfile(pe_id="lonely-sink"))
        graph.add_edge("lonely-src", "lonely-sink")
        components = graph.connected_components()
        assert len(components) == 2
        assert {"lonely-src", "lonely-sink"} in components


class TestValidation:
    def test_valid_graph_passes(self):
        build_diamond().validate(max_fan_in=3, max_fan_out=4)

    def test_empty_graph_fails(self):
        with pytest.raises(GraphValidationError):
            ProcessingGraph().validate()

    def test_unexpected_role_fails(self):
        graph = build_diamond()
        graph.add_pe(PEProfile(pe_id="orphan"))
        with pytest.raises(GraphValidationError, match="orphan"):
            graph.validate(
                expected_ingress={"src"}, expected_egress={"sink"}
            )

    def test_expected_roles_pass(self):
        build_diamond().validate(
            expected_ingress={"src"}, expected_egress={"sink"}
        )

    def test_missing_expected_ingress_fails(self):
        graph = build_diamond()
        with pytest.raises(GraphValidationError, match="missing"):
            graph.validate(expected_ingress={"src", "ghost"})

    def test_fan_in_cap_enforced(self):
        graph = build_diamond()
        with pytest.raises(GraphValidationError, match="fan-in"):
            graph.validate(max_fan_in=1)

    def test_fan_out_cap_enforced(self):
        graph = build_diamond()
        with pytest.raises(GraphValidationError, match="fan-out"):
            graph.validate(max_fan_out=1)

    def test_profile_lookup(self):
        graph = build_diamond()
        assert graph.profile("src").pe_id == "src"
        assert set(graph.profiles) == {"src", "a", "b", "sink"}
