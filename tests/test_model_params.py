"""Tests for PE profiles and the rate model h(c) = a c - b."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.params import DEFAULTS, PEProfile


def make_profile(**kwargs):
    defaults = dict(pe_id="pe-0")
    defaults.update(kwargs)
    return PEProfile(**defaults)


class TestValidation:
    def test_defaults_match_paper(self):
        assert DEFAULTS.buffer_size == 50
        assert DEFAULTS.target_occupancy_fraction == 0.5
        assert DEFAULTS.max_fan_out == 4
        assert DEFAULTS.max_fan_in == 3
        assert DEFAULTS.multi_io_fraction == 0.20
        assert DEFAULTS.lambda_s == 10.0
        assert DEFAULTS.lambda_m == 1.0
        assert DEFAULTS.rho == 0.5
        assert DEFAULTS.t0 == 0.002
        assert DEFAULTS.t1 == 0.020

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            make_profile(weight=-1.0)

    def test_non_positive_times_rejected(self):
        with pytest.raises(ValueError):
            make_profile(t0=0.0)
        with pytest.raises(ValueError):
            make_profile(t1=-1.0)

    def test_rho_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_profile(rho=1.5)

    def test_negative_lambda_s_rejected(self):
        with pytest.raises(ValueError):
            make_profile(lambda_s=-1.0)

    def test_non_positive_lambda_m_rejected(self):
        with pytest.raises(ValueError):
            make_profile(lambda_m=0.0)


class TestRateModel:
    def test_effective_rate_is_arithmetic_mean_of_state_rates(self):
        profile = make_profile(t0=0.002, t1=0.020, rho=0.5)
        expected_rate = 0.5 / 0.002 + 0.5 / 0.020  # 275 SDO/s
        assert 1.0 / profile.mean_service_time == pytest.approx(expected_rate)

    def test_per_sdo_mix_cost_is_naive_expectation(self):
        profile = make_profile(t0=0.002, t1=0.020, rho=0.5)
        assert profile.per_sdo_state_mix_cost == pytest.approx(0.011)

    def test_rate_at_full_cpu(self):
        profile = make_profile(t0=0.010, t1=0.010)
        assert profile.rate_at(1.0) == pytest.approx(100.0)

    def test_rate_scales_linearly_with_cpu(self):
        profile = make_profile()
        assert profile.rate_at(0.5) == pytest.approx(profile.rate_at(1.0) * 0.5)

    def test_overhead_shifts_rate(self):
        profile = make_profile(t0=0.010, t1=0.010, overhead=20.0)
        assert profile.rate_at(1.0) == pytest.approx(80.0)
        assert profile.rate_at(0.0) == 0.0  # clamped at zero

    def test_cpu_for_rate_inverts_rate_at(self):
        profile = make_profile(overhead=5.0)
        for rate in (1.0, 10.0, 100.0):
            cpu = profile.cpu_for_rate(rate)
            assert profile.rate_at(cpu) == pytest.approx(rate)

    def test_cpu_for_zero_rate(self):
        assert make_profile().cpu_for_rate(0.0) == 0.0

    def test_output_rate_scales_with_lambda_m(self):
        profile = make_profile(lambda_m=3.0)
        assert profile.output_rate_at(0.5) == pytest.approx(
            3.0 * profile.rate_at(0.5)
        )

    def test_cpu_for_output_rate_inverts(self):
        profile = make_profile(lambda_m=2.0)
        cpu = profile.cpu_for_output_rate(50.0)
        assert profile.output_rate_at(cpu) == pytest.approx(50.0)

    def test_calibrated_slope_overrides_analytic(self):
        profile = make_profile(calibrated_rate_slope=123.0)
        assert profile.rate_slope == 123.0
        assert profile.rate_at(1.0) == pytest.approx(123.0)


class TestDwellMeans:
    def test_symmetric_at_half_rho(self):
        profile = make_profile(rho=0.5, lambda_s=10.0)
        d0, d1 = profile.dwell_means()
        assert d0 == pytest.approx(d1)

    def test_stationary_fraction_matches_rho(self):
        profile = make_profile(rho=0.3)
        d0, d1 = profile.dwell_means()
        assert d1 / (d0 + d1) == pytest.approx(0.3)

    def test_dwell_scales_with_lambda_s(self):
        short = make_profile(lambda_s=5.0).dwell_means()
        long = make_profile(lambda_s=50.0).dwell_means()
        assert long[0] == pytest.approx(10 * short[0])
        assert long[1] == pytest.approx(10 * short[1])


def test_scaled_returns_modified_copy():
    profile = make_profile(weight=1.0)
    scaled = profile.scaled(weight=2.0)
    assert scaled.weight == 2.0
    assert profile.weight == 1.0
    assert scaled.pe_id == profile.pe_id


@given(
    cpu=st.floats(min_value=0.0, max_value=1.0),
    t0=st.floats(min_value=1e-4, max_value=0.1),
    t1=st.floats(min_value=1e-4, max_value=0.1),
    rho=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_rate_non_negative_and_monotone(cpu, t0, t1, rho):
    profile = PEProfile(pe_id="p", t0=t0, t1=t1, rho=rho)
    rate = profile.rate_at(cpu)
    assert rate >= 0.0
    assert profile.rate_at(min(1.0, cpu + 0.1)) >= rate
