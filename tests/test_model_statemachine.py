"""Tests for the two-state Markov-modulated state machine."""

import numpy as np
import pytest

from repro.model.params import PEProfile
from repro.model.statemachine import TwoStateMachine


def make_machine(seed=0, **profile_kwargs):
    defaults = dict(pe_id="pe-0")
    defaults.update(profile_kwargs)
    profile = PEProfile(**defaults)
    return TwoStateMachine(profile, np.random.default_rng(seed))


def test_initial_state_is_valid():
    machine = make_machine()
    assert machine.state in (0, 1)


def test_rewind_rejected():
    machine = make_machine()
    machine.advance_to(5.0)
    with pytest.raises(ValueError):
        machine.advance_to(4.0)


def test_advance_to_same_time_is_noop():
    machine = make_machine()
    state = machine.advance_to(1.0)
    assert machine.advance_to(1.0) == state


def test_service_time_matches_state():
    machine = make_machine(t0=0.001, t1=0.5)
    cost = machine.service_time_at(0.0)
    if machine.state == 1:
        assert cost == 0.5
    else:
        assert cost == 0.001


def test_frozen_when_lambda_s_zero():
    machine = make_machine(lambda_s=0.0)
    first = machine.advance_to(0.0)
    assert machine.advance_to(1000.0) == first
    assert machine.transitions == 0


def test_frozen_at_rho_one_stays_slow():
    machine = make_machine(rho=1.0)
    assert machine.state == 1
    machine.advance_to(100.0)
    assert machine.state == 1


def test_frozen_at_rho_zero_stays_fast():
    machine = make_machine(rho=0.0)
    assert machine.state == 0
    machine.advance_to(100.0)
    assert machine.state == 0


def test_transitions_accumulate():
    machine = make_machine(lambda_s=1.0)
    machine.advance_to(100.0)
    assert machine.transitions > 10


def test_deterministic_given_seed():
    a = make_machine(seed=42, lambda_s=2.0)
    b = make_machine(seed=42, lambda_s=2.0)
    times = np.linspace(0.1, 20.0, 50)
    assert [a.advance_to(t) for t in times] == [b.advance_to(t) for t in times]


def test_stationary_fraction_approximates_rho():
    machine = make_machine(seed=7, rho=0.3, lambda_s=1.0)
    dt = 0.01
    in_slow = 0
    samples = 60000
    for i in range(samples):
        if machine.advance_to(i * dt) == 1:
            in_slow += 1
    assert in_slow / samples == pytest.approx(0.3, abs=0.05)


def test_mean_dwell_scales_with_lambda_s():
    short = make_machine(seed=3, lambda_s=2.0)
    long = make_machine(seed=3, lambda_s=20.0)
    horizon = 200.0
    short.advance_to(horizon)
    long.advance_to(horizon)
    # Ten times longer dwells => roughly ten times fewer transitions.
    ratio = short.transitions / max(1, long.transitions)
    assert 5.0 < ratio < 20.0


def test_expected_service_time_delegates_to_profile():
    machine = make_machine()
    assert machine.expected_service_time() == machine.profile.mean_service_time
