"""Property-based tests on system-level invariants.

Hypothesis drives randomized configurations through the full simulated
system and asserts conservation laws and safety invariants that must hold
for *every* policy, topology, and seed.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lqr import design_gains, is_stable
from repro.core.policies import AcesPolicy, LockStepPolicy, UdpPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.systems.simulated import SimulatedSystem, SystemConfig

POLICIES = {
    "aces": AcesPolicy,
    "udp": UdpPolicy,
    "lockstep": LockStepPolicy,
}

slow_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@slow_settings
@given(
    policy_name=st.sampled_from(sorted(POLICIES)),
    topo_seed=st.integers(min_value=0, max_value=50),
    sim_seed=st.integers(min_value=0, max_value=50),
    buffer_size=st.integers(min_value=2, max_value=30),
)
def test_property_system_conservation(
    policy_name, topo_seed, sim_seed, buffer_size
):
    """Conservation and safety invariants after an arbitrary short run."""
    spec = TopologySpec(
        num_nodes=2,
        num_ingress=2,
        num_egress=2,
        num_intermediate=2,
        calibrate_rates=False,
    )
    topology = generate_topology(spec, np.random.default_rng(topo_seed))
    system = SimulatedSystem(
        topology,
        POLICIES[policy_name](),
        config=SystemConfig(
            seed=sim_seed, warmup=0.0, buffer_size=buffer_size
        ),
    )
    system.env.run(until=2.0)

    for runtime in system.runtimes.values():
        telemetry = runtime.buffer.telemetry
        # Buffer accounting closes.
        assert telemetry.offered == telemetry.accepted + telemetry.dropped
        in_flight = 1 if runtime._current is not None else 0
        assert (
            telemetry.accepted
            == runtime.counters.consumed + runtime.buffer.occupancy + in_flight
        )
        # Buffer never exceeded capacity.
        assert telemetry.high_water <= buffer_size
        # CPU used never exceeds CPU granted.
        assert runtime.counters.cpu_used <= runtime.counters.cpu_granted + 1e-9
        # Emission fan-out is exact for deterministic M.
        assert runtime.counters.emitted == runtime.counters.consumed

    # Node capacity was never oversubscribed in aggregate: total CPU used
    # cannot exceed nodes * elapsed time.
    total_used = sum(
        r.counters.cpu_used for r in system.runtimes.values()
    )
    assert total_used <= topology.num_nodes * 2.0 + 1e-6


@slow_settings
@given(
    dt=st.floats(min_value=0.001, max_value=0.1),
    q=st.floats(min_value=0.01, max_value=100.0),
    r=st.floats(min_value=1e-6, max_value=10.0),
    buffer_lags=st.integers(min_value=0, max_value=3),
    extra_rate_lags=st.integers(min_value=0, max_value=3),
    delay=st.integers(min_value=0, max_value=2),
)
def test_property_lqr_designs_always_stable(
    dt, q, r, buffer_lags, extra_rate_lags, delay
):
    gains = design_gains(
        dt,
        q=q,
        r=r,
        buffer_lags=buffer_lags,
        rate_lags=delay + extra_rate_lags if delay else max(1, extra_rate_lags),
        delay_steps=delay,
    )
    assert is_stable(gains)
    assert all(np.isfinite(gains.lambdas))
    assert all(np.isfinite(gains.mus))


@slow_settings
@given(
    occupancies=st.lists(
        st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=60
    ),
    rho=st.floats(min_value=0.0, max_value=500.0),
)
def test_property_flow_controller_output_always_admissible(occupancies, rho):
    """Any occupancy trajectory yields non-negative, clamp-respecting
    r_max values."""
    from repro.core.flow_control import FlowController

    controller = FlowController(
        design_gains(0.01), target_occupancy=25.0, buffer_capacity=50.0
    )
    for occupancy in occupancies:
        r_max = controller.update(occupancy, rho)
        assert r_max >= 0.0
        assert r_max <= (50.0 - occupancy) / 0.01 + rho + 1e-6


@slow_settings
@given(
    n_pes=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
    capacity=st.floats(min_value=0.1, max_value=1.0),
)
def test_property_scheduler_never_oversubscribes(n_pes, seed, capacity):
    from repro.core.cpu_control import AcesCpuScheduler
    from repro.model.params import PEProfile
    from repro.model.pe import PERuntime
    from repro.model.sdo import SDO

    rng = np.random.default_rng(seed)
    pes = []
    targets = {}
    for index in range(n_pes):
        pe = PERuntime(
            PEProfile(pe_id=f"pe-{index}"),
            buffer_capacity=20,
            rng=np.random.default_rng(index),
        )
        for _ in range(int(rng.integers(0, 20))):
            pe.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        pes.append(pe)
        targets[pe.pe_id] = float(rng.uniform(0.0, 1.0 / n_pes))

    scheduler = AcesCpuScheduler(pes, targets, capacity=capacity, dt=0.01)
    caps = {
        pe.pe_id: float(rng.choice([np.inf, rng.uniform(0.0, 500.0)]))
        for pe in pes
    }
    allocations = scheduler.allocate(0.01, caps)
    assert sum(allocations.values()) <= capacity + 1e-9
    assert all(cpu >= 0.0 for cpu in allocations.values())


@slow_settings
@given(
    dt=st.floats(min_value=1e-3, max_value=0.5),
    q=st.floats(min_value=0.05, max_value=50.0),
    r=st.floats(min_value=1e-4, max_value=1.0),
    buffer_lags=st.integers(min_value=0, max_value=3),
    rate_lags=st.integers(min_value=1, max_value=3),
)
def test_property_lqr_poles_inside_unit_circle(dt, q, r, buffer_lags, rate_lags):
    """Eq. 7 gain design is stabilizing for any valid (dt, q, r, lags):
    every closed-loop pole lies strictly inside the unit circle."""
    from repro.core.lqr import closed_loop_poles

    gains = design_gains(
        dt=dt, q=q, r=r,
        buffer_lags=buffer_lags, rate_lags=rate_lags, delay_steps=1,
    )
    poles = closed_loop_poles(gains)
    assert np.all(np.abs(poles) < 1.0)
    assert is_stable(gains)


@slow_settings
@given(
    slope=st.floats(min_value=0.5, max_value=500.0),
    overhead_fraction=st.floats(min_value=0.0, max_value=0.9),
    cpu_margin=st.floats(min_value=1e-3, max_value=1.0),
    lambda_m=st.floats(min_value=0.1, max_value=5.0),
)
def test_property_rate_model_round_trip(
    slope, overhead_fraction, cpu_margin, lambda_m
):
    """h(c) = a*c - b round-trips through its inverse wherever the model
    is not clamped (a*c > b), for the input and output rate forms."""
    from repro.model.params import PEProfile

    profile = PEProfile(
        pe_id="prop",
        lambda_m=lambda_m,
        overhead=overhead_fraction * slope,  # b < a so some c is feasible
        calibrated_rate_slope=slope,
    )
    # Pick c strictly inside the non-clamped region: a*c - b > 0.
    floor = profile.overhead / slope
    cpu = floor + cpu_margin * (1.0 - floor)
    rate = profile.rate_at(cpu)
    assert rate > 0.0
    assert profile.cpu_for_rate(rate) == pytest.approx(cpu, rel=1e-9)
    output_rate = profile.output_rate_at(cpu)
    assert profile.cpu_for_output_rate(output_rate) == pytest.approx(
        cpu, rel=1e-9
    )
    # Below the clamp the inverse maps non-positive rates to zero CPU.
    assert profile.cpu_for_rate(0.0) == 0.0
    assert profile.cpu_for_rate(-1.0) == 0.0
