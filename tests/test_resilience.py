"""Tests for the control-plane chaos harness and degradation guards.

Covers the Tier-1 retry/fallback wrapper, the lossy feedback-bus fault
wrapper, control-plane fault kinds end to end (simulator and threaded
runtime), fault validation (including directly constructed faults and
overlap rejection), and the resilience benchmark's MTTR machinery.
"""

import json

import numpy as np
import pytest

from repro.core.global_opt import GlobalOptimizationResult
from repro.core.feedback import FeedbackBus
from repro.core.policies import AcesPolicy, UdpPolicy
from repro.core.resilience import (
    LossyFeedbackBus,
    ResilientTier1,
    Tier1Unavailable,
    validate_targets,
)
from repro.core.targets import AllocationTargets
from repro.experiments.resilience import (
    SCENARIOS,
    chaos_system_config,
    mean_rate,
    measure_mttr,
    run_chaos_cell,
    write_resilience_bench,
)
from repro.graph.topology import TopologySpec, generate_topology
from repro.obs.recorder import MemoryRecorder, TraceFilter
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.faults import Fault, FaultPlan
from repro.systems.simulated import SimulatedSystem, SystemConfig


def small_topology(seed=0, **overrides):
    params = dict(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=4,
        calibrate_rates=False,
    )
    params.update(overrides)
    return generate_topology(
        TopologySpec(**params), np.random.default_rng(seed)
    )


def simple_targets(cpu=0.5):
    return AllocationTargets(
        cpu={"a": cpu}, rate_in={"a": 1.0}, rate_out={"a": 1.0}
    )


def good_result(targets=None):
    return GlobalOptimizationResult(
        targets=targets if targets is not None else simple_targets(),
        objective=1.0,
        solver="fake",
        iterations=1,
        converged=True,
        max_violation=0.0,
        messages=[],
    )


class TestValidateTargets:
    def test_valid_targets_pass(self):
        assert validate_targets(simple_targets(), {"a": 0}) == []

    def test_non_finite_rejected(self):
        targets = AllocationTargets(
            cpu={"a": float("nan")}, rate_in={"a": 1.0}, rate_out={"a": 1.0}
        )
        problems = validate_targets(targets)
        assert any("not finite" in p for p in problems)

    def test_negative_rejected(self):
        targets = AllocationTargets(
            cpu={"a": 0.5}, rate_in={"a": -1.0}, rate_out={"a": 1.0}
        )
        problems = validate_targets(targets)
        assert any("negative" in p for p in problems)

    def test_node_overcommit_rejected(self):
        targets = AllocationTargets(
            cpu={"a": 0.7, "b": 0.7},
            rate_in={"a": 1.0, "b": 1.0},
            rate_out={"a": 1.0, "b": 1.0},
        )
        problems = validate_targets(targets, {"a": 0, "b": 0})
        assert any("overcommitted" in p for p in problems)
        # Spread over two nodes the same shares are fine.
        assert validate_targets(targets, {"a": 0, "b": 1}) == []


class TestResilientTier1:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ResilientTier1(max_attempts=0)
        with pytest.raises(ValueError):
            ResilientTier1(backoff_factor=0.5)

    def test_retry_then_success(self):
        attempts = []
        backoffs = []

        def flaky(graph, placement, source_rates, **kwargs):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return good_result()

        tier1 = ResilientTier1(
            solver=flaky, max_attempts=3,
            backoff_base=0.05, backoff_factor=2.0, sleep=backoffs.append,
        )
        result = tier1.solve(None, {}, {})
        assert result.solver == "fake"
        assert tier1.failures == 2
        assert tier1.fallbacks == 0
        assert tier1.last_good is result
        assert backoffs == [0.05, 0.1]

    def test_fallback_to_last_known_good(self):
        def broken(*args, **kwargs):
            raise RuntimeError("solver down")

        recorder = MemoryRecorder()
        tier1 = ResilientTier1(
            solver=broken, max_attempts=2, recorder=recorder
        )
        tier1.seed(simple_targets())
        result = tier1.solve(None, {}, {})
        assert result.solver == "fallback(seeded)"
        assert not result.converged
        assert result.targets.cpu == {"a": 0.5}
        assert tier1.fallbacks == 1
        assert recorder.counts.get("tier1_fallback") == 1
        event = next(
            e for e in recorder.events if e["kind"] == "tier1_fallback"
        )
        assert event["have_last_good"] is True

    def test_unavailable_without_last_good(self):
        def broken(*args, **kwargs):
            raise RuntimeError("solver down")

        tier1 = ResilientTier1(solver=broken, max_attempts=2)
        with pytest.raises(Tier1Unavailable):
            tier1.solve(None, {}, {})

    def test_insane_targets_trigger_fallback(self):
        def overcommitting(graph, placement, source_rates, **kwargs):
            return good_result(
                AllocationTargets(
                    cpu={"a": 0.9, "b": 0.9},
                    rate_in={"a": 1.0, "b": 1.0},
                    rate_out={"a": 1.0, "b": 1.0},
                )
            )

        tier1 = ResilientTier1(solver=overcommitting, max_attempts=1)
        tier1.seed(simple_targets())
        result = tier1.solve(None, {"a": 0, "b": 0}, {})
        assert result.solver == "fallback(seeded)"
        assert tier1.failures == 1

    def test_inject_failure_hook(self):
        def fine(graph, placement, source_rates, **kwargs):
            return good_result()

        tier1 = ResilientTier1(solver=fine, max_attempts=1)
        tier1.seed(simple_targets())

        def outage():
            raise RuntimeError("injected")

        tier1.inject_failure = outage
        assert tier1.solve(None, {}, {}).solver == "fallback(seeded)"
        tier1.inject_failure = None
        assert tier1.solve(None, {}, {}).solver == "fake"


class TestLossyFeedbackBus:
    def test_parameter_validation(self):
        inner = FeedbackBus()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            LossyFeedbackBus(inner, rng, loss_probability=1.5)
        with pytest.raises(ValueError):
            LossyFeedbackBus(inner, rng, delay_multiplier=0.5)
        with pytest.raises(ValueError):
            LossyFeedbackBus(inner, rng, jitter=-1.0)

    def test_total_loss_drops_everything(self):
        inner = FeedbackBus()
        bus = LossyFeedbackBus(
            inner, np.random.default_rng(0), loss_probability=1.0
        )
        for i in range(10):
            bus.publish("c", float(i), now=0.1 * i)
        assert bus.lost == 10
        assert inner.publishes == 0
        assert bus.latest("c", 2.0) is None

    def test_partial_loss_lets_some_through(self):
        inner = FeedbackBus()
        bus = LossyFeedbackBus(
            inner, np.random.default_rng(0), loss_probability=0.5
        )
        for i in range(100):
            bus.publish("c", float(i), now=0.0)
        assert 0 < bus.lost < 100
        assert inner.publishes == 100 - bus.lost

    def test_delay_multiplier_stretches_visibility(self):
        inner = FeedbackBus(delay=0.1)
        bus = LossyFeedbackBus(
            inner, np.random.default_rng(0), delay_multiplier=3.0
        )
        bus.publish("c", 5.0, now=0.0)  # visible at ~0.3, not 0.1
        assert bus.latest("c", 0.15) is None
        assert bus.latest("c", 0.31) == 5.0

    def test_reads_and_counters_delegate(self):
        inner = FeedbackBus()
        bus = LossyFeedbackBus(inner, np.random.default_rng(0))
        bus.publish("c1", 10.0, 0.0)
        bus.publish("c2", 20.0, 0.0)
        assert bus.max_downstream_rate(["c1", "c2"], 0.0) == 20.0
        assert bus.min_downstream_rate(["c1", "c2"], 0.0) == 10.0
        assert bus.publishes == 2  # __getattr__ passthrough


class TestFaultValidationSatellites:
    def make_system(self, seed=3):
        return SimulatedSystem(
            small_topology(seed=seed), AcesPolicy(),
            config=SystemConfig(seed=7, warmup=0.5),
        )

    def test_directly_constructed_fault_validated_at_attach(self):
        """Bypassing the builders must not bypass magnitude checks."""
        bad = Fault("node_slowdown", "0", start=1.0, duration=1.0,
                    magnitude=1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan(faults=[bad]).attach(self.make_system())
        bad_loss = Fault("feedback_loss", "*", start=1.0, duration=1.0,
                         magnitude=2.0)
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(faults=[bad_loss]).attach(self.make_system())

    def test_overlapping_same_resource_rejected(self):
        plan = FaultPlan()
        plan.node_slowdown(0, factor=0.5, start=1.0, duration=2.0)
        plan.node_slowdown(0, factor=0.8, start=2.0, duration=2.0)
        with pytest.raises(ValueError, match="overlapping"):
            plan.attach(self.make_system())

    def test_stall_and_crash_share_the_pe_gate(self):
        system = self.make_system()
        pe = next(iter(system.runtimes))
        plan = FaultPlan()
        plan.pe_stall(pe, start=1.0, duration=1.0)
        plan.pe_crash(pe, start=1.5, duration=1.0)
        with pytest.raises(ValueError, match="overlapping"):
            plan.attach(system)

    def test_adjacent_windows_allowed(self):
        plan = FaultPlan()
        plan.node_slowdown(0, factor=0.5, start=1.0, duration=1.0)
        plan.node_slowdown(0, factor=0.8, start=2.0, duration=1.0)
        plan.attach(self.make_system())  # no error

    def test_different_resources_compose(self):
        plan = FaultPlan()
        plan.node_slowdown(0, factor=0.5, start=1.0, duration=2.0)
        plan.feedback_loss(0.5, start=1.0, duration=2.0)
        plan.tier1_outage(start=1.0, duration=2.0)
        plan.attach(self.make_system())  # no error

    def test_unknown_node_rejected(self):
        plan = FaultPlan().controller_outage(99, start=1.0, duration=1.0)
        with pytest.raises(ValueError, match="no node"):
            plan.attach(self.make_system())


class TestControlPlaneFaultsEndToEnd:
    def run_faulted(self, build_plan, seed=3, duration=4.0, **config_kw):
        topology = small_topology(seed=seed)
        recorder = MemoryRecorder(
            trace_filter=TraceFilter.parse(
                "kind=fault|feedback_stale|tier1_fallback"
            )
        )
        params = dict(
            seed=7, warmup=1.0, dt=0.01,
            feedback_staleness_ttl=0.05, feedback_stale_bound=0.0,
        )
        params.update(config_kw)
        system = SimulatedSystem(
            topology, AcesPolicy(),
            config=SystemConfig(**params), recorder=recorder,
        )
        plan = FaultPlan()
        build_plan(plan, topology)
        plan.attach(system)
        report = system.run(duration)
        return system, report, recorder

    def test_feedback_loss_completes_with_stale_events(self):
        """Acceptance: heavy feedback loss degrades gracefully — the run
        completes, staleness decay fires, and output keeps flowing."""
        system, report, recorder = self.run_faulted(
            lambda plan, topo: plan.feedback_loss(
                0.9, start=1.5, duration=2.0
            )
        )
        assert report.weighted_throughput > 0
        assert recorder.counts.get("feedback_stale", 0) >= 1
        assert recorder.counts.get("fault") == 2  # applied + reverted
        assert system.bus.stale_reads > 0
        assert not isinstance(system.bus, LossyFeedbackBus)  # reverted

    def test_tier1_outage_serves_from_last_known_good(self):
        """Acceptance: with Tier-1 down, re-solves fall back to the last
        good targets and the system keeps serving."""
        system, report, recorder = self.run_faulted(
            lambda plan, topo: plan.tier1_outage(start=1.2, duration=2.0),
            reoptimize_interval=0.5,
        )
        assert report.weighted_throughput > 0
        assert system.tier1.fallbacks >= 1
        assert recorder.counts.get("tier1_fallback", 0) >= 1
        assert system.tier1.inject_failure is None  # reverted
        # After the window, re-solves succeed again.
        assert system.tier1.last_good is not None

    def test_controller_outage_suspends_and_recovers(self):
        system, report, recorder = self.run_faulted(
            lambda plan, topo: plan.controller_outage(
                0, start=1.5, duration=1.0
            )
        )
        assert report.weighted_throughput > 0
        assert recorder.counts.get("fault") == 2
        assert not any(system._node_paused)  # resumed

    def test_pe_crash_loses_buffer_and_recovers(self):
        picked = {}

        def build(plan, topo):
            victim = topo.graph.intermediate_ids[0]
            picked["victim"] = victim
            plan.pe_crash(victim, start=2.0, duration=0.5)

        system, report, recorder = self.run_faulted(build)
        assert report.weighted_throughput > 0
        victim = system.runtimes[picked["victim"]]
        assert victim.buffer.telemetry.dropped > 0
        assert recorder.counts.get("fault") == 2

    def test_feedback_delay_jitter_completes(self):
        system, report, recorder = self.run_faulted(
            lambda plan, topo: plan.feedback_delay(
                5.0, start=1.5, duration=1.5, jitter=0.05
            )
        )
        assert report.weighted_throughput > 0
        assert recorder.counts.get("fault") == 2


class TestRuntimeSupervisor:
    def test_killed_worker_restarted_with_throughput(self):
        """Acceptance: a killed runtime worker is revived by the
        supervisor and the run still produces output."""
        topology = small_topology(seed=5)
        recorder = MemoryRecorder(
            trace_filter=TraceFilter.parse("kind=worker_restart")
        )
        runtime = SPCRuntime(
            topology, UdpPolicy(),
            config=RuntimeConfig(
                seed=3, warmup=0.4, dt=0.05,
                supervisor_poll=0.01, restart_backoff_base=0.02,
            ),
            recorder=recorder,
        )
        victim = topology.graph.ingress_ids[0]
        plan = FaultPlan().pe_crash(victim, start=0.7, duration=0.2)
        injector = plan.attach_runtime(runtime)
        injector.start()
        report = runtime.run(duration=1.6)

        assert report.worker_restarts >= 1
        assert runtime.pes[victim].generation >= 1
        assert report.total_output_sdos > 0
        assert recorder.counts.get("worker_restart", 0) >= 1
        event = next(
            e for e in recorder.events if e["kind"] == "worker_restart"
        )
        assert event["pe"] == victim

    def test_runtime_rejects_sim_only_kinds(self):
        topology = small_topology(seed=5)
        runtime = SPCRuntime(topology, UdpPolicy())
        plan = FaultPlan().tier1_outage(start=0.5, duration=0.5)
        with pytest.raises(ValueError, match="supports fault kinds"):
            plan.attach_runtime(runtime)


class TestMTTRMachinery:
    def test_mean_rate_window(self):
        rates = [(0.5, 1.0), (1.0, 2.0), (1.5, 3.0), (2.0, 4.0)]
        assert mean_rate(rates, 0.5, 1.5) == pytest.approx(2.5)
        assert mean_rate(rates, 5.0, 6.0) == 0.0

    def test_mttr_immediate_recovery(self):
        rates = [(t, 10.0) for t in np.arange(0.5, 5.0, 0.5)]
        assert measure_mttr(rates, fault_end=2.0, pre_fault_rate=10.0) == (
            pytest.approx(0.5)
        )

    def test_mttr_delayed_recovery_with_smoothing(self):
        # Degraded until t=3.0, then back; smoothing over 3 bins means
        # the window mean crosses 90% a couple of bins later.
        rates = [(t, 2.0) for t in (2.5, 3.0)] + [
            (t, 10.0) for t in (3.5, 4.0, 4.5, 5.0)
        ]
        mttr = measure_mttr(rates, fault_end=2.0, pre_fault_rate=10.0)
        assert mttr == pytest.approx(2.5)

    def test_mttr_never_recovers(self):
        rates = [(t, 1.0) for t in np.arange(2.5, 6.0, 0.5)]
        assert measure_mttr(rates, fault_end=2.0, pre_fault_rate=10.0) == (
            float("inf")
        )

    def test_mttr_zero_pre_fault_rate(self):
        assert measure_mttr([], fault_end=1.0, pre_fault_rate=0.0) == 0.0


class TestChaosCells:
    def test_feedback_loss_cell_recovers(self):
        """Acceptance: a 50%-feedback-loss ACES cell completes with
        stale-feedback events and a finite MTTR."""
        topology = small_topology(seed=2)
        result = run_chaos_cell(
            topology=topology,
            policy=AcesPolicy(),
            scenario=SCENARIOS["feedback-loss"],
            config=chaos_system_config(seed=11, warmup=1.0),
            duration=4.0,
            fault_start=1.4,
            fault_duration=1.0,
        )
        assert result.error is None
        assert result.pre_fault_rate > 0
        assert result.recovered
        assert result.mttr != float("inf")
        assert result.events["fault"] == 2

    def test_tier1_outage_cell(self):
        topology = small_topology(seed=2)
        result = run_chaos_cell(
            topology=topology,
            policy=AcesPolicy(),
            scenario=SCENARIOS["tier1-outage"],
            config=chaos_system_config(seed=11, warmup=1.0),
            duration=4.0,
            fault_start=1.4,
            fault_duration=1.0,
        )
        assert result.error is None
        assert result.events["tier1_fallback"] >= 1
        assert result.weighted_throughput > 0

    def test_bench_serialization_maps_inf_to_null(self, tmp_path):
        path = tmp_path / "bench.json"
        write_resilience_bench(
            {"cells": [{"mttr": float("inf"), "retention": 0.5}]},
            str(path),
        )
        data = json.loads(path.read_text())
        assert data["cells"][0]["mttr"] is None
        assert data["cells"][0]["retention"] == 0.5
