"""The invariant oracles: clean runs stay silent, injected bugs get caught.

The oracle subsystem is only trustworthy if it is quiet on correct
systems *and* loud on broken ones, so every invariant is tested from
both sides: full simulated runs under all three policies must produce
zero violations, and targeted corruptions (a dropped Eq. 7 clip, a
grant over the Eq. 8 cap, an over-capacity allocation round) must each
trip exactly the right oracle.
"""

import numpy as np
import pytest

from repro.check import InvariantViolation, OracleRecorder, check_conservation
from repro.core import flow_control
from repro.core.policies import policy_by_name
from repro.graph.topology import TopologySpec, generate_topology
from repro.obs.recorder import MemoryRecorder
from repro.systems.faults import FaultPlan
from repro.systems.simulated import SimulatedSystem, SystemConfig


def small_topology(seed=7):
    spec = TopologySpec(
        num_nodes=2,
        num_ingress=1,
        num_egress=1,
        num_intermediate=3,
        calibrate_rates=False,
    )
    return generate_topology(spec, np.random.default_rng(seed))


def build_checked_system(policy_name, topology=None, **config_kwargs):
    recorder = OracleRecorder()
    system = SimulatedSystem(
        topology if topology is not None else small_topology(),
        policy_by_name(policy_name),
        config=SystemConfig(warmup=0.0, seed=3, dt=0.02, **config_kwargs),
        recorder=recorder,
    )
    recorder.attach_plane(system.plane)
    return system, recorder


class TestCleanRuns:
    @pytest.mark.parametrize("policy_name", ["aces", "udp", "lockstep"])
    def test_no_violations_on_healthy_system(self, policy_name):
        system, recorder = build_checked_system(policy_name)
        system.run(2.0)
        assert recorder.finalize() == []
        assert recorder.ok
        assert check_conservation(system) == []
        # The oracle actually saw the control traffic.
        assert recorder.counts["cpu_grant"] > 0

    def test_no_violations_under_faults(self):
        system, recorder = build_checked_system("aces")
        plan = FaultPlan()
        plan.node_slowdown(0, factor=0.5, start=0.4, duration=0.5)
        plan.pe_crash("pe-2", start=1.0, duration=0.4)
        plan.attach(system)
        system.run(2.0)
        assert recorder.finalize() == []
        assert check_conservation(system) == []

    def test_sink_forwarding(self):
        sink = MemoryRecorder()
        recorder = OracleRecorder(sink=sink)
        system = SimulatedSystem(
            small_topology(),
            policy_by_name("aces"),
            config=SystemConfig(warmup=0.0, seed=3, dt=0.02),
            recorder=recorder,
        )
        recorder.attach_plane(system.plane)
        system.run(0.5)
        assert recorder.ok
        assert len(sink.events) == sum(recorder.counts.values()) > 0

    def test_events_before_attach_are_tolerated(self):
        # Systems emit bootstrap events (initial Tier-1 solve) before the
        # plane exists; the oracle must only do payload-level checks then.
        recorder = OracleRecorder()
        recorder.emit("r_max", pe="pe-0", r_max=1.0, occupancy=0.0, rho=1.0)
        recorder.emit("tier1_resolve", trigger="initial", converged=True)
        assert recorder.ok


def _update_without_clip(self, occupancy, rho):
    """FlowController.update with the Eq. 7 ``[.]+`` clip removed."""
    self._deviations.appendleft(occupancy - self.b0)
    r_max = rho
    for lam, dev in zip(self.gains.lambdas, self._deviations):
        r_max -= lam * dev
    for mu, sur in zip(self.gains.mus, self._surpluses):
        r_max -= mu * sur
    free = max(0.0, self.capacity - occupancy)
    ceiling = free / self._dt + rho
    if r_max > ceiling:
        r_max = ceiling
    self._surpluses.appendleft(r_max - rho)
    self.last_r_max = r_max
    self.updates += 1
    if self._recording:
        self.recorder.emit(
            "r_max", pe=self.pe_id, r_max=r_max, occupancy=occupancy, rho=rho
        )
    return r_max


def _update_without_surplus_terms(self, occupancy, rho):
    """FlowController.update ignoring the rate-history (mu) terms."""
    self._deviations.appendleft(occupancy - self.b0)
    r_max = rho
    for lam, dev in zip(self.gains.lambdas, self._deviations):
        r_max -= lam * dev
    if r_max < 0.0:
        r_max = 0.0
    free = max(0.0, self.capacity - occupancy)
    ceiling = free / self._dt + rho
    if r_max > ceiling:
        r_max = ceiling
    self._surpluses.appendleft(r_max - rho)
    self.last_r_max = r_max
    self.updates += 1
    if self._recording:
        self.recorder.emit(
            "r_max", pe=self.pe_id, r_max=r_max, occupancy=occupancy, rho=rho
        )
    return r_max


class TestInjectedBugs:
    def test_dropped_clip_is_caught(self, monkeypatch):
        monkeypatch.setattr(
            flow_control.FlowController, "update", _update_without_clip
        )
        system, recorder = build_checked_system("aces")
        # The feedback bus independently rejects negative r_max, so the
        # run dies — but the oracle has already seen the bad event.
        with pytest.raises(ValueError):
            system.run(2.0)
        assert recorder.violation_counts["r_max_nonnegative"] >= 1

    def test_dropped_surplus_terms_are_caught(self, monkeypatch):
        monkeypatch.setattr(
            flow_control.FlowController,
            "update",
            _update_without_surplus_terms,
        )
        system, recorder = build_checked_system("aces")
        system.run(2.0)
        assert recorder.violation_counts["r_max_law"] >= 1
        violation = recorder.violations[0]
        assert violation.equation == "Eq. 7"
        assert violation.pe is not None


class TestSyntheticEvents:
    """Drive single oracles with hand-crafted events."""

    def attach(self, recorder):
        system = SimulatedSystem(
            small_topology(),
            policy_by_name("aces"),
            config=SystemConfig(warmup=0.0, seed=3, dt=0.02),
            recorder=recorder,
        )
        recorder.attach_plane(system.plane)
        return system

    def test_token_bucket_bounds(self):
        recorder = OracleRecorder()
        recorder.emit(
            "token_bucket", pe="pe-0", node="node-0",
            level=5.0, rate=1.0, depth=2.0,
        )
        recorder.emit(
            "token_bucket", pe="pe-0", node="node-0",
            level=-1.0, rate=1.0, depth=2.0,
        )
        assert recorder.violation_counts["token_cap"] == 1
        assert recorder.violation_counts["token_nonnegative"] == 1

    def test_negative_grant(self):
        recorder = OracleRecorder()
        recorder.emit("cpu_grant", pe="pe-0", node="node-0", cpu=-0.5, dt=0.02)
        assert recorder.violation_counts["cpu_grant_nonnegative"] == 1

    def test_buffer_occupancy_bounds(self):
        recorder = OracleRecorder()
        recorder.emit(
            "buffer_occupancy", pe="pe-0", occupancy=60, capacity=50
        )
        assert recorder.violation_counts["buffer_bounds"] == 1

    def test_node_capacity_sum(self):
        recorder = OracleRecorder()
        system = self.attach(recorder)
        inspection = system.plane.inspection()
        node_id, size = next(
            (node, size)
            for node, size in inspection.group_sizes.items()
            if size > 0
        )
        capacity = inspection.schedulers[node_id].capacity
        pe_ids = [
            pe for pe, node in inspection.node_of.items() if node == node_id
        ]
        # One full allocation round where every PE gets the whole node.
        for pe_id in pe_ids[:size]:
            recorder.emit(
                "cpu_grant", pe=pe_id, node=node_id, cpu=capacity, dt=0.02
            )
        if size > 1:
            assert recorder.violation_counts["node_capacity"] == 1
        else:  # a single grant of exactly `capacity` is legal
            assert recorder.violation_counts["node_capacity"] == 0

    def test_feedback_cap(self):
        recorder = OracleRecorder()
        system = self.attach(recorder)
        inspection = system.plane.inspection()
        pe_id, node_id = next(iter(inspection.node_of.items()))
        # A grant far above g^-1 of a tiny advertised rate.
        recorder.emit(
            "cpu_grant", pe=pe_id, node=node_id,
            cpu=1.0, dt=0.02, cap_rate=1e-6,
        )
        assert recorder.violation_counts["feedback_cap"] == 1
        # Unconstrained downstream (cap_rate None) only bounds by capacity.
        recorder.violation_counts.clear()
        recorder.emit(
            "cpu_grant", pe=pe_id, node=node_id,
            cpu=0.5, dt=0.02, cap_rate=None,
        )
        assert recorder.violation_counts["feedback_cap"] == 0

    def test_paused_node_check(self):
        recorder = OracleRecorder()
        system = self.attach(recorder)
        inspection = system.plane.inspection()
        pe_id, node_id = next(iter(inspection.node_of.items()))
        system.plane.suspend_node(inspection.node_index[node_id])
        recorder.emit(
            "cpu_grant", pe=pe_id, node=node_id, cpu=0.1, dt=0.02
        )
        assert recorder.violation_counts["paused_node_silent"] == 1
        # Non-strict (live threaded) mode skips the racy pause check.
        relaxed = OracleRecorder(plane=system.plane, strict=False)
        relaxed.emit(
            "cpu_grant", pe=pe_id, node=node_id, cpu=0.1, dt=0.02
        )
        assert relaxed.violation_counts["paused_node_silent"] == 0

    def test_max_violations_cap_keeps_counting(self):
        recorder = OracleRecorder(max_violations=3)
        for _ in range(10):
            recorder.emit(
                "cpu_grant", pe="pe-0", node="node-0", cpu=-1.0, dt=0.02
            )
        assert len(recorder.violations) == 3
        assert recorder.violation_counts["cpu_grant_nonnegative"] == 10

    def test_violation_serialization(self):
        violation = InvariantViolation(
            invariant="x", equation="Eq. 7", t=1.0,
            pe="pe-1", node=None, detail="d",
        )
        record = violation.as_dict()
        assert record["invariant"] == "x"
        assert record["node"] is None


class TestConservation:
    def test_flush_and_reenqueue_accounted(self):
        system, recorder = build_checked_system("aces")
        plan = FaultPlan()
        plan.pe_crash("pe-2", start=0.4, duration=0.3)
        plan.attach(system)
        system.run(1.5)
        assert check_conservation(system) == []
        flushed = sum(
            runtime.buffer.telemetry.flushed
            for runtime in system.runtimes.values()
        )
        assert flushed >= 0  # crash may or may not have caught SDOs

    def test_detects_corrupted_counter(self):
        system, _ = build_checked_system("aces")
        system.run(0.5)
        runtime = next(iter(system.runtimes.values()))
        runtime.buffer.telemetry.offered += 5
        names = {v.invariant for v in check_conservation(system)}
        assert "buffer_offer_conservation" in names
