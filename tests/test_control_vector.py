"""Scalar-vs-vector control-tick parity: the tentpole guarantee.

``control_impl="vector"`` must be a pure performance knob: every policy,
substrate, bucket layout, and fault scenario produces bit-identical
decisions (r_max floats, CPU grants, gate/blocked sets) and byte-identical
traces compared to the scalar per-PE loops.  These tests pin that
contract, the scalar-fallback conditions, and the array kernels
themselves (water-fill, feedback bus, index registry).
"""

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.conservation import check_conservation
from repro.check.oracles import OracleRecorder
from repro.control.vector import (
    PEIndexRegistry,
    VectorFeedbackBus,
    fallback_reason,
    numpy_enabled,
    vector_proportional_fill,
)
from repro.core.cpu_control import (
    AcesCpuScheduler,
    StrictProportionalScheduler,
    _proportional_fill,
)
from repro.core.feedback import FeedbackBus
from repro.core.global_opt import solve_global_allocation
from repro.core.policies import AcesPolicy, LockStepPolicy, UdpPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.sdo import SDO
from repro.obs.recorder import MemoryRecorder
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.simulated import SimulatedSystem, SystemConfig

DT = 0.02
BUFFER = 20
STEPS = 40

POLICY_VARIANTS = {
    "aces": lambda: AcesPolicy(),
    "aces-min": lambda: AcesPolicy(aggregation="min"),
    "aces-prop": lambda: AcesPolicy(controller="proportional"),
    "aces-strict": lambda: AcesPolicy(scheduler="strict"),
    "udp": lambda: UdpPolicy(),
    "lockstep": lambda: LockStepPolicy(),
}


def parity_topology(seed=3):
    spec = TopologySpec(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=5,
        calibrate_rates=False,
    )
    return generate_topology(spec, np.random.default_rng(seed))


def script_occupancies(pes_by_id, step, now):
    for pe_index, pe_id in enumerate(sorted(pes_by_id)):
        pe = pes_by_id[pe_id]
        for _ in range((pe_index * 3 + step * 7) % 5):
            sdo = SDO(stream_id=f"script:{pe_id}", origin_time=now)
            if hasattr(pe, "channel"):  # threaded substrate
                pe.channel.offer(sdo)
            else:
                pe.ingest(sdo, now)


def drive(plane, pes_by_id):
    """Scripted decision trace: (node, grants, r_max, blocked) per tick."""
    decisions = []
    for step in range(STEPS):
        now = (step + 1) * DT
        script_occupancies(pes_by_id, step, now)
        for controller in plane.node_controllers:
            grants = controller.control(now)
            r_max = {
                record.pe_id: record.controller.last_r_max
                for record in controller.records
                if record.controller is not None
            }
            decisions.append(
                (
                    controller.node_id,
                    dict(grants),
                    r_max,
                    controller.last_blocked,
                )
            )
    return decisions


needs_numpy = pytest.mark.skipif(
    not numpy_enabled(), reason="vector path requires numpy"
)


# -- scripted-drive parity ----------------------------------------------


@needs_numpy
@pytest.mark.parametrize("variant", sorted(POLICY_VARIANTS))
def test_scripted_drive_parity_simulated(variant):
    topology = parity_topology()
    factory = POLICY_VARIANTS[variant]
    targets = solve_global_allocation(
        topology.graph, topology.placement, topology.source_rates
    ).targets
    decisions = {}
    for impl in ("scalar", "vector"):
        system = SimulatedSystem(
            topology,
            factory(),
            targets=targets,
            config=SystemConfig(
                buffer_size=BUFFER,
                dt=DT,
                feedback_delay=0.0,
                seed=5,
                control_impl=impl,
            ),
        )
        if impl == "vector" and not os.environ.get("REPRO_FORCE_SCALAR"):
            assert system.plane.control_impl == "vector", (
                system.plane.vector_fallback_reason
            )
        decisions[impl] = drive(system.plane, system.runtimes)
    assert len(decisions["scalar"]) == len(decisions["vector"]) > 0
    assert decisions["scalar"] == decisions["vector"]


@needs_numpy
@pytest.mark.parametrize("variant", ["aces", "aces-strict", "udp", "lockstep"])
def test_scripted_drive_parity_threaded(variant):
    topology = parity_topology()
    factory = POLICY_VARIANTS[variant]
    decisions = {}
    for impl in ("scalar", "vector"):
        runtime = SPCRuntime(
            topology,
            factory(),
            config=RuntimeConfig(
                buffer_size=BUFFER, dt=DT, seed=5, control_impl=impl
            ),
        )
        decisions[impl] = drive(runtime.plane, runtime.pes)
    assert decisions["scalar"] == decisions["vector"]


# -- full-run parity -----------------------------------------------------


def report_key(report):
    return (
        report.weighted_throughput,
        report.total_output_sdos,
        report.buffer_drops,
    )


def run_pair(policy_factory, *, duration=1.0, recorders=None, **overrides):
    """Run the same system scalar and vector; return both reports."""
    topology = parity_topology()
    reports = {}
    for impl in ("scalar", "vector"):
        params = dict(dt=0.01, warmup=0.1, seed=3, control_impl=impl)
        params.update(overrides)
        recorder = recorders[impl] if recorders is not None else None
        system = SimulatedSystem(
            topology,
            policy_factory(),
            config=SystemConfig(**params),
            recorder=recorder,
        )
        reports[impl] = system.run(duration)
    return reports


@needs_numpy
@pytest.mark.parametrize("variant", ["aces", "udp", "lockstep"])
def test_full_run_report_parity(variant):
    reports = run_pair(POLICY_VARIANTS[variant])
    assert report_key(reports["scalar"]) == report_key(reports["vector"])


@needs_numpy
@pytest.mark.parametrize("variant", ["aces", "aces-min", "udp"])
def test_full_run_parity_bucketed(variant):
    reports = run_pair(POLICY_VARIANTS[variant], control_phase_buckets=4)
    assert report_key(reports["scalar"]) == report_key(reports["vector"])


@needs_numpy
def test_trace_byte_equality():
    recorders = {"scalar": MemoryRecorder(), "vector": MemoryRecorder()}
    run_pair(POLICY_VARIANTS["aces"], recorders=recorders)
    scalar = [
        json.dumps(e, sort_keys=True, default=str)
        for e in recorders["scalar"].events
    ]
    vector = [
        json.dumps(e, sort_keys=True, default=str)
        for e in recorders["vector"].events
    ]
    assert len(scalar) > 0
    assert scalar == vector


# -- bucketed semantics --------------------------------------------------


def test_bucket_guard_rejects_feedback_with_zero_delay():
    topology = parity_topology()
    with pytest.raises(ValueError, match="feedback"):
        SimulatedSystem(
            topology,
            AcesPolicy(),
            config=SystemConfig(
                dt=0.01,
                feedback_delay=0.0,
                control_phase_buckets=2,
                seed=3,
            ),
        )


def test_buckets_allowed_without_feedback():
    topology = parity_topology()
    system = SimulatedSystem(
        topology,
        UdpPolicy(),
        config=SystemConfig(
            dt=0.01,
            warmup=0.1,
            feedback_delay=0.0,
            control_phase_buckets=2,
            seed=3,
        ),
    )
    report = system.run(0.5)
    assert report.total_output_sdos >= 0


# -- fallback ------------------------------------------------------------


def test_force_scalar_env_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_SCALAR", "1")
    system = SimulatedSystem(
        parity_topology(),
        AcesPolicy(),
        config=SystemConfig(dt=0.01, warmup=0.1, seed=3, control_impl="vector"),
    )
    assert system.plane.control_impl == "scalar"
    assert "REPRO_FORCE_SCALAR" in system.plane.vector_fallback_reason


def test_fallback_reason_unknown_scheduler(monkeypatch):
    monkeypatch.delenv("REPRO_FORCE_SCALAR", raising=False)

    class WeirdScheduler:
        pass

    reason = fallback_reason([WeirdScheduler()], uses_feedback=True)
    if numpy_enabled():
        assert reason is not None and "WeirdScheduler" in reason
    else:
        assert reason is not None and "numpy" in reason


@needs_numpy
def test_fallback_reason_mixed_and_gated_tokens(monkeypatch):
    monkeypatch.delenv("REPRO_FORCE_SCALAR", raising=False)
    aces = object.__new__(AcesCpuScheduler)
    strict = object.__new__(StrictProportionalScheduler)
    assert fallback_reason([aces, strict], uses_feedback=True) is not None
    assert fallback_reason([aces], uses_feedback=False) is not None
    assert fallback_reason([aces], uses_feedback=True) is None
    assert fallback_reason([strict], uses_feedback=False) is None


def test_config_rejects_unknown_impl():
    with pytest.raises(ValueError, match="control_impl"):
        SystemConfig(control_impl="turbo")


# -- oracles and conservation under vector -------------------------------


@needs_numpy
@pytest.mark.parametrize(
    "variant,buckets",
    [("aces", None), ("aces", 3), ("aces-strict", None), ("lockstep", None)],
)
def test_vector_runs_clean_under_strict_oracles(variant, buckets):
    topology = parity_topology()
    oracle = OracleRecorder(strict=True)
    system = SimulatedSystem(
        topology,
        POLICY_VARIANTS[variant](),
        config=SystemConfig(
            dt=0.01,
            warmup=0.1,
            seed=3,
            control_impl="vector",
            control_phase_buckets=buckets,
        ),
        recorder=oracle,
    )
    oracle.attach_plane(system.plane)
    system.run(0.8)
    assert oracle.violations == []
    assert check_conservation(system) == []


# -- array kernels -------------------------------------------------------


@needs_numpy
@settings(
    max_examples=100, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=1, max_value=8),
    budget=st.floats(min_value=0.0, max_value=100.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_water_fill_parity(n, budget, seed):
    """vector_proportional_fill drives the same kernel the engine uses
    and must agree element-wise (bit-exact) with _proportional_fill."""
    rng = np.random.default_rng(seed)
    keys = [f"pe-{i}" for i in range(n)]
    demands = {k: float(d) for k, d in zip(keys, rng.uniform(0, 20, n))}
    # Mix zero demands/weights in to hit the inactive-lane branches.
    for k in keys:
        if rng.random() < 0.3:
            demands[k] = 0.0
    weights = {k: float(w) for k, w in zip(keys, rng.uniform(0, 5, n))}
    scalar = _proportional_fill(demands, weights, budget)
    vector = vector_proportional_fill(demands, weights, budget)
    assert set(scalar) == set(vector)
    for k in scalar:
        assert scalar[k] == vector[k], (k, scalar[k], vector[k])


@needs_numpy
def test_vector_feedback_bus_matches_scalar_bus():
    """Delayed and jittered publishes settle to identical reads."""

    class _PE:
        def __init__(self, pe_id):
            self.pe_id = pe_id
            self.downstream = []

    class _Group:
        def __init__(self, pes):
            self.pes = pes

    pes = [_PE(f"pe-{i}") for i in range(4)]
    registry = PEIndexRegistry([_Group(pes)])
    vec = VectorFeedbackBus(registry, delay=0.05)
    ref = FeedbackBus(delay=0.05)

    publications = [
        (0.0, "pe-0", 5.0, 0.0),
        (0.0, "pe-1", 3.0, 0.02),  # jittered: lands later
        (0.1, "pe-0", 7.0, 0.0),
        (0.1, "pe-2", 1.0, 0.0),
        (0.15, "pe-1", 9.0, 0.0),
    ]
    probes = [0.04, 0.06, 0.11, 0.16, 0.25]
    for bus in (vec, ref):
        for when, pe_id, value, extra in publications:
            bus.publish(pe_id, value, when, extra_delay=extra)
    for now in probes:
        for pe_id in ("pe-0", "pe-1", "pe-2", "pe-3"):
            assert vec.latest(pe_id, now) == ref.latest(pe_id, now), (
                now,
                pe_id,
            )
        ids = ("pe-0", "pe-1", "pe-3")
        assert vec.max_downstream_rate(ids, now) == ref.max_downstream_rate(
            ids, now
        )
        assert vec.min_downstream_rate(ids, now) == ref.min_downstream_rate(
            ids, now
        )
    assert vec.publishes == ref.publishes


@needs_numpy
def test_index_registry_dedupes_downstream_edges():
    class _PE:
        def __init__(self, pe_id):
            self.pe_id = pe_id
            self.downstream = []

    class _Group:
        def __init__(self, pes):
            self.pes = pes

    a, b, c = _PE("a"), _PE("b"), _PE("c")
    a.downstream = [b, c, b]  # duplicate edge a->b
    groups = [_Group([a, b]), _Group([c])]
    registry = PEIndexRegistry(groups)
    assert registry.ids == ["a", "b", "c"]
    assert len(registry) == 3
    # Node-major slices.
    assert registry.node_slices == [slice(0, 2), slice(2, 3)]
    # CSR row for 'a' holds each downstream once, insertion-ordered.
    start, stop = registry.down_indptr[0], registry.down_indptr[1]
    assert list(registry.down_indices[start:stop]) == [
        registry.index["b"],
        registry.index["c"],
    ]


# -- satellite: scalar-tick record dedupe --------------------------------


def test_control_record_downstream_ids_deduped():
    """ControlRecord.downstream_ids holds each downstream PE once, in
    first-seen order, even when the graph wires duplicate edges."""
    from repro.control.node import ControlRecord

    class _PE:
        def __init__(self, pe_id, downstream=()):
            self.pe_id = pe_id
            self.downstream = list(downstream)

    b, c = _PE("b"), _PE("c")
    record = ControlRecord(
        _PE("a", [b, c, b, c, b]), gate=None, controller=None, cpu_target=0.1
    )
    assert record.downstream_ids == ("b", "c")

    rebuilt = SimulatedSystem(
        parity_topology(),
        AcesPolicy(),
        config=SystemConfig(dt=0.01, warmup=0.1, seed=3),
    )
    for ctrl in rebuilt.plane.node_controllers:
        for rec in ctrl.records:
            assert len(rec.downstream_ids) == len(set(rec.downstream_ids))
            expected = tuple(
                dict.fromkeys(
                    d.pe_id for d in rebuilt.runtimes[rec.pe_id].downstream
                )
            )
            assert rec.downstream_ids == expected


@needs_numpy
def test_chaos_fault_injection_parity():
    """LossyFeedbackBus swap + node slowdown stay bit-exact: the engine
    detects the foreign bus per tick and mirrors scalar read order."""
    from repro.systems.faults import FaultPlan

    topology = parity_topology()
    reports = {}
    for impl in ("scalar", "vector"):
        plan = (
            FaultPlan()
            .feedback_loss(probability=0.5, start=0.2, duration=0.3)
            .node_slowdown(node_index=1, factor=0.5, start=0.3, duration=0.3)
            .feedback_delay(
                multiplier=3.0, start=0.7, duration=0.2, jitter=0.005
            )
        )
        system = SimulatedSystem(
            topology,
            AcesPolicy(),
            config=SystemConfig(
                dt=0.01, warmup=0.1, seed=3, control_impl=impl
            ),
        )
        plan.attach(system)
        reports[impl] = system.run(1.2)
    assert report_key(reports["scalar"]) == report_key(reports["vector"])


@needs_numpy
def test_suspend_resume_parity():
    topology = parity_topology()
    reports = {}
    for impl in ("scalar", "vector"):
        system = SimulatedSystem(
            topology,
            AcesPolicy(),
            config=SystemConfig(
                dt=0.01, warmup=0.1, seed=3, control_impl=impl
            ),
        )

        def pauser(system=system):
            yield system.env.timeout(0.3)
            system.plane.suspend_node(2)
            yield system.env.timeout(0.3)
            system.plane.resume_node(2)

        system.env.process(pauser())
        reports[impl] = system.run(1.0)
    assert report_key(reports["scalar"]) == report_key(reports["vector"])


@needs_numpy
def test_empty_node_group_runs():
    """A placement can leave a node with zero PEs; the vector tick must
    treat its (empty) group as a no-op, exactly like the scalar loop.
    Regression: fuzz seed 3 hit an IndexError building the group."""
    spec = TopologySpec(
        num_nodes=4,
        num_ingress=1,
        num_egress=1,
        num_intermediate=1,
        calibrate_rates=False,
    )
    topology = generate_topology(spec, np.random.default_rng(3))
    reports = {}
    for impl in ("scalar", "vector"):
        system = SimulatedSystem(
            topology,
            AcesPolicy(),
            config=SystemConfig(
                dt=0.01, warmup=0.1, seed=3, control_impl=impl
            ),
        )
        reports[impl] = system.run(0.6)
    assert report_key(reports["scalar"]) == report_key(reports["vector"])


@needs_numpy
def test_reoptimize_parity():
    reports = run_pair(POLICY_VARIANTS["aces"], reoptimize_interval=0.3)
    assert report_key(reports["scalar"]) == report_key(reports["vector"])
