"""Property-based tests for the admission degradation ladder.

Hypothesis drives arbitrary pressure walks and hysteresis-band
configurations through :class:`~repro.control.admission.DegradationLadder`
and asserts the structural contract the resilience matrix relies on:
adaptive moves only ever descend the ladder (toward harsher levels),
recovery ascends exactly one rung, no two transitions land inside one
min-dwell window, levels stay inside the enum, and the oscillation
counter stays at zero — thrash is impossible by construction, not by
tuning.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionLevel,
    DegradationLadder,
)

ladder_settings = settings(max_examples=100, deadline=None)


@st.composite
def admission_configs(draw):
    """Valid hysteresis ladders: exit[i] < enter[i], both increasing."""
    min_dwell = draw(
        st.floats(min_value=0.05, max_value=2.0, allow_nan=False)
    )
    base = draw(st.floats(min_value=0.2, max_value=1.5, allow_nan=False))
    gaps = [
        draw(st.floats(min_value=0.05, max_value=0.5, allow_nan=False))
        for _ in range(3)
    ]
    margins = [
        draw(st.floats(min_value=0.01, max_value=0.2, allow_nan=False))
        for _ in range(3)
    ]
    enter = []
    level = base
    for gap in gaps:
        level += gap
        enter.append(level)
    exit_ = [e - m for e, m in zip(enter, margins)]
    # The exit ladder must itself be strictly increasing.
    for i in range(1, 3):
        if exit_[i] <= exit_[i - 1]:
            exit_[i] = (exit_[i - 1] + enter[i]) / 2.0
    return AdmissionConfig(
        slo_p95=1.0,
        min_dwell=min_dwell,
        enter=tuple(enter),
        exit=tuple(exit_),
    )


@st.composite
def pressure_walks(draw):
    """A sequence of (pressure, dt) observations, dt >= 0 and increasing."""
    steps = draw(st.integers(min_value=1, max_value=120))
    walk = []
    for _ in range(steps):
        pressure = draw(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
        )
        dt = draw(
            st.floats(min_value=0.0, max_value=1.5, allow_nan=False)
        )
        walk.append((pressure, dt))
    return walk


@ladder_settings
@given(config=admission_configs(), walk=pressure_walks())
def test_property_ladder_contract(config, walk):
    ladder = DegradationLadder(config)
    now = 0.0
    moves = []
    for pressure, dt in walk:
        now += dt
        move = ladder.step(pressure, now)
        assert ladder.level in AdmissionLevel
        if move is not None:
            moves.append(move)
            if move.cause == "adaptive":
                # Downgrades descend toward harsher levels, landing on
                # the deepest level whose enter threshold the pressure
                # meets.
                assert move.level > move.prev
                assert pressure >= config.enter_threshold(
                    move.level
                ) or move.level is AdmissionLevel.NORMAL
            else:
                assert move.cause == "recovery"
                assert int(move.level) == int(move.prev) - 1
                assert pressure <= config.exit_threshold(move.prev)
    # No two transitions inside one dwell window.
    for earlier, later in zip(moves, moves[1:]):
        assert later.at - earlier.at >= config.min_dwell
    # Thrash is structurally impossible: the dwell window that gates a
    # recovery also covers any re-entry, so the counter never trips.
    assert ladder.oscillations == 0
    assert ladder.transitions == len(moves)


@ladder_settings
@given(config=admission_configs(), walk=pressure_walks())
def test_property_level_tracks_hysteresis_band(config, walk):
    """After every observation the level is consistent with its band:
    pressure above the level's own enter threshold cannot leave it below
    that level once the dwell has expired."""
    ladder = DegradationLadder(config)
    now = 0.0
    for pressure, dt in walk:
        now += dt
        ladder.step(pressure, now)
        if ladder.dwell_remaining(now) == 0.0:
            # Free to move: the level must already be at least the
            # deepest rung whose enter band the pressure meets.
            for index, level in enumerate(
                (
                    AdmissionLevel.SHED_LOW,
                    AdmissionLevel.SHED_HIGH,
                    AdmissionLevel.REJECT,
                )
            ):
                if pressure >= config.enter[index]:
                    assert ladder.level >= level


@ladder_settings
@given(
    fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    offers=st.integers(min_value=1, max_value=400),
)
def test_property_accumulator_shed_exact_fraction(fraction, offers):
    """Accumulator shedding sheds exactly floor(fraction * n) of any
    prefix — the deterministic-fraction contract both substrates share."""
    config = AdmissionConfig(
        slo_p95=1.0,
        shed_low_fraction=fraction,
        shed_high_fraction=max(fraction, 0.6),
    )
    controller = AdmissionController(config)
    controller.set_manual_level(AdmissionLevel.SHED_LOW)
    shed = 0
    for i in range(offers):
        verdict = controller.admit_ingress("src:a", float(i))
        if verdict == "shed":
            shed += 1
        # Exact prefix property: within one SDO of the ideal line
        # (plus float-accumulation slack on the boundary).
        assert abs(shed - fraction * (i + 1)) <= 1.0 + 1e-6
    assert shed == controller.total_shed


@ladder_settings
@given(
    walk=pressure_walks(),
    kill_at=st.integers(min_value=0, max_value=60),
    release_at=st.integers(min_value=0, max_value=120),
)
def test_property_kill_switch_dominates(walk, kill_at, release_at):
    """While the kill switch is engaged the effective level is KILL no
    matter what the adaptive ladder does underneath."""
    controller = AdmissionController(AdmissionConfig(slo_p95=1.0))
    now = 0.0
    for step, (pressure, dt) in enumerate(walk):
        now += dt
        if step == kill_at:
            controller.set_kill_switch(True)
        if step == release_at and release_at > kill_at:
            controller.set_kill_switch(False)
        controller.observe(pressure, now)
        if controller.kill_switch:
            assert controller.effective_level is AdmissionLevel.KILL
            assert controller.admit_ingress("src:a", now) == "reject"
        else:
            assert controller.effective_level is controller.ladder.level
