"""Additional coverage: runner pairing, seeds, and report invariants."""

import numpy as np
import pytest

from repro.core.policies import AcesPolicy, UdpPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_replication
from repro.graph.topology import TopologySpec, generate_topology
from repro.systems.simulated import SystemConfig, run_system


def tiny_experiment(**overrides):
    params = dict(
        name="tiny",
        spec=TopologySpec(
            num_nodes=2,
            num_ingress=2,
            num_egress=2,
            num_intermediate=2,
            calibrate_rates=False,
        ),
        duration=2.0,
        replications=1,
    )
    params.update(overrides)
    return ExperimentConfig(**params).with_system(warmup=1.0)


class TestPairedDesign:
    def test_same_replication_same_topology(self):
        """Two separate calls with the same replication index generate
        identical topologies — the paired design is reproducible."""
        config = tiny_experiment()
        topo_a, _, _ = run_replication(config, [UdpPolicy()], replication=0)
        topo_b, _, _ = run_replication(config, [UdpPolicy()], replication=0)
        assert topo_a.graph.edges() == topo_b.graph.edges()
        assert topo_a.placement == topo_b.placement

    def test_different_replications_different_topologies(self):
        config = tiny_experiment()
        topo_a, _, _ = run_replication(config, [UdpPolicy()], replication=0)
        topo_b, _, _ = run_replication(config, [UdpPolicy()], replication=1)
        assert topo_a.graph.edges() != topo_b.graph.edges() or (
            topo_a.source_rates != topo_b.source_rates
        )

    def test_base_seed_shifts_everything(self):
        a = tiny_experiment(base_seed=0)
        b = tiny_experiment(base_seed=100)
        topo_a, _, _ = run_replication(a, [UdpPolicy()], replication=0)
        topo_b, _, _ = run_replication(b, [UdpPolicy()], replication=0)
        assert topo_a.graph.edges() != topo_b.graph.edges() or (
            topo_a.source_rates != topo_b.source_rates
        )


class TestReportInvariants:
    @pytest.fixture(scope="class")
    def report(self):
        spec = TopologySpec(
            num_nodes=3,
            num_ingress=2,
            num_egress=2,
            num_intermediate=4,
            calibrate_rates=False,
        )
        topology = generate_topology(spec, np.random.default_rng(0))
        return run_system(
            topology, AcesPolicy(), duration=5.0,
            config=SystemConfig(seed=2, warmup=2.0),
        )

    def test_latency_stats_consistent(self, report):
        assert report.latency.minimum <= report.latency.mean
        assert report.latency.mean <= report.latency.maximum
        assert report.latency.std >= 0.0

    def test_throughput_consistent_with_counts(self, report):
        # weighted throughput uses per-egress weights; with weights in
        # [0.5, 2] it must bracket count/duration scaled by those bounds.
        rate = report.total_output_sdos / report.duration
        assert 0.4 * rate <= report.weighted_throughput <= 2.1 * rate

    def test_egress_detail_counts_sum(self, report):
        total = sum(count for _, count, _ in report.egress_detail.values())
        assert total == report.total_output_sdos

    def test_loss_rate_in_unit_interval(self, report):
        assert 0.0 <= report.input_loss_rate <= 1.0

    def test_wasted_work_in_unit_interval(self, report):
        assert 0.0 <= report.wasted_work_fraction <= 1.0
