"""Benchmark outputs are byte-identical across consecutive seeded runs.

The ``BENCH_*.json`` artifacts the benchmark suite writes are diffed
across commits to spot regressions, which only works if two runs of the
same code at the same seed produce the same bytes — no wall-clock
fields, no dict-ordering drift, no hidden global RNG state leaking
between runs.
"""

import json

from benchmarks.conftest import experiment_scale
from repro.experiments.resilience import run_chaos_matrix, write_resilience_bench
from repro.graph.topology import TopologySpec


def small_spec():
    return TopologySpec(
        num_nodes=2,
        num_ingress=1,
        num_egress=1,
        num_intermediate=3,
    )


def test_resilience_bench_bytes_identical(tmp_path):
    paths = []
    for name in ("first.json", "second.json"):
        results = run_chaos_matrix(
            small_spec(),
            policies=["udp"],
            scenarios=["node-slowdown"],
            duration=2.0,
            warmup=0.5,
            seed=11,
        )
        path = tmp_path / name
        write_resilience_bench(results, str(path))
        paths.append(path)
    first, second = (path.read_bytes() for path in paths)
    assert first == second
    # Sanity: the file actually carries measurements.
    payload = json.loads(first)
    assert payload["cells"][0]["policy"] == "udp"


def test_experiment_scale_is_stable():
    """The shared bench configuration itself is deterministic: two calls
    yield the same experiment cell (same seeds, durations, topology)."""
    first = experiment_scale()
    second = experiment_scale()
    assert first.name == second.name
    assert first.system == second.system
    assert first.duration == second.duration
    assert first.replications == second.replications
