"""Benchmark outputs are byte-identical across consecutive seeded runs.

The ``BENCH_*.json`` artifacts the benchmark suite writes are diffed
across commits to spot regressions, which only works if two runs of the
same code at the same seed produce the same bytes — no wall-clock
fields, no dict-ordering drift, no hidden global RNG state leaking
between runs.
"""

import json

from benchmarks.conftest import experiment_scale
from repro.experiments.admission import run_admission_matrix, write_admission_bench
from repro.experiments.config import smoke_experiment
from repro.experiments.elasticity import (
    run_elasticity_matrix,
    write_elasticity_bench,
)
from repro.experiments.figures import figure3_latency
from repro.experiments.forecast import (
    run_forecast_matrix,
    write_forecast_bench,
)
from repro.experiments.reporting import format_table
from repro.experiments.resilience import run_chaos_matrix, write_resilience_bench
from repro.graph.topology import TopologySpec


def small_spec():
    return TopologySpec(
        num_nodes=2,
        num_ingress=1,
        num_egress=1,
        num_intermediate=3,
    )


def test_resilience_bench_bytes_identical(tmp_path):
    paths = []
    for name in ("first.json", "second.json"):
        results = run_chaos_matrix(
            small_spec(),
            policies=["udp"],
            scenarios=["node-slowdown"],
            duration=2.0,
            warmup=0.5,
            seed=11,
        )
        path = tmp_path / name
        write_resilience_bench(results, str(path))
        paths.append(path)
    first, second = (path.read_bytes() for path in paths)
    assert first == second
    # Sanity: the file actually carries measurements.
    payload = json.loads(first)
    assert payload["cells"][0]["policy"] == "udp"


def test_admission_bench_bytes_identical(tmp_path):
    paths = []
    for name in ("first.json", "second.json"):
        results = run_admission_matrix(
            workloads=("squarewave",),
            lambdas=(8.0,),
            duration=3.0,
            warmup=0.5,
            seed=11,
            spec=small_spec(),
        )
        path = tmp_path / name
        write_admission_bench(results, str(path))
        paths.append(path)
    first, second = (path.read_bytes() for path in paths)
    assert first == second
    payload = json.loads(first)
    # One plain and one admission-armed cell per (workload, lambda) pair.
    assert [c["mode"] for c in payload["cells"]] == ["plain", "admission"]
    assert payload["summary"]["errors"] == 0


def test_elasticity_bench_bytes_identical(tmp_path):
    paths = []
    for name in ("first.json", "second.json"):
        results = run_elasticity_matrix(
            policies=("udp",),
            duration=6.0,
            warmup=0.5,
            seed=11,
        )
        path = tmp_path / name
        write_elasticity_bench(results, str(path))
        paths.append(path)
    first, second = (path.read_bytes() for path in paths)
    assert first == second
    payload = json.loads(first)
    # One static and one elastic cell for the single policy.
    assert [c["mode"] for c in payload["cells"]] == ["static", "elastic"]
    assert payload["summary"]["errors"] == 0


def test_forecast_bench_bytes_identical(tmp_path):
    paths = []
    for name in ("first.json", "second.json"):
        results = run_forecast_matrix(
            scenarios=("flashcrowd",),
            duration=6.0,
            warmup=0.5,
            seed=11,
        )
        path = tmp_path / name
        write_forecast_bench(results, str(path))
        paths.append(path)
    first, second = (path.read_bytes() for path in paths)
    assert first == second
    payload = json.loads(first)
    # One reactive and one proactive cell for the single scenario.
    assert [c["mode"] for c in payload["cells"]] == ["reactive", "proactive"]
    assert payload["summary"]["errors"] == 0
    assert payload["summary"]["total_violations"] == 0


def test_fig3_percentile_table_bytes_identical():
    """The Fig. 3 latency table — now carrying p50/p95/p99 columns from
    the streaming histograms — renders byte-identically across runs."""
    config = smoke_experiment(
        name="fig3-determinism",
        spec=small_spec(),
        duration=1.5,
        replications=2,
    )
    tables = []
    for _ in range(2):
        rows = figure3_latency(config=config, buffer_sizes=(5, 10))
        tables.append(format_table(rows, precision=3).encode())
    assert tables[0] == tables[1]
    # Sanity: the percentile columns are present and ordered.
    rows = figure3_latency(config=config, buffer_sizes=(5,))
    row = rows[0]
    for name in ("aces", "lockstep"):
        assert (
            row[f"{name}_latency_p50_ms"]
            <= row[f"{name}_latency_p95_ms"]
            <= row[f"{name}_latency_p99_ms"]
        )


def test_experiment_scale_is_stable():
    """The shared bench configuration itself is deterministic: two calls
    yield the same experiment cell (same seeds, durations, topology)."""
    first = experiment_scale()
    second = experiment_scale()
    assert first.name == second.name
    assert first.system == second.system
    assert first.duration == second.duration
    assert first.replications == second.replications
