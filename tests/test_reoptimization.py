"""Tests for the periodic Tier-1 re-optimization loop."""

import numpy as np
import pytest

from repro.core.cpu_control import AcesCpuScheduler, StrictProportionalScheduler
from repro.core.policies import AcesPolicy, UdpPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.params import PEProfile
from repro.model.pe import PERuntime
from repro.systems.faults import FaultPlan
from repro.systems.simulated import SimulatedSystem, SystemConfig


def small_topology(seed=0, **overrides):
    params = dict(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=4,
        calibrate_rates=False,
    )
    params.update(overrides)
    return generate_topology(
        TopologySpec(**params), np.random.default_rng(seed)
    )


class TestSchedulerTargetUpdates:
    def make_pe(self, pe_id):
        return PERuntime(
            PEProfile(pe_id=pe_id), buffer_capacity=10,
            rng=np.random.default_rng(0),
        )

    def test_aces_scheduler_update(self):
        pe = self.make_pe("a")
        scheduler = AcesCpuScheduler([pe], {"a": 0.2}, dt=0.01)
        scheduler.update_targets({"a": 0.8})
        bucket = scheduler.buckets["a"]
        assert bucket.rate == 0.8
        assert bucket.depth == pytest.approx(0.8 * 0.01 * 20.0)

    def test_aces_update_clamps_banked_tokens(self):
        pe = self.make_pe("a")
        scheduler = AcesCpuScheduler([pe], {"a": 0.8}, dt=0.01)
        scheduler.buckets["a"].level = scheduler.buckets["a"].depth
        scheduler.update_targets({"a": 0.01})
        bucket = scheduler.buckets["a"]
        assert bucket.level <= bucket.depth

    def test_strict_scheduler_update(self):
        pe = self.make_pe("a")
        scheduler = StrictProportionalScheduler([pe], {"a": 0.2})
        scheduler.update_targets({"a": 0.9})
        assert scheduler.targets["a"] == 0.9

    def test_missing_target_becomes_zero(self):
        pe = self.make_pe("a")
        scheduler = StrictProportionalScheduler([pe], {"a": 0.2})
        scheduler.update_targets({})
        assert scheduler.targets["a"] == 0.0


class TestReoptimizeLoop:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(reoptimize_interval=0.0)

    def test_disabled_by_default(self):
        system = SimulatedSystem(
            small_topology(), UdpPolicy(),
            config=SystemConfig(seed=1, warmup=0.0),
        )
        system.env.run(until=3.0)
        assert system.reoptimizations == 0

    def test_refresh_count_and_target_change(self):
        system = SimulatedSystem(
            small_topology(), AcesPolicy(),
            config=SystemConfig(
                seed=1, warmup=0.0, reoptimize_interval=1.0
            ),
        )
        original = dict(system.targets.cpu)
        system.env.run(until=3.5)
        assert system.reoptimizations == 3
        # Targets were re-derived from measured (noisy) rates.
        assert system.targets.cpu != original

    def test_buckets_follow_refreshed_targets(self):
        system = SimulatedSystem(
            small_topology(), AcesPolicy(),
            config=SystemConfig(
                seed=1, warmup=0.0, reoptimize_interval=1.0
            ),
        )
        system.env.run(until=2.5)
        scheduler = system.schedulers[0]
        for pe in scheduler.pes:
            expected = system.targets.cpu.get(pe.pe_id, 0.0)
            assert scheduler.buckets[pe.pe_id].rate == pytest.approx(expected)

    def test_adapts_to_surged_workload(self):
        """After a sustained source surge, the refreshed ingress target of
        the surged stream should not shrink while the surge persists."""
        topology = small_topology(load_factor=0.6)
        surged = sorted(topology.source_rates)[0]

        system = SimulatedSystem(
            topology, AcesPolicy(),
            config=SystemConfig(
                seed=1, warmup=0.0, reoptimize_interval=2.0
            ),
        )
        FaultPlan().source_surge(
            surged, factor=4.0, start=0.0, duration=8.0
        ).attach(system)
        system.env.run(until=7.9)
        assert system.reoptimizations >= 3
        # The surged ingress PE's refreshed input-rate target reflects the
        # 4x measured rate (up to what the node can sustain).
        refreshed = system.targets.rate_in[surged]
        original_rate = topology.source_rates[surged]
        assert refreshed > 1.2 * original_rate
