"""Tests for the PE runtime entity and its quantized execution model."""

import numpy as np
import pytest

from repro.model.params import PEProfile
from repro.model.pe import PERuntime
from repro.model.sdo import SDO


def make_pe(buffer_capacity=10, seed=0, **profile_kwargs):
    defaults = dict(pe_id="pe-0", t0=0.002, t1=0.002, lambda_s=0.0)
    defaults.update(profile_kwargs)
    return PERuntime(
        PEProfile(**defaults),
        buffer_capacity=buffer_capacity,
        rng=np.random.default_rng(seed),
    )


def sdo(i=0):
    return SDO(stream_id="s", origin_time=float(i))


def collect_emissions():
    emitted = []

    def emit(pe, out, completion):
        emitted.append((out, completion))

    return emitted, emit


class TestExecution:
    def test_processes_exactly_budget_worth(self):
        pe = make_pe()
        for i in range(10):
            pe.ingest(sdo(i), 0.0)
        emitted, emit = collect_emissions()
        # budget = 0.5 * 0.01 = 5 ms; each SDO costs 2 ms -> 2 complete.
        used = pe.execute(now=0.0, dt=0.01, cpu=0.5, emit=emit)
        assert len(emitted) == 2
        assert used == pytest.approx(0.005)
        assert pe.counters.consumed == 2

    def test_partial_work_carries_over(self):
        pe = make_pe()
        for i in range(10):
            pe.ingest(sdo(i), 0.0)
        emitted, emit = collect_emissions()
        pe.execute(now=0.0, dt=0.01, cpu=0.5, emit=emit)  # 2.5 SDOs of work
        assert len(emitted) == 2
        pe.execute(now=0.01, dt=0.01, cpu=0.5, emit=emit)
        # The half-done third SDO finishes plus two more.
        assert len(emitted) == 5

    def test_zero_cpu_does_nothing(self):
        pe = make_pe()
        pe.ingest(sdo(), 0.0)
        emitted, emit = collect_emissions()
        assert pe.execute(0.0, 0.01, 0.0, emit) == 0.0
        assert emitted == []

    def test_empty_buffer_counts_starved(self):
        pe = make_pe()
        emitted, emit = collect_emissions()
        used = pe.execute(0.0, 0.01, 0.5, emit)
        assert used == 0.0
        assert pe.counters.starved_intervals == 1

    def test_completion_times_interpolated(self):
        pe = make_pe()
        for i in range(5):
            pe.ingest(sdo(i), 0.0)
        emitted, emit = collect_emissions()
        pe.execute(now=1.0, dt=0.01, cpu=0.5, emit=emit)
        # At cpu=0.5, a 2 ms SDO takes 4 ms of wall time.
        completions = [t for _, t in emitted]
        assert completions == pytest.approx([1.004, 1.008])

    def test_gate_blocks_processing(self):
        pe = make_pe()
        for i in range(5):
            pe.ingest(sdo(i), 0.0)
        emitted, emit = collect_emissions()
        used = pe.execute(0.0, 0.01, 0.5, emit, gate=lambda p: False)
        assert used == 0.0
        assert emitted == []
        assert pe.counters.blocked_intervals == 1
        assert pe.blocked_last_interval

    def test_gate_checked_per_sdo(self):
        pe = make_pe()
        for i in range(5):
            pe.ingest(sdo(i), 0.0)
        emitted, emit = collect_emissions()
        allowed = {"count": 1}

        def gate(p):
            allowed["count"] -= 1
            return allowed["count"] >= 0

        pe.execute(0.0, 0.01, 1.0, emit, gate=gate)
        assert len(emitted) == 1  # one allowed, then blocked

    def test_emits_lambda_m_outputs(self):
        pe = make_pe(lambda_m=3.0)
        pe.ingest(sdo(), 0.0)
        emitted, emit = collect_emissions()
        pe.execute(0.0, 0.01, 1.0, emit)
        assert len(emitted) == 3
        assert pe.counters.emitted == 3

    def test_emitted_sdos_inherit_origin(self):
        pe = make_pe()
        pe.ingest(SDO(stream_id="s", origin_time=42.0), 50.0)
        emitted, emit = collect_emissions()
        pe.execute(50.0, 0.01, 1.0, emit)
        assert emitted[0][0].origin_time == 42.0
        assert emitted[0][0].hops == 1

    def test_cpu_granted_accumulates(self):
        pe = make_pe()
        pe.execute(0.0, 0.01, 0.7, lambda *a: None)
        assert pe.counters.cpu_granted == pytest.approx(0.007)


class TestBacklogAndRates:
    def test_backlog_counts_buffer_and_partial(self):
        pe = make_pe()
        for i in range(4):
            pe.ingest(sdo(i), 0.0)
        assert pe.backlog_work == pytest.approx(4 * 0.002)
        # Work 1 ms into the first SDO (cpu=0.1 * 10 ms).
        pe.execute(0.0, 0.01, 0.1, lambda *a: None)
        assert pe.backlog_work == pytest.approx(3 * 0.002 + 0.001)

    def test_processing_rate_uses_current_state(self):
        pe = make_pe(t0=0.002, t1=0.020, lambda_s=0.0, rho=0.0)
        assert pe.processing_rate(0.5) == pytest.approx(250.0)
        slow = make_pe(t0=0.002, t1=0.020, lambda_s=0.0, rho=1.0)
        assert slow.processing_rate(0.5) == pytest.approx(25.0)

    def test_cpu_for_output_rate_now(self):
        pe = make_pe(t0=0.002, t1=0.020, lambda_s=0.0, rho=0.0, lambda_m=2.0)
        # 100 SDO/s out = 50 SDO/s in at 2 ms each = 0.1 CPU.
        assert pe.cpu_for_output_rate_now(100.0) == pytest.approx(0.1)
        assert pe.cpu_for_output_rate_now(0.0) == 0.0


class TestWiring:
    def test_link_downstream_symmetrical(self):
        a = make_pe()
        b = PERuntime(
            PEProfile(pe_id="pe-1"), 10, np.random.default_rng(1)
        )
        a.link_downstream(b)
        assert b in a.downstream
        assert a in b.upstream

    def test_self_link_rejected(self):
        pe = make_pe()
        with pytest.raises(ValueError):
            pe.link_downstream(pe)

    def test_ingest_respects_capacity(self):
        pe = make_pe(buffer_capacity=1)
        assert pe.ingest(sdo(), 0.0)
        assert not pe.ingest(sdo(), 0.0)


class TestSampleM:
    def test_deterministic_m(self):
        pe = make_pe(lambda_m=2.0, deterministic_m=True)
        assert all(pe.sample_m() == 2 for _ in range(10))

    def test_poisson_m_mean(self):
        pe = make_pe(lambda_m=3.0, deterministic_m=False, seed=5)
        samples = [pe.sample_m() for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(3.0, rel=0.05)
