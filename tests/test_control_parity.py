"""Substrate parity: one NodeController, two adapters, identical decisions.

The tentpole guarantee of the control-plane extraction: feeding the same
scripted occupancy/feedback trace through the simulator's control plane
and the threaded runtime's control plane yields bit-identical r_max
sequences, CPU-grant sequences, and gate decisions.  The substrates
differ only in how grants are *acted on*, never in what is decided.
"""

import numpy as np
import pytest

from repro.core.global_opt import solve_global_allocation
from repro.core.policies import AcesPolicy, LockStepPolicy, UdpPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.model.sdo import SDO
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.simulated import SimulatedSystem, SystemConfig

DT = 0.02
BUFFER = 20
STEPS = 40


def parity_topology(seed=3):
    spec = TopologySpec(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=5,
        calibrate_rates=False,
    )
    return generate_topology(spec, np.random.default_rng(seed))


def build_pair(policy_factory, topology):
    """The same policy/topology/targets on both substrates.

    Neither system is *run*: the tests drive the node controllers by
    hand so both planes see one identical scripted input trace.
    """
    targets = solve_global_allocation(
        topology.graph, topology.placement, topology.source_rates
    ).targets
    system = SimulatedSystem(
        topology,
        policy_factory(),
        targets=targets,
        config=SystemConfig(
            buffer_size=BUFFER, dt=DT, feedback_delay=0.0, seed=5
        ),
    )
    runtime = SPCRuntime(
        topology,
        policy_factory(),
        targets=targets,
        config=RuntimeConfig(buffer_size=BUFFER, dt=DT, seed=5),
    )
    return system, runtime


def offered_load(pe_index, step):
    """Deterministic scripted arrivals: varies per PE and per step."""
    return (pe_index * 3 + step * 7) % 5


def script_occupancies(pes_by_id, step, now):
    """Push the scripted SDO count into every PE's input buffer/channel."""
    for pe_index, pe_id in enumerate(sorted(pes_by_id)):
        pe = pes_by_id[pe_id]
        for _ in range(offered_load(pe_index, step)):
            sdo = SDO(stream_id=f"script:{pe_id}", origin_time=now)
            if hasattr(pe, "channel"):  # threaded substrate
                pe.channel.offer(sdo)
            else:
                pe.ingest(sdo, now)


def drive(plane, pes_by_id):
    """Run the scripted trace through one control plane; return the
    decision sequence (grants, r_max, blocked sets) per tick."""
    decisions = []
    for step in range(STEPS):
        now = (step + 1) * DT
        script_occupancies(pes_by_id, step, now)
        for controller in plane.node_controllers:
            grants = controller.control(now)
            r_max = {
                record.pe_id: record.controller.last_r_max
                for record in controller.records
                if record.controller is not None
            }
            decisions.append(
                (
                    controller.node_id,
                    dict(grants),
                    r_max,
                    controller.last_blocked,
                )
            )
    return decisions


@pytest.mark.parametrize(
    "policy_factory", [AcesPolicy, UdpPolicy, LockStepPolicy]
)
def test_identical_decision_sequences(policy_factory):
    topology = parity_topology()
    system, runtime = build_pair(policy_factory, topology)

    sim_decisions = drive(system.plane, system.runtimes)
    run_decisions = drive(runtime.plane, runtime.pes)

    assert len(sim_decisions) == len(run_decisions) > 0
    # Bit-identical: same node order, same grant floats, same r_max
    # floats, same blocked sets — no tolerance.
    assert sim_decisions == run_decisions


def test_feedback_propagates_identically():
    """r_max published on one node is read back identically by upstreams."""
    topology = parity_topology(seed=11)
    system, runtime = build_pair(AcesPolicy, topology)

    sim_caps = []
    run_caps = []
    for plane, pes, out in (
        (system.plane, system.runtimes, sim_caps),
        (runtime.plane, runtime.pes, run_caps),
    ):
        for step in range(STEPS):
            now = (step + 1) * DT
            script_occupancies(pes, step, now)
            for controller in plane.node_controllers:
                controller.control(now)
                bus = plane.bus
                for record in controller.records:
                    out.append(
                        bus.max_downstream_rate(record.downstream_ids, now)
                    )
    assert sim_caps == run_caps


def test_gate_decisions_identical():
    """Lock-Step gates resolved by the plane agree across substrates."""
    topology = parity_topology(seed=4)
    system, runtime = build_pair(LockStepPolicy, topology)

    for step in range(6):
        now = (step + 1) * DT
        script_occupancies(system.runtimes, step, now)
        script_occupancies(runtime.pes, step, now)
        for pe_id in topology.graph.topological_order():
            sim_gate = system.plane.gates[pe_id]
            run_gate = runtime.plane.gates[pe_id]
            assert (sim_gate is None) == (run_gate is None)
            if sim_gate is not None:
                assert sim_gate(system.runtimes[pe_id]) == run_gate(
                    runtime.pes[pe_id]
                )


def test_node_controllers_are_shared_type():
    """Both substrates pump instances of the same controller class."""
    topology = parity_topology()
    system, runtime = build_pair(AcesPolicy, topology)
    sim_types = {type(c) for c in system.plane.node_controllers}
    run_types = {type(c) for c in runtime.plane.node_controllers}
    assert sim_types == run_types == {
        type(system.plane.node_controllers[0])
    }


# -- proactive (forecast-tier) decision parity --------------------------------


def parity_forecast_config():
    """Armed tight enough that the scripted ramp below actually fires."""
    from repro.control.forecast import ForecastConfig

    return ForecastConfig(
        kind="holtwinters",
        season_length=4,
        sample_interval=DT,
        horizon=2,
        headroom=1.2,
        dwell_ticks=2,
        cooldown=4 * DT,
    )


def build_forecast_pair(policy_factory, topology):
    """Both substrates with the forecasting tier armed (no elastic tier,
    so proactive triggers re-solve Tier-1 but cannot scale out)."""
    targets = solve_global_allocation(
        topology.graph, topology.placement, topology.source_rates
    ).targets
    system = SimulatedSystem(
        topology,
        policy_factory(),
        targets=targets,
        config=SystemConfig(
            buffer_size=BUFFER, dt=DT, feedback_delay=0.0, seed=5,
            warmup=0.0, forecast=parity_forecast_config(),
        ),
    )
    runtime = SPCRuntime(
        topology,
        policy_factory(),
        targets=targets,
        config=RuntimeConfig(
            buffer_size=BUFFER, dt=DT, seed=5,
            warmup=0.0, forecast=parity_forecast_config(),
        ),
    )
    return system, runtime


def scripted_rate(pe_index, step, baseline):
    """A deterministic ramp crossing the headroom mid-script."""
    return baseline * (0.5 + 0.08 * step + 0.02 * pe_index)


def drive_forecast(forecast, baseline):
    """Feed the scripted rate walk into one ForecastController; return
    the per-tick decision sequence plus the trigger records."""
    states = []
    for step in range(STEPS):
        now = (step + 1) * DT
        rates = {
            pe_id: scripted_rate(pe_index, step, baseline[pe_id])
            for pe_index, pe_id in enumerate(sorted(baseline))
        }
        forecast.observe(rates, now)
        states.append(
            (
                dict(forecast.last_forecast),
                forecast.last_ratio,
                len(forecast.triggers),
            )
        )
    triggers = [
        (record.t, record.ratio, record.predicted, record.reoptimized,
         record.scaled_out)
        for record in forecast.triggers
    ]
    return states, triggers


def test_proactive_decisions_identical_across_substrates():
    """The forecast tier, scripted identically on both substrates, emits
    bit-identical forecasts, ratios, and trigger records — including the
    Tier-1 re-solves its triggers cause."""
    topology = parity_topology(seed=7)
    system, runtime = build_pair_forecast_checked(topology)

    baseline = dict(topology.source_rates)
    sim_states, sim_triggers = drive_forecast(system.forecast, baseline)
    run_states, run_triggers = drive_forecast(runtime.forecast, baseline)

    assert sim_states == run_states
    assert sim_triggers == run_triggers
    assert len(sim_triggers) > 0  # the ramp actually fired
    # Triggers re-solved Tier-1 on both planes (no elastic tier armed,
    # so no scale-out), and both adopted identical targets.
    assert all(record[3] for record in sim_triggers)
    assert all(not record[4] for record in sim_triggers)
    assert system.plane.reoptimizations == runtime.plane.reoptimizations > 0
    assert system.plane.targets.cpu == runtime.plane.targets.cpu


def build_pair_forecast_checked(topology):
    system, runtime = build_forecast_pair(AcesPolicy, topology)
    assert system.forecast is not None and runtime.forecast is not None
    return system, runtime


def test_proactive_decisions_identical_scalar_vs_vector():
    """control_impl is a pure performance knob for the forecast tier too:
    scalar and vector planes see identical proactive decisions."""
    topology = parity_topology(seed=7)
    targets = solve_global_allocation(
        topology.graph, topology.placement, topology.source_rates
    ).targets
    outcomes = {}
    for impl in ("scalar", "vector"):
        system = SimulatedSystem(
            topology,
            AcesPolicy(),
            targets=targets,
            config=SystemConfig(
                buffer_size=BUFFER, dt=DT, feedback_delay=0.0, seed=5,
                warmup=0.0, control_impl=impl,
                forecast=parity_forecast_config(),
            ),
        )
        outcomes[impl] = drive_forecast(
            system.forecast, dict(topology.source_rates)
        )
    assert outcomes["scalar"] == outcomes["vector"]
    assert len(outcomes["scalar"][1]) > 0
