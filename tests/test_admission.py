"""Tests for the SLO-aware admission front end (``repro.control.admission``).

Covers the degradation ladder's hysteresis contract (enter/exit bands,
min-dwell in both directions, multi-step downgrades, one-step recovery,
zero oscillations under flapping pressure), operator priority resolution
(kill > manual > adaptive), the deterministic accumulator shedding
scheme, the 429-style reject/retry-after path, the trace-event surface,
and — via the scriptable :meth:`AdmissionController.observe` entry —
cross-substrate parity: identical pressure/offer scripts must produce
bit-identical decision sequences on the simulated and threaded planes.
"""

import numpy as np
import pytest

from repro.check import OracleRecorder, check_conservation
from repro.control.admission import (
    ADAPTIVE_LEVELS,
    AdmissionConfig,
    AdmissionController,
    AdmissionLevel,
    DegradationLadder,
)
from repro.core.policies import AcesPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.obs.recorder import MemoryRecorder
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.simulated import SimulatedSystem, SystemConfig


def small_topology(seed=0, **overrides):
    params = dict(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=4,
        calibrate_rates=False,
    )
    params.update(overrides)
    return generate_topology(
        TopologySpec(**params), np.random.default_rng(seed)
    )


def ladder_config(**overrides):
    params = dict(
        slo_p95=1.0,
        min_dwell=0.5,
        enter=(1.0, 1.3, 1.6),
        exit=(0.85, 1.1, 1.35),
    )
    params.update(overrides)
    return AdmissionConfig(**params)


class TestAdmissionConfig:
    def test_defaults_validate(self):
        config = AdmissionConfig()
        assert config.slo_p95 > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slo_p95": 0.0},
            {"slo_p95": -1.0},
            {"queue_slo_fraction": 0.0},
            {"queue_slo_fraction": 1.5},
            {"min_dwell": -0.1},
            {"tick_interval": 0.0},
            {"pressure_window": 0.0},
            {"retry_after": 0.0},
            {"shed_low_fraction": -0.1},
            {"shed_high_fraction": 1.5},
            # High-pressure tier must shed at least as hard as the low one.
            {"shed_low_fraction": 0.8, "shed_high_fraction": 0.5},
            # Bands must pair one enter/exit threshold per adaptive level.
            {"enter": (1.0, 1.3)},
            {"exit": (0.9,)},
            # Hysteresis: every enter strictly above its exit.
            {"enter": (1.0, 1.3, 1.6), "exit": (1.0, 1.1, 1.35)},
            # Thresholds strictly increasing with severity.
            {"enter": (1.3, 1.0, 1.6)},
            {"enter": (1.0, 1.3, 1.6), "exit": (1.1, 0.85, 1.35)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)

    def test_shed_fraction_ladder(self):
        config = AdmissionConfig(
            shed_low_fraction=0.25, shed_high_fraction=0.6
        )
        assert config.shed_fraction(AdmissionLevel.NORMAL) == 0.0
        assert config.shed_fraction(AdmissionLevel.SHED_LOW) == 0.25
        assert config.shed_fraction(AdmissionLevel.SHED_HIGH) == 0.6

    def test_threshold_lookup_tracks_adaptive_levels(self):
        config = ladder_config()
        for index, level in enumerate(ADAPTIVE_LEVELS):
            assert config.enter_threshold(level) == config.enter[index]
            assert config.exit_threshold(level) == config.exit[index]


class TestDegradationLadder:
    def test_starts_normal_and_free(self):
        ladder = DegradationLadder(ladder_config())
        assert ladder.level is AdmissionLevel.NORMAL
        assert ladder.dwell_remaining(0.0) == 0.0
        assert ladder.transitions == 0

    def test_low_pressure_no_move(self):
        ladder = DegradationLadder(ladder_config())
        assert ladder.step(0.5, 0.0) is None
        assert ladder.level is AdmissionLevel.NORMAL

    def test_enter_band_engages_shed_low(self):
        ladder = DegradationLadder(ladder_config())
        move = ladder.step(1.05, 0.0)
        assert move is not None
        assert move.prev is AdmissionLevel.NORMAL
        assert move.level is AdmissionLevel.SHED_LOW
        assert move.cause == "adaptive"
        assert move.since_last == float("inf")

    def test_multi_step_downgrade_in_one_observation(self):
        ladder = DegradationLadder(ladder_config())
        move = ladder.step(2.0, 0.0)
        assert move is not None
        assert move.level is AdmissionLevel.REJECT
        assert ladder.transitions == 1

    def test_hysteresis_band_holds_level(self):
        ladder = DegradationLadder(ladder_config())
        ladder.step(1.05, 0.0)
        # Between exit (0.85) and enter (1.0): no move either way, even
        # once the dwell has expired.
        assert ladder.step(0.95, 1.0) is None
        assert ladder.level is AdmissionLevel.SHED_LOW

    def test_recovery_is_single_step(self):
        ladder = DegradationLadder(ladder_config())
        ladder.step(2.0, 0.0)
        assert ladder.level is AdmissionLevel.REJECT
        move = ladder.step(0.1, 1.0)
        assert move is not None
        assert move.cause == "recovery"
        assert move.level is AdmissionLevel.SHED_HIGH
        # Still a full dwell away from the next recovery step.
        assert ladder.step(0.1, 1.2) is None
        move = ladder.step(0.1, 1.6)
        assert move is not None and move.level is AdmissionLevel.SHED_LOW

    def test_dwell_blocks_downgrade(self):
        ladder = DegradationLadder(ladder_config())
        ladder.step(1.05, 0.0)
        assert ladder.step(5.0, 0.2) is None
        assert ladder.level is AdmissionLevel.SHED_LOW
        move = ladder.step(5.0, 0.5)
        assert move is not None and move.level is AdmissionLevel.REJECT

    def test_dwell_blocks_recovery(self):
        ladder = DegradationLadder(ladder_config())
        ladder.step(1.05, 0.0)
        assert ladder.step(0.0, 0.3) is None
        move = ladder.step(0.0, 0.6)
        assert move is not None and move.cause == "recovery"

    def test_no_oscillations_under_flapping_pressure(self):
        # The dwell gate and the recovery bookkeeping together make
        # thrash (re-entering a level faster than min_dwell after
        # leaving it) structurally impossible; the counter must stay 0
        # even under worst-case square-wave pressure at dwell cadence.
        config = ladder_config()
        ladder = DegradationLadder(config)
        now = 0.0
        for step in range(40):
            pressure = 2.0 if step % 2 == 0 else 0.0
            ladder.step(pressure, now)
            now += config.min_dwell
        assert ladder.transitions > 10
        assert ladder.oscillations == 0

    def test_adaptive_moves_never_skip_recovery(self):
        # Random pressure walk: every recovery move descends exactly one
        # rung and every adaptive move ascends.
        rng = np.random.default_rng(7)
        ladder = DegradationLadder(ladder_config())
        now = 0.0
        for _ in range(300):
            move = ladder.step(float(rng.uniform(0.0, 2.5)), now)
            if move is not None:
                if move.cause == "recovery":
                    assert int(move.level) == int(move.prev) - 1
                else:
                    assert move.level > move.prev
            now += float(rng.uniform(0.0, 0.4))


class TestPriorityResolution:
    def make(self):
        recorder = MemoryRecorder()
        controller = AdmissionController(ladder_config(), recorder=recorder)
        return controller, recorder

    def test_kill_beats_manual_beats_adaptive(self):
        controller, _ = self.make()
        controller.set_manual_level(AdmissionLevel.SHED_HIGH)
        assert controller.effective_level is AdmissionLevel.SHED_HIGH
        controller.set_kill_switch(True)
        assert controller.effective_level is AdmissionLevel.KILL
        controller.set_kill_switch(False)
        assert controller.effective_level is AdmissionLevel.SHED_HIGH
        controller.set_manual_level(None)
        assert controller.effective_level is AdmissionLevel.NORMAL

    def test_override_causes_traced(self):
        controller, recorder = self.make()
        controller.set_kill_switch(True)
        controller.set_kill_switch(False)
        controller.set_manual_level(AdmissionLevel.SHED_LOW)
        controller.set_manual_level(None)
        causes = [e["cause"] for e in recorder.by_kind("admission_level")]
        assert causes == ["kill", "kill_release", "manual", "manual_release"]

    def test_adaptive_moves_shadowed_under_override(self):
        controller, recorder = self.make()
        controller.set_manual_level(AdmissionLevel.SHED_LOW)
        controller.observe(2.0, 0.0)  # ladder wants REJECT underneath
        assert controller.effective_level is AdmissionLevel.SHED_LOW
        assert controller.ladder.level is AdmissionLevel.REJECT
        events = recorder.by_kind("admission_level")
        shadowed = [e for e in events if e["shadowed"]]
        assert len(shadowed) == 1
        assert shadowed[0]["level"] == "REJECT"
        assert shadowed[0]["cause"] == "adaptive"

    def test_release_surfaces_adaptive_level(self):
        controller, recorder = self.make()
        controller.set_manual_level(AdmissionLevel.SHED_LOW)
        controller.observe(2.0, 0.0)
        controller.set_manual_level(None)
        assert controller.effective_level is AdmissionLevel.REJECT
        last = recorder.by_kind("admission_level")[-1]
        assert last["level"] == "REJECT"
        assert last["cause"] == "manual_release"


class TestDeterministicShedding:
    def test_exact_fraction_over_prefix(self):
        controller = AdmissionController(
            ladder_config(shed_low_fraction=0.25)
        )
        controller.set_manual_level(AdmissionLevel.SHED_LOW)
        verdicts = [
            controller.admit_ingress("src:a", float(i)) for i in range(100)
        ]
        assert verdicts.count("shed") == 25
        assert verdicts.count("admit") == 75
        stream = controller.streams["src:a"]
        assert stream.decisions == 100

    def test_shed_positions_are_deterministic(self):
        def run_once():
            controller = AdmissionController(ladder_config())
            controller.set_manual_level(AdmissionLevel.SHED_HIGH)
            return [
                controller.admit_ingress("src:a", float(i))
                for i in range(57)
            ]

        assert run_once() == run_once()

    def test_streams_accumulate_independently(self):
        controller = AdmissionController(
            ladder_config(shed_low_fraction=0.5)
        )
        controller.set_manual_level(AdmissionLevel.SHED_LOW)
        first = controller.admit_ingress("src:a", 0.0)
        second = controller.admit_ingress("src:b", 0.0)
        # Each stream's accumulator starts cold: neither first offer
        # sheds at fraction 0.5, both second offers do.
        assert (first, second) == ("admit", "admit")
        assert controller.admit_ingress("src:a", 0.1) == "shed"
        assert controller.admit_ingress("src:b", 0.1) == "shed"

    def test_normal_level_admits_everything(self):
        controller = AdmissionController(ladder_config())
        for i in range(20):
            assert controller.admit_ingress("src:a", float(i)) == "admit"
        assert controller.total_shed == 0
        assert controller.total_rejected == 0


class TestRejectAndBackoff:
    def test_reject_invokes_backoff_with_retry_after(self):
        recorder = MemoryRecorder()
        controller = AdmissionController(
            ladder_config(retry_after=0.75), recorder=recorder
        )
        deadlines = []
        controller.register_backoff("src:a", deadlines.append)
        controller.set_manual_level(AdmissionLevel.REJECT)
        assert controller.admit_ingress("src:a", 2.0) == "reject"
        assert deadlines == [2.75]
        event = recorder.by_kind("reject")[0]
        assert event["pe"] == "src:a"
        assert event["level"] == "REJECT"
        assert event["retry_after"] == 0.75

    def test_kill_switch_rejects(self):
        controller = AdmissionController(ladder_config())
        controller.set_kill_switch(True)
        assert controller.admit_ingress("src:a", 0.0) == "reject"
        assert controller.counters()["src:a"]["rejected"] == 1

    def test_unregistered_stream_reject_is_safe(self):
        controller = AdmissionController(ladder_config())
        controller.set_manual_level(AdmissionLevel.REJECT)
        assert controller.admit_ingress("src:zzz", 0.0) == "reject"


class TestTraceEvents:
    def test_level_events_carry_transition_fields(self):
        recorder = MemoryRecorder()
        controller = AdmissionController(ladder_config(), recorder=recorder)
        controller.observe(1.05, 0.0)
        controller.observe(2.0, 1.0)
        controller.observe(0.1, 2.0)
        events = recorder.by_kind("admission_level")
        assert [e["level"] for e in events] == [
            "SHED_LOW", "REJECT", "SHED_HIGH",
        ]
        assert [e["prev"] for e in events] == [
            "NORMAL", "SHED_LOW", "REJECT",
        ]
        assert [e["cause"] for e in events] == [
            "adaptive", "adaptive", "recovery",
        ]
        assert all(not e["shadowed"] for e in events)

    def test_shed_events_name_stream_and_level(self):
        recorder = MemoryRecorder()
        controller = AdmissionController(ladder_config(), recorder=recorder)
        controller.set_manual_level(AdmissionLevel.SHED_HIGH)
        for i in range(10):
            controller.admit_ingress("src:a", float(i))
        events = recorder.by_kind("shed")
        assert len(events) == controller.total_shed > 0
        assert all(e["pe"] == "src:a" for e in events)
        assert all(e["level"] == "SHED_HIGH" for e in events)


def aggressive_admission():
    """A config hot enough to exercise the full ladder on tiny runs."""
    return AdmissionConfig(
        slo_p95=0.2,
        queue_slo_fraction=0.3,
        pressure_window=0.25,
        min_dwell=0.2,
        retry_after=0.1,
    )


class TestEndToEndAdmission:
    def test_sim_run_with_admission_is_conserving(self):
        recorder = OracleRecorder(strict=False)
        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(
                warmup=0.0,
                seed=3,
                dt=0.02,
                buffer_size=8,
                admission=aggressive_admission(),
            ),
            recorder=recorder,
        )
        recorder.attach_plane(system.plane)
        report = system.run(3.0)
        assert recorder.finalize() == []
        assert check_conservation(system) == []
        assert system.admission is not None
        assert system.admission.ticks > 0
        # Front-end refusals surface in the report and fold into the
        # per-kind drop breakdown without double counting.
        assert report.source_rejections >= (
            system.admission.total_shed + system.admission.total_rejected
        )
        drops = report.drops_by_kind
        assert drops["buffer_overflow"] + drops["flushed"] + drops.get(
            "shed", 0
        ) == report.buffer_drops

    def test_report_counters_match_controller(self):
        system = SimulatedSystem(
            small_topology(),
            AcesPolicy(),
            config=SystemConfig(
                warmup=0.0,
                seed=3,
                dt=0.02,
                buffer_size=8,
                admission=aggressive_admission(),
            ),
        )
        report = system.run(3.0)
        admission = system.admission
        drops = report.drops_by_kind
        assert drops["admission_shed"] == admission.total_shed
        assert drops["admission_rejected"] == admission.total_rejected
        # Every per-stream decision is one generated offer accounted for.
        for pe_id, counts in admission.counters().items():
            assert counts["admitted"] >= 0
            total = counts["admitted"] + counts["shed"] + counts["rejected"]
            assert total == admission.streams[pe_id].decisions


class TestScriptedParity:
    """Identical pressure/offer scripts, two substrates, one decision log."""

    def build_pair(self):
        topology = small_topology(seed=3)
        config = aggressive_admission()
        system = SimulatedSystem(
            topology,
            AcesPolicy(),
            config=SystemConfig(
                buffer_size=12, dt=0.02, seed=5, admission=config
            ),
        )
        runtime = SPCRuntime(
            topology,
            AcesPolicy(),
            config=RuntimeConfig(buffer_size=12, dt=0.02, seed=5,
                                 admission=config),
        )
        return system, runtime

    @staticmethod
    def drive(controller):
        """One scripted pressure walk with interleaved ingress offers."""
        log = []
        now = 0.0
        streams = sorted(controller.streams)
        assert streams, "substrate bound no ingress streams"
        for step in range(60):
            pressure = [0.1, 0.9, 1.5, 2.2, 0.6][step % 5]
            controller.observe(pressure, now)
            log.append((round(now, 3), int(controller.effective_level)))
            for offer, pe_id in enumerate(streams):
                verdict = controller.admit_ingress(
                    pe_id, now + 0.001 * offer
                )
                log.append((pe_id, verdict))
            now += 0.11
        log.append(("transitions", controller.ladder.transitions))
        log.append(("oscillations", controller.ladder.oscillations))
        log.append(("counters", controller.counters()))
        return log

    def test_decision_sequences_are_identical(self):
        system, runtime = self.build_pair()
        assert system.admission is not None
        assert runtime.admission is not None
        # Both substrates bound the same ingress stream ids.
        assert sorted(system.admission.streams) == sorted(
            runtime.admission.streams
        )
        assert self.drive(system.admission) == self.drive(runtime.admission)

    def test_operator_overrides_are_parity_safe(self):
        system, runtime = self.build_pair()

        def drive(controller):
            log = []
            controller.observe(1.2, 0.0)
            controller.set_manual_level(AdmissionLevel.REJECT)
            log.append(controller.admit_ingress(
                sorted(controller.streams)[0], 0.1
            ))
            controller.set_kill_switch(True)
            controller.observe(0.0, 0.5)
            log.append(int(controller.effective_level))
            controller.set_kill_switch(False)
            controller.set_manual_level(None)
            log.append(int(controller.effective_level))
            return log

        assert drive(system.admission) == drive(runtime.admission)
