"""Tests for PE-to-node placement strategies."""

import numpy as np
import pytest

from repro.graph.dag import ProcessingGraph
from repro.graph.placement import (
    load_balanced_placement,
    placement_load,
    random_placement,
    round_robin_placement,
)
from repro.model.params import PEProfile


def chain_graph(n=6, heterogeneous=False):
    graph = ProcessingGraph()
    for i in range(n):
        scale = (i + 1) if heterogeneous else 1
        graph.add_pe(
            PEProfile(pe_id=f"pe-{i}", t0=0.002 * scale, t1=0.020 * scale)
        )
    for i in range(n - 1):
        graph.add_edge(f"pe-{i}", f"pe-{i+1}")
    return graph


class TestRoundRobin:
    def test_cycles_through_nodes(self):
        placement = round_robin_placement(chain_graph(6), 3)
        counts = [0, 0, 0]
        for node in placement.values():
            counts[node] += 1
        assert counts == [2, 2, 2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            round_robin_placement(chain_graph(), 0)
        with pytest.raises(ValueError):
            round_robin_placement(ProcessingGraph(), 2)


class TestRandomPlacement:
    def test_deterministic_given_rng(self):
        graph = chain_graph(10)
        a = random_placement(graph, 4, np.random.default_rng(1))
        b = random_placement(graph, 4, np.random.default_rng(1))
        assert a == b

    def test_all_nodes_in_range(self):
        placement = random_placement(
            chain_graph(20), 5, np.random.default_rng(2)
        )
        assert all(0 <= n < 5 for n in placement.values())


class TestLoadBalanced:
    def test_balances_heterogeneous_load(self):
        graph = chain_graph(8, heterogeneous=True)
        placement = load_balanced_placement(graph, 2)
        loads = placement_load(graph, placement, 2)
        assert max(loads) / min(loads) < 1.5

    def test_single_node_takes_all(self):
        graph = chain_graph(4)
        placement = load_balanced_placement(graph, 1)
        assert set(placement.values()) == {0}

    def test_deterministic(self):
        graph = chain_graph(9, heterogeneous=True)
        assert load_balanced_placement(graph, 3) == load_balanced_placement(
            graph, 3
        )

    def test_more_nodes_than_pes(self):
        graph = chain_graph(2)
        placement = load_balanced_placement(graph, 10)
        assert len(set(placement.values())) == 2


def test_placement_load_sums_service_times():
    graph = chain_graph(3)
    placement = {"pe-0": 0, "pe-1": 0, "pe-2": 1}
    loads = placement_load(graph, placement, 2)
    service = graph.profile("pe-0").mean_service_time
    assert loads[0] == pytest.approx(2 * service)
    assert loads[1] == pytest.approx(service)
