"""Tests for semantic operator profiles and fractional emission."""

import numpy as np
import pytest

from repro.core.targets import AllocationTargets
from repro.core.policies import AcesPolicy, UdpPolicy
from repro.graph.dag import ProcessingGraph
from repro.graph.topology import Topology, TopologySpec
from repro.model.operators import (
    aggregate_pe,
    fanout_pe,
    filter_pe,
    join_pe,
    map_pe,
)
from repro.model.params import PEProfile
from repro.model.pe import PERuntime
from repro.model.sdo import SDO
from repro.systems.simulated import SystemConfig, run_system


class TestConstructors:
    def test_filter_selectivity(self):
        profile = filter_pe("f", selectivity=0.25)
        assert profile.lambda_m == 0.25
        with pytest.raises(ValueError):
            filter_pe("f", selectivity=0.0)
        with pytest.raises(ValueError):
            filter_pe("f", selectivity=1.5)

    def test_map_identity(self):
        assert map_pe("m").lambda_m == 1.0

    def test_aggregate_window(self):
        assert aggregate_pe("a", window=10).lambda_m == pytest.approx(0.1)
        with pytest.raises(ValueError):
            aggregate_pe("a", window=0)

    def test_join(self):
        assert join_pe("j").lambda_m == 1.0

    def test_fanout(self):
        assert fanout_pe("x", copies=3).lambda_m == 3.0
        with pytest.raises(ValueError):
            fanout_pe("x", copies=0.5)

    def test_kwargs_passthrough(self):
        profile = filter_pe("f", selectivity=0.5, weight=2.0, t0=0.001)
        assert profile.weight == 2.0
        assert profile.t0 == 0.001


class TestFractionalEmission:
    def runtime(self, lambda_m, deterministic=True):
        return PERuntime(
            PEProfile(
                pe_id="p", lambda_m=lambda_m,
                deterministic_m=deterministic, lambda_s=0.0,
                t0=0.001, t1=0.001,
            ),
            buffer_capacity=1000,
            rng=np.random.default_rng(0),
        )

    def test_accumulator_exact_long_run_ratio(self):
        pe = self.runtime(lambda_m=0.3)
        total = sum(pe.sample_m() for _ in range(1000))
        assert total == pytest.approx(300, abs=1)

    def test_accumulator_fractional_above_one(self):
        pe = self.runtime(lambda_m=2.5)
        total = sum(pe.sample_m() for _ in range(1000))
        assert total == pytest.approx(2500, abs=1)

    def test_integer_lambda_m_every_time(self):
        pe = self.runtime(lambda_m=2.0)
        assert [pe.sample_m() for _ in range(5)] == [2, 2, 2, 2, 2]

    def test_execute_emits_fraction(self):
        pe = self.runtime(lambda_m=0.5)
        for i in range(100):
            pe.ingest(SDO(stream_id="s", origin_time=0.0), 0.0)
        emitted = []
        pe.execute(0.0, 1.0, 0.1, lambda p, s, t: emitted.append(s))
        assert pe.counters.consumed == 100
        assert len(emitted) == 50

    def test_poisson_mode_mean(self):
        pe = self.runtime(lambda_m=0.3, deterministic=False)
        total = sum(pe.sample_m() for _ in range(20000))
        assert total / 20000 == pytest.approx(0.3, rel=0.05)


class TestFilterPipelineEndToEnd:
    def test_aggregation_pipeline_rates(self):
        """source -> filter(0.5) -> aggregate(5) -> egress rates match."""
        graph = ProcessingGraph()
        graph.add_pe(map_pe("ingest", t0=0.001, t1=0.001, lambda_s=0.0))
        graph.add_pe(
            filter_pe("filter", selectivity=0.5, t0=0.001, t1=0.001,
                      lambda_s=0.0)
        )
        graph.add_pe(
            aggregate_pe("agg", window=5, weight=1.0, t0=0.001, t1=0.001,
                         lambda_s=0.0)
        )
        graph.add_edge("ingest", "filter")
        graph.add_edge("filter", "agg")
        topology = Topology(
            spec=TopologySpec(
                num_nodes=1, num_ingress=1, num_egress=1,
                num_intermediate=1,
            ),
            graph=graph,
            placement={"ingest": 0, "filter": 0, "agg": 0},
            source_rates={"ingest": 100.0},
        )
        targets = AllocationTargets(
            cpu={"ingest": 0.2, "filter": 0.2, "agg": 0.2}
        )
        report = run_system(
            topology, UdpPolicy(), duration=20.0, targets=targets,
            config=SystemConfig(
                seed=1, warmup=5.0, source_kind="constant",
            ),
        )
        # 100/s in -> 50/s after the filter -> 10/s after 5-window agg.
        egress_rate = report.egress_detail["agg"][1] / report.duration
        assert egress_rate == pytest.approx(10.0, rel=0.1)

    def test_tier1_models_selectivity(self):
        """The optimizer's fluid rates respect fractional lambda_m."""
        from repro.core.global_opt import solve_global_allocation

        graph = ProcessingGraph()
        graph.add_pe(
            filter_pe("f", selectivity=0.2, t0=0.001, t1=0.001,
                      lambda_s=0.0)
        )
        graph.add_pe(map_pe("sink", weight=1.0, t0=0.001, t1=0.001,
                            lambda_s=0.0))
        graph.add_edge("f", "sink")
        result = solve_global_allocation(
            graph, {"f": 0, "sink": 1}, {"f": 500.0}
        )
        assert result.targets.rate_out["f"] == pytest.approx(
            0.2 * result.targets.rate_in["f"]
        )
        # The sink needs to process only the filtered stream.
        assert (
            result.targets.rate_in["sink"]
            <= result.targets.rate_out["f"] + 1e-6
        )
