"""Tests for steady-state / stability diagnostics."""

import numpy as np
import pytest

from repro.core.policies import AcesPolicy
from repro.graph.topology import TopologySpec, generate_topology
from repro.systems.analysis import (
    OccupancyProbe,
    OccupancyTrace,
    convergence_profile,
    max_rate_imbalance,
    rate_balance,
)
from repro.systems.simulated import SimulatedSystem, SystemConfig


def build_system(seed=0):
    spec = TopologySpec(
        num_nodes=3,
        num_ingress=2,
        num_egress=2,
        num_intermediate=4,
        calibrate_rates=False,
    )
    topology = generate_topology(spec, np.random.default_rng(seed))
    return SimulatedSystem(
        topology, AcesPolicy(), config=SystemConfig(seed=1, warmup=0.0)
    )


class TestOccupancyTrace:
    def test_mean(self):
        trace = OccupancyTrace("p", times=[0, 1, 2], occupancies=[2, 4, 6])
        assert trace.mean() == pytest.approx(4.0)

    def test_mean_empty(self):
        assert OccupancyTrace("p", [], []).mean() == 0.0

    def test_oscillation_index_smooth(self):
        trace = OccupancyTrace("p", [0] * 5, occupancies=[10, 10, 10, 10, 10])
        assert trace.oscillation_index() == 0.0

    def test_oscillation_index_flapping(self):
        trace = OccupancyTrace("p", [0] * 6, occupancies=[0, 10, 0, 10, 0, 10])
        assert trace.oscillation_index() == pytest.approx(2.0)

    def test_oscillation_index_short_trace(self):
        assert OccupancyTrace("p", [0], [5]).oscillation_index() == 0.0


class TestConvergenceProfile:
    def test_windows_validation(self):
        trace = OccupancyTrace("p", [0], [1])
        with pytest.raises(ValueError):
            convergence_profile(trace, 0.0, windows=0)

    def test_too_short_trace(self):
        trace = OccupancyTrace("p", [0, 1], [1, 2])
        assert convergence_profile(trace, 0.0, windows=4) == []

    def test_decaying_transient_detected(self):
        values = [20 - i for i in range(20)] + [0] * 20
        trace = OccupancyTrace("p", list(range(40)), values)
        profile = convergence_profile(trace, target=0.0, windows=4)
        assert profile[0] > profile[-1]


class TestLiveDiagnostics:
    def test_rate_balance_after_run(self):
        system = build_system()
        system.env.run(until=6.0)
        balances = rate_balance(system)
        assert len(balances) == len(system.runtimes)
        # In a stable run arrivals track completions closely.
        assert max_rate_imbalance(system) < 0.25

    def test_occupancy_probe_collects(self):
        system = build_system()
        probe = OccupancyProbe(system, period=0.1)
        system.env.run(until=3.0)
        for trace in probe.traces.values():
            assert len(trace.occupancies) == 29  # (3.0 / 0.1) - 1 + edge
        assert probe.mean_oscillation_index() >= 0.0

    def test_probe_period_validation(self):
        system = build_system()
        with pytest.raises(ValueError):
            OccupancyProbe(system, period=0.0)
