"""Tests for the process-parallel experiment runner.

The contract under test (see ``docs/performance.md``): a parallel cell is
bit-identical to a serial one, because each replication's topology and
Tier-1 targets are generated in the parent process with the serial seed
derivation and only the fully-determined simulations fan out to workers.
"""

import typing as _t
from dataclasses import fields

import pytest

import repro.experiments.runner as runner_module
from repro.core.policies import AcesPolicy, UdpPolicy
from repro.core.targets import AllocationTargets
from repro.experiments.config import smoke_experiment
from repro.experiments.parallel import (
    ParallelExecutionError,
    prepare_replication,
    run_cell_tasks,
)
from repro.experiments.runner import PolicySummary, run_cell
from repro.metrics.stats import SummaryStats
from repro.obs.recorder import MemoryRecorder
from repro.systems.faults import FaultPlan


def small_config(**overrides):
    params = dict(duration=1.0, replications=2)
    params.update(overrides)
    return smoke_experiment(**params).with_system(warmup=0.25)


def summary_numbers(summary: PolicySummary) -> _t.List[float]:
    """Flatten every SummaryStats field of a PolicySummary."""
    values: _t.List[float] = []
    for field in fields(summary):
        stats = getattr(summary, field.name)
        if isinstance(stats, SummaryStats):
            values.extend(
                [stats.mean, stats.std, stats.minimum, stats.maximum]
            )
    return values


class TestParity:
    def test_parallel_matches_serial_exactly(self):
        config = small_config()
        policies = [AcesPolicy(), UdpPolicy()]
        serial = run_cell(config, policies, jobs=1)
        parallel = run_cell(config, policies, jobs=4)

        assert set(serial.policies) == set(parallel.policies)
        for name in serial.policies:
            assert summary_numbers(serial.policies[name]) == (
                summary_numbers(parallel.policies[name])
            )
            serial_reports = serial.policies[name].reports
            parallel_reports = parallel.policies[name].reports
            assert len(serial_reports) == config.replications
            for left, right in zip(serial_reports, parallel_reports):
                assert left == right

    def test_fault_plan_parity_serial_vs_parallel(self):
        """The same parent-built fault plan yields bit-identical cells."""
        calls = []

        def chaos(topology, seed):
            calls.append(seed)
            plan = FaultPlan()
            plan.feedback_loss(0.5, start=0.3, duration=0.4)
            plan.node_slowdown(0, factor=0.5, start=0.3, duration=0.4)
            return plan

        config = small_config()
        serial = run_cell(
            config, [AcesPolicy()], fault_plan_factory=chaos, jobs=1
        )
        serial_calls, calls[:] = list(calls), []
        parallel = run_cell(
            config, [AcesPolicy()], fault_plan_factory=chaos, jobs=2
        )
        assert calls == serial_calls  # one parent-side call per replication
        assert summary_numbers(serial.policies["aces"]) == (
            summary_numbers(parallel.policies["aces"])
        )
        # The faults actually bit: a fault-free cell differs.
        clean = run_cell(config, [AcesPolicy()], jobs=1)
        assert summary_numbers(clean.policies["aces"]) != (
            summary_numbers(serial.policies["aces"])
        )

    def test_targets_transform_applied_in_parent(self):
        """Transforms (often closures — unpicklable) still parallelize."""
        calls = []

        def transform(targets, topology, seed):
            calls.append(seed)
            scaled = {pe: cpu * 0.9 for pe, cpu in targets.cpu.items()}
            return AllocationTargets(
                cpu=scaled,
                rate_in=targets.rate_in,
                rate_out=targets.rate_out,
            )

        config = small_config()
        serial = run_cell(
            config, [AcesPolicy()], targets_transform=transform, jobs=1
        )
        serial_calls, calls[:] = list(calls), []
        parallel = run_cell(
            config, [AcesPolicy()], targets_transform=transform, jobs=2
        )
        assert calls == serial_calls  # one parent-side call per replication
        assert summary_numbers(serial.policies["aces"]) == (
            summary_numbers(parallel.policies["aces"])
        )


class TestFallback:
    def test_recorder_factory_forces_serial(self):
        """Recorders hold process-local state, so tracing runs serially."""
        recorders = []

        def factory(policy_name, replication):
            recorder = MemoryRecorder()
            recorders.append(recorder)
            return recorder

        config = small_config(replications=1)
        result = run_cell(
            config, [AcesPolicy()], recorder_factory=factory, jobs=4
        )
        assert "aces" in result.policies
        # The factory ran in this process and its recorders saw events.
        assert recorders and any(r.events for r in recorders)

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def broken(*args, **kwargs):
            raise ParallelExecutionError("simulated pool failure")

        monkeypatch.setattr(
            "repro.experiments.parallel.run_cell_tasks", broken
        )
        config = small_config(replications=1)
        reference = run_cell(config, [AcesPolicy()], jobs=1)
        fallen_back = run_cell(config, [AcesPolicy()], jobs=4)
        assert summary_numbers(reference.policies["aces"]) == (
            summary_numbers(fallen_back.policies["aces"])
        )

    def test_default_jobs_module_knob(self, monkeypatch):
        """benchmarks/conftest.py sets DEFAULT_JOBS from REPRO_JOBS."""
        config = small_config(replications=1)
        reference = run_cell(config, [AcesPolicy()])
        monkeypatch.setattr(runner_module, "DEFAULT_JOBS", 2)
        parallel = run_cell(config, [AcesPolicy()])
        assert summary_numbers(reference.policies["aces"]) == (
            summary_numbers(parallel.policies["aces"])
        )

    def test_jobs_validation(self):
        config = small_config(replications=1)
        with pytest.raises(ValueError, match="jobs"):
            run_cell(config, [AcesPolicy()], jobs=0)
        with pytest.raises(ValueError, match="jobs >= 2"):
            run_cell_tasks(config, [AcesPolicy()], jobs=1)


class TestPreparation:
    def test_prepare_matches_serial_seed_derivation(self):
        """The parent-side preparation mirrors run_replication exactly."""
        config = small_config()
        for replication in range(config.replications):
            topology, targets, system_config, optimum = prepare_replication(
                config, replication
            )
            seed = config.base_seed + replication
            assert system_config.seed == seed * 1000 + 17
            assert optimum > 0
            assert set(targets.cpu) == set(topology.graph.pe_ids)
