"""Tests for Store, Container, and Resource primitives."""

import pytest

from repro.sim import Container, Environment, Resource, Store


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        results = []

        def producer(env):
            yield store.put("item")

        def consumer(env):
            item = yield store.get()
            results.append((env.now, item))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert results == [(0.0, "item")]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        results = []

        def consumer(env):
            item = yield store.get()
            results.append((env.now, item))

        def producer(env):
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert results == [(5.0, "late")]

    def test_put_blocks_when_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a-in", env.now))
            yield store.put("b")
            log.append(("b-in", env.now))

        def consumer(env):
            yield env.timeout(4.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("a-in", 0.0), ("b-in", 4.0)]

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in range(5):
                yield store.put(item)

        def consumer(env):
            for _ in range(5):
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_try_put_respects_capacity(self):
        env = Environment()
        store = Store(env, capacity=2)
        assert store.try_put("a")
        assert store.try_put("b")
        assert not store.try_put("c")
        assert store.level == 2

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        ok, item = store.try_get()
        assert not ok
        store.try_put("x")
        ok, item = store.try_get()
        assert ok and item == "x"

    def test_level_and_free(self):
        env = Environment()
        store = Store(env, capacity=10)
        for i in range(3):
            store.try_put(i)
        assert store.level == 3
        assert store.free == 7

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_filtered_get(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in [1, 2, 3, 4]:
                yield store.put(item)

        def consumer(env):
            item = yield store.get(filter_fn=lambda x: x % 2 == 0)
            received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == [2]
        assert list(store.items) == [1, 3, 4]

    def test_cancelled_get_is_skipped(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env, tag):
            item = yield store.get()
            received.append((tag, item))

        first = store.get()
        first.cancel()
        env.process(consumer(env, "second"))

        def producer(env):
            yield env.timeout(1.0)
            yield store.put("only")

        env.process(producer(env))
        env.run()
        assert received == [("second", "only")]

    def test_waiting_getter_served_by_try_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        received = []

        def consumer(env):
            item = yield store.get()
            received.append(item)

        env.process(consumer(env))

        def producer(env):
            yield env.timeout(1.0)
            assert store.try_put("x")

        env.process(producer(env))
        env.run()
        assert received == ["x"]


class TestContainer:
    def test_initial_level(self):
        env = Environment()
        container = Container(env, capacity=10, init=4)
        assert container.level == 4

    def test_invalid_init(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=6)
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=-1)

    def test_get_blocks_until_enough(self):
        env = Environment()
        container = Container(env, capacity=10, init=0)
        log = []

        def consumer(env):
            yield container.get(5)
            log.append(env.now)

        def producer(env):
            yield env.timeout(1.0)
            yield container.put(3)
            yield env.timeout(1.0)
            yield container.put(3)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert log == [2.0]
        assert container.level == pytest.approx(1.0)

    def test_put_blocks_at_capacity(self):
        env = Environment()
        container = Container(env, capacity=5, init=4)
        log = []

        def producer(env):
            yield container.put(3)
            log.append(env.now)

        def consumer(env):
            yield env.timeout(2.0)
            yield container.get(4)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [2.0]

    def test_try_get(self):
        env = Environment()
        container = Container(env, capacity=10, init=2)
        assert container.try_get(2)
        assert not container.try_get(0.5)
        assert container.level == 0

    def test_fill_saturates_and_reports_overflow(self):
        env = Environment()
        container = Container(env, capacity=10, init=8)
        overflow = container.fill(5)
        assert container.level == 10
        assert overflow == pytest.approx(3.0)

    def test_fill_no_overflow(self):
        env = Environment()
        container = Container(env, capacity=10, init=1)
        assert container.fill(2) == 0.0
        assert container.level == 3

    def test_negative_amounts_rejected(self):
        env = Environment()
        container = Container(env, capacity=10)
        with pytest.raises(ValueError):
            container.get(-1)
        with pytest.raises(ValueError):
            container.put(-1)


class TestResource:
    def test_capacity_enforced(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        acquisitions = []

        def user(env, tag, hold):
            request = resource.request()
            yield request
            acquisitions.append((tag, env.now))
            yield env.timeout(hold)
            resource.release(request)

        env.process(user(env, "a", 5.0))
        env.process(user(env, "b", 5.0))
        env.process(user(env, "c", 1.0))
        env.run()
        assert acquisitions == [("a", 0.0), ("b", 0.0), ("c", 5.0)]

    def test_context_manager_releases(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def user(env, tag):
            with resource.request() as request:
                yield request
                log.append((tag, env.now))
                yield env.timeout(2.0)

        env.process(user(env, "first"))
        env.process(user(env, "second"))
        env.run()
        assert log == [("first", 0.0), ("second", 2.0)]

    def test_count_tracks_users(self):
        env = Environment()
        resource = Resource(env, capacity=3)
        counts = []

        def user(env, start):
            yield env.timeout(start)
            request = resource.request()
            yield request
            counts.append(resource.count)
            yield env.timeout(10.0)
            resource.release(request)

        for start in (0.0, 1.0, 2.0):
            env.process(user(env, start))
        env.run()
        assert counts == [1, 2, 3]
        assert resource.count == 0

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
