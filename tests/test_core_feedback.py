"""Tests for the r_max feedback bus (Eq. 8 aggregation)."""

import pytest

from repro.core.feedback import FeedbackBus


class TestPublication:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FeedbackBus(delay=-1.0)

    def test_negative_rate_rejected(self):
        bus = FeedbackBus()
        with pytest.raises(ValueError):
            bus.publish("pe-1", -5.0, 0.0)

    def test_immediate_visibility_without_delay(self):
        bus = FeedbackBus(delay=0.0)
        bus.publish("pe-1", 42.0, now=0.0)
        assert bus.latest("pe-1", now=0.0) == 42.0

    def test_unknown_pe_is_none(self):
        assert FeedbackBus().latest("ghost", 0.0) is None

    def test_delay_hides_fresh_values(self):
        bus = FeedbackBus(delay=0.5)
        bus.publish("pe-1", 10.0, now=0.0)
        assert bus.latest("pe-1", now=0.2) is None
        assert bus.latest("pe-1", now=0.5) == 10.0

    def test_latest_visible_wins(self):
        bus = FeedbackBus(delay=0.1)
        bus.publish("pe-1", 10.0, now=0.0)
        bus.publish("pe-1", 20.0, now=0.05)
        assert bus.latest("pe-1", now=0.12) == 10.0
        assert bus.latest("pe-1", now=0.16) == 20.0

    def test_pending_values_drain(self):
        bus = FeedbackBus(delay=0.1)
        for i in range(5):
            bus.publish("pe-1", float(i), now=i * 0.01)
        assert bus.latest("pe-1", now=1.0) == 4.0

    def test_publish_counter(self):
        bus = FeedbackBus()
        bus.publish("a", 1.0, 0.0)
        bus.publish("b", 2.0, 0.0)
        assert bus.publishes == 2


class TestAggregation:
    def test_max_downstream_rate(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        bus.publish("c2", 30.0, 0.0)
        bus.publish("c3", 20.0, 0.0)
        assert bus.max_downstream_rate(["c1", "c2", "c3"], 0.0) == 30.0

    def test_min_downstream_rate(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        bus.publish("c2", 30.0, 0.0)
        assert bus.min_downstream_rate(["c1", "c2"], 0.0) == 10.0

    def test_egress_unconstrained(self):
        bus = FeedbackBus()
        assert bus.max_downstream_rate([], 0.0) == float("inf")
        assert bus.min_downstream_rate([], 0.0) == float("inf")

    def test_unheard_consumer_is_optimistic(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        assert bus.max_downstream_rate(["c1", "silent"], 0.0) == float("inf")

    def test_min_with_unheard_consumer(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        assert bus.min_downstream_rate(["c1", "silent"], 0.0) == 10.0

    def test_max_flow_vs_min_flow_difference(self):
        """The Figure-2 point: max-flow follows the fastest consumer."""
        bus = FeedbackBus()
        for pe_id, rate in (("c1", 10.0), ("c2", 20.0), ("c3", 30.0)):
            bus.publish(pe_id, rate, 0.0)
        consumers = ["c1", "c2", "c3"]
        assert bus.max_downstream_rate(consumers, 0.0) == 30.0
        assert bus.min_downstream_rate(consumers, 0.0) == 10.0


class TestDelayEdgeCases:
    def test_visible_exactly_at_boundary(self):
        """A value published with delay d is visible at now + d inclusive."""
        bus = FeedbackBus(delay=0.5)
        bus.publish("c", 10.0, 1.0)  # visible_at == 1.5
        assert bus.latest("c", 1.4999) is None
        assert bus.latest("c", 1.5) == 10.0

    def test_multiple_ripe_entries_collapse_to_newest(self):
        bus = FeedbackBus(delay=0.1)
        bus.publish("c", 10.0, 0.0)
        bus.publish("c", 20.0, 0.05)
        bus.publish("c", 30.0, 0.10)
        # All three ripe at 0.25; the newest wins and the queue drains.
        assert bus.latest("c", 0.25) == 30.0
        assert bus._pending["c"] == []

    def test_jittered_publication_keeps_order(self):
        """A later publication with big extra delay must not bury an
        earlier-visible one (insort keeps the ripe-prefix scan valid)."""
        bus = FeedbackBus(delay=0.1)
        bus.publish("c", 10.0, 0.0, extra_delay=1.0)  # visible at 1.1
        bus.publish("c", 20.0, 0.01)  # visible at 0.11 — overtakes
        assert bus.latest("c", 0.5) == 20.0
        assert bus.latest("c", 1.2) == 10.0

    def test_min_downstream_with_partially_published_consumers(self):
        """Consumers whose values are still in flight count as unheard."""
        bus = FeedbackBus(delay=0.2)
        bus.publish("c1", 10.0, 0.0)  # visible at 0.2
        bus.publish("c2", 5.0, 0.15)  # visible at 0.35
        # c2 still in flight: min skips it, max is unconstrained.
        assert bus.min_downstream_rate(["c1", "c2"], 0.25) == 10.0
        assert bus.max_downstream_rate(["c1", "c2"], 0.25) == float("inf")
        assert bus.min_downstream_rate(["c1", "c2"], 0.35) == 5.0
        assert bus.max_downstream_rate(["c1", "c2"], 0.35) == 10.0


class TestStalenessTTL:
    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackBus(staleness_ttl=0.0)
        with pytest.raises(ValueError):
            FeedbackBus(stale_bound=-1.0)

    def test_fresh_value_trusted_within_ttl(self):
        bus = FeedbackBus(staleness_ttl=1.0, stale_bound=0.0)
        bus.publish("c", 10.0, 0.0)
        assert bus.latest("c", 1.0) == 10.0  # age == ttl: still fresh

    def test_stale_value_decays_to_bound(self):
        bus = FeedbackBus(staleness_ttl=1.0, stale_bound=2.5)
        bus.publish("c", 10.0, 0.0)
        assert bus.latest("c", 1.5) == 2.5
        assert bus.stale_reads == 1

    def test_fresh_publication_ends_stale_episode(self):
        bus = FeedbackBus(staleness_ttl=1.0, stale_bound=0.0)
        bus.publish("c", 10.0, 0.0)
        assert bus.latest("c", 2.0) == 0.0
        bus.publish("c", 7.0, 2.0)
        assert bus.latest("c", 2.0) == 7.0

    def test_decay_applies_to_aggregates(self):
        bus = FeedbackBus(staleness_ttl=1.0, stale_bound=0.0)
        bus.publish("fast", 30.0, 0.0)
        bus.publish("slow", 10.0, 1.9)
        # At 2.5 'fast' is stale (decays to 0), 'slow' is fresh.
        assert bus.max_downstream_rate(["fast", "slow"], 2.5) == 10.0
        assert bus.min_downstream_rate(["fast", "slow"], 2.5) == 0.0

    def test_stale_event_fires_once_per_episode(self):
        from repro.obs.recorder import MemoryRecorder

        recorder = MemoryRecorder()
        bus = FeedbackBus(
            staleness_ttl=1.0, stale_bound=0.0, recorder=recorder
        )
        bus.publish("c", 10.0, 0.0)
        for now in (1.5, 1.6, 1.7):
            assert bus.latest("c", now) == 0.0
        assert recorder.counts.get("feedback_stale", 0) == 1
        assert bus.stale_reads == 3
        # A fresh publication arms a new episode.
        bus.publish("c", 8.0, 2.0)
        assert bus.latest("c", 3.5) == 0.0
        assert recorder.counts.get("feedback_stale", 0) == 2

    def test_delayed_publication_freshness_dates_from_visibility(self):
        """Staleness age counts from when the value became *visible*."""
        bus = FeedbackBus(delay=0.5, staleness_ttl=1.0, stale_bound=0.0)
        bus.publish("c", 10.0, 0.0)  # visible at 0.5
        assert bus.latest("c", 1.4) == 10.0  # age 0.9 < ttl
        assert bus.latest("c", 1.6) == 0.0  # age 1.1 > ttl
