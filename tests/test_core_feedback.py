"""Tests for the r_max feedback bus (Eq. 8 aggregation)."""

import pytest

from repro.core.feedback import FeedbackBus


class TestPublication:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FeedbackBus(delay=-1.0)

    def test_negative_rate_rejected(self):
        bus = FeedbackBus()
        with pytest.raises(ValueError):
            bus.publish("pe-1", -5.0, 0.0)

    def test_immediate_visibility_without_delay(self):
        bus = FeedbackBus(delay=0.0)
        bus.publish("pe-1", 42.0, now=0.0)
        assert bus.latest("pe-1", now=0.0) == 42.0

    def test_unknown_pe_is_none(self):
        assert FeedbackBus().latest("ghost", 0.0) is None

    def test_delay_hides_fresh_values(self):
        bus = FeedbackBus(delay=0.5)
        bus.publish("pe-1", 10.0, now=0.0)
        assert bus.latest("pe-1", now=0.2) is None
        assert bus.latest("pe-1", now=0.5) == 10.0

    def test_latest_visible_wins(self):
        bus = FeedbackBus(delay=0.1)
        bus.publish("pe-1", 10.0, now=0.0)
        bus.publish("pe-1", 20.0, now=0.05)
        assert bus.latest("pe-1", now=0.12) == 10.0
        assert bus.latest("pe-1", now=0.16) == 20.0

    def test_pending_values_drain(self):
        bus = FeedbackBus(delay=0.1)
        for i in range(5):
            bus.publish("pe-1", float(i), now=i * 0.01)
        assert bus.latest("pe-1", now=1.0) == 4.0

    def test_publish_counter(self):
        bus = FeedbackBus()
        bus.publish("a", 1.0, 0.0)
        bus.publish("b", 2.0, 0.0)
        assert bus.publishes == 2


class TestAggregation:
    def test_max_downstream_rate(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        bus.publish("c2", 30.0, 0.0)
        bus.publish("c3", 20.0, 0.0)
        assert bus.max_downstream_rate(["c1", "c2", "c3"], 0.0) == 30.0

    def test_min_downstream_rate(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        bus.publish("c2", 30.0, 0.0)
        assert bus.min_downstream_rate(["c1", "c2"], 0.0) == 10.0

    def test_egress_unconstrained(self):
        bus = FeedbackBus()
        assert bus.max_downstream_rate([], 0.0) == float("inf")
        assert bus.min_downstream_rate([], 0.0) == float("inf")

    def test_unheard_consumer_is_optimistic(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        assert bus.max_downstream_rate(["c1", "silent"], 0.0) == float("inf")

    def test_min_with_unheard_consumer(self):
        bus = FeedbackBus()
        bus.publish("c1", 10.0, 0.0)
        assert bus.min_downstream_rate(["c1", "silent"], 0.0) == 10.0

    def test_max_flow_vs_min_flow_difference(self):
        """The Figure-2 point: max-flow follows the fastest consumer."""
        bus = FeedbackBus()
        for pe_id, rate in (("c1", 10.0), ("c2", 20.0), ("c3", 30.0)):
            bus.publish(pe_id, rate, 0.0)
        consumers = ["c1", "c2", "c3"]
        assert bus.max_downstream_rate(consumers, 0.0) == 30.0
        assert bus.min_downstream_rate(consumers, 0.0) == 10.0
