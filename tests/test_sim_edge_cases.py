"""Additional edge-case coverage for the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, Store
from repro.sim.engine import NORMAL, URGENT


class TestEventOrderingPriorities:
    def test_urgent_jumps_queue_among_simultaneous(self):
        env = Environment()
        order = []

        normal = Event(env)
        normal._ok = True
        normal._value = None
        assert normal.callbacks is not None
        normal.callbacks.append(lambda e: order.append("normal"))
        env.schedule(normal, priority=NORMAL, delay=1.0)

        urgent = Event(env)
        urgent._ok = True
        urgent._value = None
        assert urgent.callbacks is not None
        urgent.callbacks.append(lambda e: order.append("urgent"))
        env.schedule(urgent, priority=URGENT, delay=1.0)

        env.run()
        assert order == ["urgent", "normal"]


class TestProcessFailurePropagation:
    def test_child_exception_reaches_waiting_parent(self):
        env = Environment()
        caught = []

        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child exploded")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                caught.append(str(exc))

        env.process(parent(env))
        env.run()
        assert caught == ["child exploded"]

    def test_unwaited_child_exception_surfaces(self):
        env = Environment()

        def child(env):
            yield env.timeout(1.0)
            raise RuntimeError("nobody caught me")

        env.process(child(env))
        with pytest.raises(RuntimeError, match="nobody caught me"):
            env.run()

    def test_condition_fails_when_child_fails(self):
        env = Environment()
        caught = []

        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("bad child")

        def waiter(env):
            proc = env.process(failing(env))
            slow = env.timeout(10.0)
            try:
                yield AllOf(env, [proc, slow])
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter(env))
        env.run()
        assert caught == ["bad child"]


class TestInterruptDuringStoreWait:
    def test_interrupted_getter_detaches(self):
        env = Environment()
        store = Store(env)
        outcomes = []

        def consumer(env):
            try:
                yield store.get()
                outcomes.append("got")
            except Interrupt:
                outcomes.append("interrupted")

        def attacker(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(consumer(env))
        env.process(attacker(env, victim))
        env.run()
        assert outcomes == ["interrupted"]

    def test_item_not_lost_after_interrupted_getter(self):
        """After a getter is interrupted, a later putter's item goes to
        the next getter, not into the void."""
        env = Environment()
        store = Store(env)
        received = []

        def doomed(env):
            try:
                yield store.get()
            except Interrupt:
                pass

        def survivor(env):
            yield env.timeout(2.0)
            item = yield store.get()
            received.append(item)

        def attacker(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        def producer(env):
            yield env.timeout(3.0)
            yield store.put("prize")

        victim = env.process(doomed(env))
        env.process(attacker(env, victim))
        env.process(survivor(env))
        env.process(producer(env))
        env.run()
        assert received == ["prize"]


class TestAnyOfWithProcess:
    def test_first_of_timeout_and_process(self):
        env = Environment()
        winners = []

        def slow(env):
            yield env.timeout(10.0)
            return "slow"

        def racer(env):
            proc = env.process(slow(env))
            fast = env.timeout(1.0, value="fast")
            values = yield AnyOf(env, [proc, fast])
            winners.extend(values.values())

        env.process(racer(env))
        env.run()
        assert winners == ["fast"]
