"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "aces"
        assert args.pes == 60
        assert args.nodes == 10
        assert args.buffer == 50

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig5"])
        assert args.name == "fig5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--pes", "12", "--nodes", "3"]) == 0
        out = capsys.readouterr().out
        assert "PEs: 12" in out
        assert "Nodes: 3" in out

    def test_solve(self, capsys):
        assert main(["solve", "--pes", "8", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "objective=" in out
        assert "Tier-1 allocation targets" in out

    def test_run(self, capsys):
        code = main(
            [
                "run", "--pes", "8", "--nodes", "2",
                "--duration", "2", "--warmup", "1", "--policy", "udp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "udp" in out
        assert "cpu=" in out

    def test_run_shedding_policy(self, capsys):
        code = main(
            [
                "run", "--pes", "8", "--nodes", "2",
                "--duration", "2", "--warmup", "1", "--policy", "shedding",
            ]
        )
        assert code == 0
        assert "shedding" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--pes", "8", "--nodes", "2",
                "--duration", "2", "--warmup", "1",
                "--policies", "aces,udp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aces" in out
        assert "udp" in out
        assert "weighted_throughput" in out
