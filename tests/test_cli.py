"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "aces"
        assert args.pes == 60
        assert args.nodes == 10
        assert args.buffer == 50

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig5"])
        assert args.name == "fig5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--pes", "12", "--nodes", "3"]) == 0
        out = capsys.readouterr().out
        assert "PEs: 12" in out
        assert "Nodes: 3" in out

    def test_solve(self, capsys):
        assert main(["solve", "--pes", "8", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "objective=" in out
        assert "Tier-1 allocation targets" in out

    def test_run(self, capsys):
        code = main(
            [
                "run", "--pes", "8", "--nodes", "2",
                "--duration", "2", "--warmup", "1", "--policy", "udp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "udp" in out
        assert "cpu=" in out

    def test_run_shedding_policy(self, capsys):
        code = main(
            [
                "run", "--pes", "8", "--nodes", "2",
                "--duration", "2", "--warmup", "1", "--policy", "shedding",
            ]
        )
        assert code == 0
        assert "shedding" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--pes", "8", "--nodes", "2",
                "--duration", "2", "--warmup", "1",
                "--policies", "aces,udp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aces" in out
        assert "udp" in out
        assert "weighted_throughput" in out


class TestTraceCheck:
    """The --check flag arms the invariant oracles on either substrate."""

    def _trace_args(self, tmp_path, substrate, *extra):
        return [
            "trace", "--pes", "8", "--nodes", "2",
            "--duration", "1", "--warmup", "0.5",
            "--substrate", substrate,
            "--trace", str(tmp_path / "out.jsonl"),
            "--check", *extra,
        ]

    @pytest.mark.parametrize("substrate", ["sim", "threaded"])
    def test_check_clean_run(self, tmp_path, substrate, capsys):
        assert main(self._trace_args(tmp_path, substrate)) == 0
        out = capsys.readouterr().out
        assert "oracles: all invariants held" in out

    def test_check_forwards_events_to_file(self, tmp_path, capsys):
        assert main(self._trace_args(tmp_path, "sim")) == 0
        assert (tmp_path / "out.jsonl").stat().st_size > 0


class TestFailureModes:
    """Bad arguments exit non-zero with a message, never a traceback."""

    def test_fuzz_rejects_nonpositive_seeds(self, capsys):
        assert main(["fuzz", "--seeds", "0"]) == 2
        assert "--seeds must be positive" in capsys.readouterr().err

    def test_fuzz_rejects_unknown_policy(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--policies", "teleport"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_rejects_bad_filter_expression(self, capsys):
        assert main(["trace", "--trace-filter", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_rejects_unknown_filter_kind(self, capsys):
        assert main(["trace", "--trace-filter", "kind=warp"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_chaos_rejects_unknown_scenario(self, capsys):
        code = main(
            ["chaos", "--smoke", "--scenarios", "meteor-strike"]
        )
        assert code == 2
        assert "unknown scenarios" in capsys.readouterr().err

    @pytest.mark.parametrize("substrate", ["sim", "threaded"])
    def test_trace_format_validation(self, substrate):
        # argparse enforces the --format choices before any run starts,
        # identically for both substrates.
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["trace", "--substrate", substrate, "--format", "xml"]
            )
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("substrate", ["sim", "threaded"])
    def test_trace_format_csv_accepted(self, substrate):
        args = build_parser().parse_args(
            ["trace", "--substrate", substrate, "--format", "csv"]
        )
        assert args.format == "csv"
        assert args.substrate == substrate

    def test_trace_rejects_unknown_substrate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--substrate", "quantum"])


class TestFuzzCommand:
    def test_fuzz_smoke(self, tmp_path, capsys):
        output = tmp_path / "fuzz.jsonl"
        code = main(
            [
                "fuzz", "--seeds", "1", "--policies", "udp",
                "--output", str(output), "--no-shrink",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        assert output.stat().st_size > 0
