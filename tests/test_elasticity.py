"""Tier-3 elasticity: scaling policy, versioned placement, membership,
and live PE migration on both substrates.

The scripted tests arm the elastic tier with thresholds that can never
fire (dwell far beyond the run length) so membership changes only when
the test drives them — armed runtimes use identity-keyed control loops
that follow epoch rebuilds, which scripted surgery requires.
"""

import numpy as np
import pytest

from repro.check import OracleRecorder, check_conservation
from repro.control.elastic import (
    ElasticityConfig,
    PlacementBook,
    ScalingPolicy,
    plan_scale_in_placement,
    plan_scale_out_placement,
)
from repro.core.policies import policy_by_name
from repro.graph.topology import TopologySpec, generate_topology
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.simulated import SimulatedSystem, SystemConfig


def small_topology(seed=0, num_nodes=2, load_factor=1.0):
    spec = TopologySpec(
        num_nodes=num_nodes,
        num_ingress=2,
        num_egress=1,
        num_intermediate=5,
        load_factor=load_factor,
    )
    return generate_topology(spec, np.random.default_rng(seed))


def quiet_elasticity(**overrides):
    """An armed config whose autoscaler can never fire — membership
    changes only through explicit scripted calls."""
    defaults = dict(
        scale_out_pressure=0.99,
        scale_in_pressure=0.0,
        min_nodes=1,
        max_nodes=16,
        check_interval=0.5,
        dwell_intervals=10_000,
        cooldown=0.0,
        max_migrations_per_epoch=4,
        placement_evaluations=4,
    )
    defaults.update(overrides)
    return ElasticityConfig(**defaults)


def armed_system(policy="udp", seed=0, elasticity=None, recorder=None,
                 **config_overrides):
    topology = small_topology(seed=seed)
    config = SystemConfig(
        dt=0.02,
        seed=seed + 1,
        warmup=0.5,
        elasticity=elasticity if elasticity is not None else quiet_elasticity(),
        **config_overrides,
    )
    system = SimulatedSystem(
        topology, policy_by_name(policy), config=config, recorder=recorder
    )
    if recorder is not None:
        recorder.attach_plane(system.plane)
    return system


class TestScalingPolicy:
    def config(self, **overrides):
        defaults = dict(
            scale_out_pressure=0.8,
            scale_in_pressure=0.2,
            min_nodes=1,
            max_nodes=4,
            check_interval=0.5,
            dwell_intervals=3,
            cooldown=2.0,
        )
        defaults.update(overrides)
        return ElasticityConfig(**defaults)

    def test_dwell_requires_consecutive_observations(self):
        policy = ScalingPolicy(self.config())
        assert policy.observe(0.9, 0.0, 2) == "hold"
        assert policy.observe(0.9, 0.5, 2) == "hold"
        assert policy.observe(0.9, 1.0, 2) == "scale_out"

    def test_in_band_reading_resets_the_streak(self):
        policy = ScalingPolicy(self.config())
        policy.observe(0.9, 0.0, 2)
        policy.observe(0.9, 0.5, 2)
        assert policy.observe(0.5, 1.0, 2) == "hold"  # streak broken
        assert policy.observe(0.9, 1.5, 2) == "hold"  # restart from 1
        assert policy.observe(0.9, 2.0, 2) == "hold"
        assert policy.observe(0.9, 2.5, 2) == "scale_out"

    def test_cooldown_suppresses_back_to_back_fires(self):
        policy = ScalingPolicy(self.config(dwell_intervals=1))
        assert policy.observe(0.9, 0.0, 2) == "scale_out"
        assert policy.observe(0.9, 0.5, 3) == "hold"  # cooling down
        assert policy.observe(0.9, 2.5, 3) == "scale_out"

    def test_node_bounds_are_never_crossed(self):
        policy = ScalingPolicy(self.config(dwell_intervals=1, cooldown=0.0))
        assert policy.observe(0.9, 0.0, 4) == "hold"  # at max_nodes
        assert policy.observe(0.1, 1.0, 1) == "hold"  # at min_nodes

    def test_scale_in_uses_the_slack_signal(self):
        # Hot-spot pressure sits mid-band (one busy node) while the
        # cluster-wide slack signal is idle: scale-in must fire on slack.
        policy = ScalingPolicy(self.config(dwell_intervals=2, cooldown=0.0))
        assert policy.observe(0.5, 0.0, 3, slack_pressure=0.1) == "hold"
        assert (
            policy.observe(0.5, 0.5, 3, slack_pressure=0.1) == "scale_in"
        )
        assert policy.decisions[-1].pressure == pytest.approx(0.1)

    def test_hot_spot_beats_slack_when_both_trip(self):
        policy = ScalingPolicy(self.config(dwell_intervals=1, cooldown=0.0))
        assert (
            policy.observe(0.9, 0.0, 2, slack_pressure=0.1) == "scale_out"
        )

    def test_decisions_are_recorded(self):
        policy = ScalingPolicy(self.config(dwell_intervals=1))
        policy.observe(0.9, 1.0, 2)
        (record,) = policy.decisions
        assert record.decision == "scale_out"
        assert record.t == 1.0
        assert record.num_nodes == 2


class TestPlacementBook:
    def test_epoch_zero_holds_the_initial_placement(self):
        book = PlacementBook({"pe-0": 0, "pe-1": 1}, 2)
        assert book.epoch == 0
        assert book.current.reason == "initial"
        assert book.placement == {"pe-0": 0, "pe-1": 1}

    def test_advance_bumps_epoch_and_diffs(self):
        book = PlacementBook({"pe-0": 0, "pe-1": 1}, 2)
        version = book.advance({"pe-0": 1, "pe-1": 1}, 2, "migration")
        assert book.epoch == 1
        assert version.migrations == (("pe-0", 0, 1),)
        assert book.placement["pe-0"] == 1

    def test_advance_preserves_key_order(self):
        book = PlacementBook({"pe-1": 0, "pe-0": 1}, 2)
        book.advance({"pe-0": 0, "pe-1": 1}, 2, "migration")
        assert list(book.placement) == ["pe-1", "pe-0"]


class TestPlacementPlans:
    def test_scale_out_targets_the_new_node(self):
        placement = {"pe-0": 0, "pe-1": 0, "pe-2": 1}
        load = {"pe-0": 3.0, "pe-1": 1.0, "pe-2": 2.0}
        result = plan_scale_out_placement(placement, 3, load, max_moves=1)
        # Hottest movable PE lands on the join; everyone else stays put.
        assert result == {"pe-0": 2, "pe-1": 0, "pe-2": 1}

    def test_scale_out_never_strands_a_singleton(self):
        placement = {"pe-0": 0, "pe-1": 1}
        load = {"pe-0": 3.0, "pe-1": 1.0}
        result = plan_scale_out_placement(placement, 3, load, max_moves=2)
        # Both PEs are alone on their nodes; moving either would drain
        # a node, so the plan must leave the placement untouched.
        assert result == placement

    def test_scale_in_returns_post_removal_indices(self):
        placement = {"pe-0": 0, "pe-1": 1, "pe-2": 2}
        load = {"pe-0": 1.0, "pe-1": 1.0, "pe-2": 1.0}
        plan = plan_scale_in_placement(placement, 3, victim=1, load=load)
        assert set(plan) == {"pe-0", "pe-1", "pe-2"}
        # Two nodes remain; every index must be post-removal valid.
        assert all(0 <= node < 2 for node in plan.values())


class TestSimulatedMigration:
    def test_migration_preserves_inflight_sdos(self):
        recorder = OracleRecorder(strict=True)
        system = armed_system(recorder=recorder)
        system.env.run(until=2.0)
        # Pick a resident PE with buffered work: its SDOs must ride the
        # handoff rather than being dropped or double-counted.
        mover = max(
            system.runtimes,
            key=lambda pe_id: system.runtimes[pe_id].buffer.occupancy,
        )
        occupancy = system.runtimes[mover].buffer.occupancy
        assert occupancy > 0
        source = system.placement_book.placement[mover]
        target = (source + 1) % len(system.nodes)
        version = system.migrate_pes([(mover, target)], reason="test")
        assert version is not None and version.epoch == 1
        record = system.migration_log[-1]
        assert record.handoff_occupancy == occupancy
        assert system.runtimes[mover].buffer.occupancy == occupancy
        system.env.run(until=4.0)
        assert check_conservation(system) == []
        assert record.downtime is not None and record.downtime >= 0.0

    def test_migration_during_pending_reoptimize(self):
        # Re-solve Tier 1, then immediately migrate one of the PEs the
        # fresh targets were computed for: the plane's adopted-targets
        # snapshot keys by the adoption-time placement, so the oracle
        # tolerates the transient mismatch and conservation still holds.
        recorder = OracleRecorder(strict=True)
        system = armed_system(recorder=recorder)
        system.env.run(until=2.0)
        result = system.plane.reoptimize(
            system.topology.graph,
            system.placement_book.placement,
            system.topology.source_rates,
            reason="test",
        )
        assert result is not None
        mover = max(result.targets.cpu, key=result.targets.cpu.get)
        source = system.placement_book.placement[mover]
        target = (source + 1) % len(system.nodes)
        assert system.migrate_pes([(mover, target)]) is not None
        system.env.run(until=4.0)
        assert check_conservation(system) == []

    def test_remove_node_hosting_ingress_refused_then_relocated(self):
        recorder = OracleRecorder(strict=True)
        system = armed_system(recorder=recorder)
        system.env.run(until=1.0)
        ingress = sorted(system.topology.source_rates)[0]
        victim = system.placement_book.placement[ingress]
        # Refusal: the node still hosts the source's ingress PE (among
        # others) — removal would orphan its channel.
        with pytest.raises(ValueError, match="migrate them off first"):
            system.remove_node(victim)
        # Relocate everything off the victim, then removal succeeds and
        # the sources keep producing into the relocated ingress.
        spare = (victim + 1) % len(system.nodes)
        moves = [
            (pe_id, spare)
            for pe_id, node in system.placement_book.placement.items()
            if node == victim
        ]
        assert system.migrate_pes(moves, reason="evacuate") is not None
        consumed_before = system.runtimes[ingress].counters.consumed
        removed = system.remove_node(victim)
        assert removed == f"node-{victim}"
        assert len(system.nodes) == 1
        system.env.run(until=3.0)
        assert system.runtimes[ingress].counters.consumed > consumed_before
        assert check_conservation(system) == []

    def test_migrated_pe_tick_overlap_regression(self):
        # Phase-staggered node loops consume a PE's interpolated work
        # timeline up to (tick + dt); a freshly migrated PE ticked by
        # its new node inside that window used to rewind the service
        # state machine and crash the run.
        topology = small_topology(load_factor=1.0)
        config = SystemConfig(
            dt=0.02,
            seed=1,
            warmup=1.0,
            source_kind="flashcrowd",
            source_surge_start=5.5,
            source_surge_duration=4.5,
            source_surge_factor=5.0,
            elasticity=ElasticityConfig(
                scale_out_pressure=0.65,
                scale_in_pressure=0.3,
                min_nodes=2,
                max_nodes=5,
                check_interval=0.5,
                dwell_intervals=2,
                cooldown=1.5,
                max_migrations_per_epoch=4,
                placement_evaluations=12,
            ),
        )
        system = SimulatedSystem(
            topology, policy_by_name("udp"), config=config
        )
        system.run(10.0)  # crashed around t=8.51 before the clamp
        assert system.placement_book.epoch > 0
        assert check_conservation(system) == []


class TestAutoscaledRun:
    def test_armed_run_scales_and_stays_conservation_clean(self):
        recorder = OracleRecorder(strict=True)
        system = armed_system(
            policy="udp",
            recorder=recorder,
            elasticity=ElasticityConfig(
                scale_out_pressure=0.6,
                scale_in_pressure=0.05,
                min_nodes=2,
                max_nodes=4,
                check_interval=0.5,
                dwell_intervals=2,
                cooldown=1.0,
                max_migrations_per_epoch=4,
                placement_evaluations=8,
            ),
            source_kind="flashcrowd",
            source_surge_start=2.0,
            source_surge_duration=2.5,
            source_surge_factor=4.0,
        )
        report = system.run(6.0)
        assert system.placement_book.epoch > 0
        assert system.migration_log
        peak = max(count for _, count in system._membership_timeline)
        assert peak > 2
        assert report.total_output_sdos > 0
        violations = list(recorder.finalize())
        violations.extend(check_conservation(system))
        assert violations == []
        # Membership timeline integration, not a frozen node count,
        # normalizes utilization.
        window = report.duration
        assert system._node_seconds(0.5, 0.5 + window) > 2 * window

    def test_no_sdo_is_stranded_outside_the_plane(self):
        system = armed_system()
        system.env.run(until=2.0)
        mover = sorted(system.runtimes)[0]
        target = (system.placement_book.placement[mover] + 1) % len(
            system.nodes
        )
        system.migrate_pes([(mover, target)])
        grouped = {
            pe.pe_id for group in system.plane.groups for pe in group.pes
        }
        assert set(system.runtimes) == grouped


class TestThreadedMembership:
    def make_runtime(self, elasticity):
        topology = small_topology()
        return SPCRuntime(
            topology,
            policy_by_name("udp"),
            config=RuntimeConfig(
                seed=3, warmup=0.3, dt=0.05, elasticity=elasticity
            ),
        )

    def test_disarmed_runtime_refuses_membership_ops(self):
        runtime = self.make_runtime(None)
        with pytest.raises(RuntimeError, match="elasticity-armed"):
            runtime.add_node()
        with pytest.raises(RuntimeError, match="elasticity-armed"):
            runtime.remove_node(0)
        with pytest.raises(RuntimeError, match="elasticity-armed"):
            runtime.migrate_pes([("pe-0", 1)])

    def test_scripted_join_migrate_leave(self):
        runtime = self.make_runtime(quiet_elasticity())
        node_id = runtime.add_node()
        assert node_id == "node-2"
        assert len(runtime.plane.groups) == 3
        mover = sorted(runtime.pes)[0]
        origin = runtime.placement_book.placement[mover]
        version = runtime.migrate_pes([(mover, 2)], reason="test")
        assert version is not None
        assert version.migrations == ((mover, origin, 2),)
        assert runtime.placement_book.placement[mover] == 2
        # Threaded migration is plane-only — workers never stop
        # draining their channels, so recorded downtime is zero.
        assert runtime.migration_log[-1].downtime == 0.0
        with pytest.raises(ValueError, match="migrate them off first"):
            runtime.remove_node(2)
        runtime.migrate_pes([(mover, origin)], reason="undo")
        assert runtime.remove_node(2) == "node-2"
        assert len(runtime.plane.groups) == 2

    def test_scripted_membership_parity_with_simulator(self):
        # The same membership script applied to both substrates must
        # yield identical placement epochs and assignments.
        sim = armed_system()
        threaded = self.make_runtime(quiet_elasticity())

        sim.add_node()
        threaded.add_node()
        mover = sorted(sim.runtimes)[0]
        sim.migrate_pes([(mover, 2)], reason="parity")
        threaded.migrate_pes([(mover, 2)], reason="parity")

        assert sim.placement_book.epoch == threaded.placement_book.epoch
        assert (
            sim.placement_book.placement
            == threaded.placement_book.placement
        )
        assert [g.node_id for g in sim.plane.groups] == [
            g.node_id for g in threaded.plane.groups
        ]
