"""PE-to-node placement strategies.

Tier 1 of ACES assumes a placement is given (the paper's topology tool emits
one); these strategies produce it.  All return a dict ``pe_id -> node_index``
and are deterministic given their RNG.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.graph.dag import ProcessingGraph

Placement = _t.Dict[str, int]


def _check(graph: ProcessingGraph, num_nodes: int) -> None:
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if len(graph) == 0:
        raise ValueError("cannot place an empty graph")


def round_robin_placement(graph: ProcessingGraph, num_nodes: int) -> Placement:
    """Assign PEs to nodes cyclically in topological order.

    Topological order keeps pipeline neighbours on different nodes, which is
    the worst case for co-location coupling and therefore a good stress
    placement for the controller.
    """
    _check(graph, num_nodes)
    order = graph.topological_order()
    return {pe_id: index % num_nodes for index, pe_id in enumerate(order)}


def random_placement(
    graph: ProcessingGraph, num_nodes: int, rng: np.random.Generator
) -> Placement:
    """Uniform random placement (used by the randomized experiments)."""
    _check(graph, num_nodes)
    return {
        pe_id: int(rng.integers(0, num_nodes)) for pe_id in graph.pe_ids
    }


def load_balanced_placement(graph: ProcessingGraph, num_nodes: int) -> Placement:
    """Greedy longest-processing-time bin packing on expected per-SDO work.

    Sorts PEs by mean service time (the only load proxy available before the
    global optimization runs) and repeatedly assigns the heaviest unplaced
    PE to the least-loaded node.
    """
    _check(graph, num_nodes)
    loads = [0.0] * num_nodes
    placement: Placement = {}
    by_weight = sorted(
        graph.pe_ids,
        key=lambda pe_id: (-graph.profile(pe_id).mean_service_time, pe_id),
    )
    for pe_id in by_weight:
        target = min(range(num_nodes), key=lambda n: (loads[n], n))
        placement[pe_id] = target
        loads[target] += graph.profile(pe_id).mean_service_time
    return placement


def placement_load(
    graph: ProcessingGraph, placement: Placement, num_nodes: int
) -> _t.List[float]:
    """Per-node sum of mean service times, for diagnostics."""
    loads = [0.0] * num_nodes
    for pe_id, node in placement.items():
        loads[node] += graph.profile(pe_id).mean_service_time
    return loads
