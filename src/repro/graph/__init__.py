"""Processing-graph substrate: DAG structure, topology generation, placement.

* :mod:`repro.graph.dag` — the directed-acyclic processing graph of PE
  profiles, with validation and traversal helpers.
* :mod:`repro.graph.topology` — the random topology generator replicating
  the paper's tool (Section VI-A): it takes the number of nodes, the number
  of ingress/egress/intermediate PEs and the average interconnection degree,
  and produces a PE graph, a placement, and PE parameters.
* :mod:`repro.graph.placement` — PE-to-node assignment strategies.
"""

from repro.graph.dag import GraphValidationError, ProcessingGraph
from repro.graph.placement import (
    load_balanced_placement,
    random_placement,
    round_robin_placement,
)
from repro.graph.placement_opt import PlacementSearchResult, optimize_placement
from repro.graph.topology import Topology, TopologySpec, generate_topology

__all__ = [
    "GraphValidationError",
    "PlacementSearchResult",
    "ProcessingGraph",
    "Topology",
    "TopologySpec",
    "generate_topology",
    "load_balanced_placement",
    "optimize_placement",
    "random_placement",
    "round_robin_placement",
]
