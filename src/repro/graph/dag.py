"""The processing graph: a DAG of PE profiles.

Mirrors the paper's Section V-A notation: ``U(p_j)`` (upstream set),
``D(p_j)`` (downstream set), ingress PEs (fed by system input streams) and
egress PEs (``D(p_j)`` empty, their output is a system output stream).
"""

from __future__ import annotations

import typing as _t

import networkx as nx

from repro.model.params import PEProfile


class GraphValidationError(Exception):
    """The processing graph violates a structural constraint."""


class ProcessingGraph:
    """A directed acyclic graph of :class:`~repro.model.params.PEProfile`.

    Edges point in the direction of data flow (producer -> consumer).
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._profiles: _t.Dict[str, PEProfile] = {}

    # -- construction --------------------------------------------------------

    def add_pe(self, profile: PEProfile) -> None:
        """Register a PE; id must be unique."""
        if profile.pe_id in self._profiles:
            raise GraphValidationError(f"duplicate PE id {profile.pe_id!r}")
        self._profiles[profile.pe_id] = profile
        self._graph.add_node(profile.pe_id)

    def add_edge(self, producer: str, consumer: str) -> None:
        """Connect ``producer``'s output stream to ``consumer``'s input."""
        for pe_id in (producer, consumer):
            if pe_id not in self._profiles:
                raise GraphValidationError(f"unknown PE id {pe_id!r}")
        if producer == consumer:
            raise GraphValidationError(f"self-loop on {producer!r}")
        if self._graph.has_edge(producer, consumer):
            raise GraphValidationError(
                f"duplicate edge {producer!r} -> {consumer!r}"
            )
        self._graph.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer, consumer)
            raise GraphValidationError(
                f"edge {producer!r} -> {consumer!r} would create a cycle"
            )

    # -- lookup ------------------------------------------------------------

    def profile(self, pe_id: str) -> PEProfile:
        return self._profiles[pe_id]

    @property
    def pe_ids(self) -> _t.List[str]:
        return list(self._profiles)

    @property
    def profiles(self) -> _t.Dict[str, PEProfile]:
        return dict(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, pe_id: str) -> bool:
        return pe_id in self._profiles

    # -- structure ---------------------------------------------------------

    def upstream(self, pe_id: str) -> _t.List[str]:
        """The paper's ``U(p_j)``: PEs feeding data to ``pe_id``."""
        return list(self._graph.predecessors(pe_id))

    def downstream(self, pe_id: str) -> _t.List[str]:
        """The paper's ``D(p_j)``: PEs fed by ``pe_id``."""
        return list(self._graph.successors(pe_id))

    def fan_in(self, pe_id: str) -> int:
        return self._graph.in_degree(pe_id)

    def fan_out(self, pe_id: str) -> int:
        return self._graph.out_degree(pe_id)

    @property
    def ingress_ids(self) -> _t.List[str]:
        """PEs with no upstream PEs (fed by system input streams)."""
        return [p for p in self._profiles if self._graph.in_degree(p) == 0]

    @property
    def egress_ids(self) -> _t.List[str]:
        """PEs with no downstream PEs (their output leaves the system)."""
        return [p for p in self._profiles if self._graph.out_degree(p) == 0]

    @property
    def intermediate_ids(self) -> _t.List[str]:
        return [
            p
            for p in self._profiles
            if self._graph.in_degree(p) > 0 and self._graph.out_degree(p) > 0
        ]

    def edges(self) -> _t.List[_t.Tuple[str, str]]:
        return list(self._graph.edges())

    def topological_order(self) -> _t.List[str]:
        """PE ids ordered so producers precede their consumers.

        Ties are broken lexicographically so the order is deterministic.
        """
        return list(nx.lexicographical_topological_sort(self._graph))

    def reverse_topological_order(self) -> _t.List[str]:
        """Consumers before producers — the feedback propagation order."""
        return list(reversed(self.topological_order()))

    def connected_components(self) -> _t.List[_t.Set[str]]:
        """Weakly connected components (paper Section III-B)."""
        return [set(c) for c in nx.weakly_connected_components(self._graph)]

    def depth(self) -> int:
        """Longest path length (number of edges) in the DAG."""
        if not self._profiles:
            return 0
        return nx.dag_longest_path_length(self._graph)

    def descendants(self, pe_id: str) -> _t.Set[str]:
        return set(nx.descendants(self._graph, pe_id))

    def ancestors(self, pe_id: str) -> _t.Set[str]:
        return set(nx.ancestors(self._graph, pe_id))

    # -- validation --------------------------------------------------------

    def validate(
        self,
        max_fan_in: _t.Optional[int] = None,
        max_fan_out: _t.Optional[int] = None,
        expected_ingress: _t.Optional[_t.Set[str]] = None,
        expected_egress: _t.Optional[_t.Set[str]] = None,
    ) -> None:
        """Check structural invariants; raises GraphValidationError.

        * the graph is a non-empty DAG (acyclicity is also enforced on
          every ``add_edge``);
        * optional fan-in / fan-out caps (the paper uses 3 / 4);
        * when the intended ingress/egress roles are given (e.g. by the
          topology generator's layering), every intended ingress PE must
          actually have no upstream, every intended egress PE no
          downstream, and no other PE may accidentally take such a role —
          which also guarantees every PE lies on an ingress -> egress path.
        """
        if not self._profiles:
            raise GraphValidationError("graph has no PEs")
        for pe_id in self._profiles:
            if max_fan_in is not None and self.fan_in(pe_id) > max_fan_in:
                raise GraphValidationError(
                    f"{pe_id!r} fan-in {self.fan_in(pe_id)} > {max_fan_in}"
                )
            if max_fan_out is not None and self.fan_out(pe_id) > max_fan_out:
                raise GraphValidationError(
                    f"{pe_id!r} fan-out {self.fan_out(pe_id)} > {max_fan_out}"
                )
        if expected_ingress is not None:
            actual = set(self.ingress_ids)
            if actual != expected_ingress:
                raise GraphValidationError(
                    "ingress role mismatch: "
                    f"unexpected {sorted(actual - expected_ingress)}, "
                    f"missing {sorted(expected_ingress - actual)}"
                )
        if expected_egress is not None:
            actual = set(self.egress_ids)
            if actual != expected_egress:
                raise GraphValidationError(
                    "egress role mismatch: "
                    f"unexpected {sorted(actual - expected_egress)}, "
                    f"missing {sorted(expected_egress - actual)}"
                )

    def __repr__(self) -> str:
        return (
            f"ProcessingGraph(pes={len(self._profiles)}, "
            f"edges={self._graph.number_of_edges()})"
        )
