"""Random topology generator, replicating the paper's tool (Section VI-A).

    "The topologies for the simulation were generated through a topology
    generation tool that takes as input the number of CPUs in the system,
    the number of ingress, egress and intermediate PEs in the system, and
    the average degree of interconnectivity between the PEs.  The output of
    the generator is a PE graph, the assignment of the PEs to the CPUs, the
    time-averaged CPU allocations of the PEs and the parameters for each
    PE."

We generate a layered DAG: ingress PEs form layer 0, intermediate PEs are
spread over interior layers, egress PEs form the last layer.  A backbone
pass guarantees every PE lies on an ingress->egress path; an enrichment pass
adds extra edges until the requested average degree (or the paper's 20%
multi-input/multi-output fraction) is reached, honouring the fan-in <= 3 and
fan-out <= 4 caps.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.graph.dag import GraphValidationError, ProcessingGraph
from repro.graph.placement import (
    Placement,
    load_balanced_placement,
    random_placement,
)
from repro.model.calibration import calibrate_profile
from repro.model.params import DEFAULTS, PEProfile


@dataclass
class TopologySpec:
    """Inputs to the topology generator (the paper's tool interface)."""

    num_nodes: int
    num_ingress: int
    num_egress: int
    num_intermediate: int
    #: Target average interconnection degree (edges per PE).  ``None`` lets
    #: the multi-io fraction alone drive edge enrichment (the paper's
    #: default parameterization fixes the multi-io fraction at 20%).
    avg_degree: _t.Optional[float] = None
    max_fan_in: int = DEFAULTS.max_fan_in
    max_fan_out: int = DEFAULTS.max_fan_out
    multi_io_fraction: float = DEFAULTS.multi_io_fraction
    #: Offered load relative to a fair CPU share per PE; > 1 means the
    #: proffered load exceeds available resources (the paper's regime).
    load_factor: float = 1.2
    #: Egress weights are drawn uniformly from this range.
    weight_range: _t.Tuple[float, float] = (0.5, 2.0)
    #: Per-PE service-cost heterogeneity: each PE's (t0, t1) pair is scaled
    #: by a factor drawn log-uniformly from [1/h, h].  Heterogeneous costs
    #: are what create the paper's Figure-2 rate mismatches among the
    #: consumers of a shared stream; h = 1 disables the effect.
    service_heterogeneity: float = 2.0
    #: PE state-machine parameters (paper defaults).
    lambda_s: float = DEFAULTS.lambda_s
    lambda_m: float = DEFAULTS.lambda_m
    rho: float = DEFAULTS.rho
    t0: float = DEFAULTS.t0
    t1: float = DEFAULTS.t1
    placement_strategy: str = "load_balanced"
    #: Measure each PE's rate model empirically (paper footnote 3) rather
    #: than trusting the analytic stationary-mix approximation, which is
    #: only exact in the long-dwell (very bursty) limit.
    calibrate_rates: bool = True

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.num_ingress <= 0 or self.num_egress <= 0:
            raise ValueError("need at least one ingress and one egress PE")
        if self.num_intermediate < 0:
            raise ValueError("num_intermediate must be >= 0")
        if self.max_fan_in < 1 or self.max_fan_out < 1:
            raise ValueError("fan caps must be >= 1")
        if not 0.0 <= self.multi_io_fraction <= 1.0:
            raise ValueError("multi_io_fraction must lie in [0, 1]")
        if self.load_factor <= 0:
            raise ValueError("load_factor must be positive")

    @property
    def num_pes(self) -> int:
        return self.num_ingress + self.num_egress + self.num_intermediate


@dataclass
class Topology:
    """Generator output: graph, placement, and source rates."""

    spec: TopologySpec
    graph: ProcessingGraph
    placement: Placement
    #: Offered input rate (SDO/s) per ingress PE id.
    source_rates: _t.Dict[str, float]
    layers: _t.List[_t.List[str]] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    def pes_on_node(self, node: int) -> _t.List[str]:
        return [pe for pe, n in self.placement.items() if n == node]


def _build_layers(spec: TopologySpec) -> _t.List[_t.List[str]]:
    """Assign PE ids to layers: ingress, interior layers, egress."""
    ingress = [f"pe-{i}" for i in range(spec.num_ingress)]
    intermediate = [
        f"pe-{spec.num_ingress + i}" for i in range(spec.num_intermediate)
    ]
    egress = [
        f"pe-{spec.num_ingress + spec.num_intermediate + i}"
        for i in range(spec.num_egress)
    ]

    layers: _t.List[_t.List[str]] = [ingress]
    if intermediate:
        width = max(1, (spec.num_ingress + spec.num_egress) // 2)
        num_layers = max(1, round(len(intermediate) / width))
        per_layer = -(-len(intermediate) // num_layers)  # ceil division
        for start in range(0, len(intermediate), per_layer):
            layers.append(intermediate[start : start + per_layer])
    layers.append(egress)
    return layers


def _eligible(
    candidates: _t.Sequence[str],
    predicate: _t.Callable[[str], bool],
) -> _t.List[str]:
    return [c for c in candidates if predicate(c)]


def generate_topology(spec: TopologySpec, rng: np.random.Generator) -> Topology:
    """Generate a random topology satisfying ``spec``.

    Deterministic for a given ``rng`` state.  The produced graph always
    validates against the spec's fan caps and full ingress/egress
    reachability.
    """
    layers = _build_layers(spec)
    graph = ProcessingGraph()

    # -- profiles --------------------------------------------------------
    egress_ids = set(layers[-1])
    for layer in layers:
        for pe_id in layer:
            if pe_id in egress_ids:
                low, high = spec.weight_range
                weight = float(rng.uniform(low, high))
            else:
                # Only system-output streams carry positive weight in the
                # effectiveness metric (paper Section III-A); interior PEs
                # matter solely through the flow constraints.
                weight = 0.0
            h = spec.service_heterogeneity
            if h < 1.0:
                raise ValueError("service_heterogeneity must be >= 1")
            if h > 1.0:
                log_scale = rng.uniform(-np.log(h), np.log(h))
                scale = float(np.exp(log_scale))
            else:
                scale = 1.0
            profile = PEProfile(
                pe_id=pe_id,
                weight=weight,
                t0=spec.t0 * scale,
                t1=spec.t1 * scale,
                lambda_s=spec.lambda_s,
                rho=spec.rho,
                lambda_m=spec.lambda_m,
            )
            if spec.calibrate_rates:
                profile = calibrate_profile(profile)
            graph.add_pe(profile)

    # -- backbone: every non-ingress PE gets one upstream ------------------
    def fan_out_ok(pe_id: str) -> bool:
        return graph.fan_out(pe_id) < spec.max_fan_out

    def fan_in_ok(pe_id: str) -> bool:
        return graph.fan_in(pe_id) < spec.max_fan_in

    for depth in range(1, len(layers)):
        earlier = [pe for layer in layers[:depth] for pe in layer]
        previous = layers[depth - 1]
        for pe_id in layers[depth]:
            # Prefer producers that do not yet have a consumer: this keeps
            # the backbone close to a matching, so the multi-input/output
            # fraction is controlled by the enrichment pass below rather
            # than by backbone randomness.
            pool = (
                _eligible(previous, lambda p: graph.fan_out(p) == 0)
                or _eligible(previous, fan_out_ok)
                or _eligible(earlier, fan_out_ok)
            )
            if not pool:
                # All earlier PEs saturated: relax the cap minimally by
                # picking the least-loaded producer.
                pool = [min(earlier, key=lambda p: (graph.fan_out(p), p))]
            producer = pool[int(rng.integers(0, len(pool)))]
            graph.add_edge(producer, pe_id)

    # -- backbone: every non-egress PE gets one downstream ------------------
    for depth in range(len(layers) - 1):
        later = [pe for layer in layers[depth + 1 :] for pe in layer]
        following = layers[depth + 1]
        for pe_id in layers[depth]:
            if graph.fan_out(pe_id) > 0:
                continue
            pool = _eligible(following, fan_in_ok) or _eligible(
                later, fan_in_ok
            )
            if not pool:
                pool = [min(later, key=lambda p: (graph.fan_in(p), p))]
            consumer = pool[int(rng.integers(0, len(pool)))]
            graph.add_edge(pe_id, consumer)

    # -- enrichment: extra edges for multi-io fraction / average degree -----
    all_ids = graph.pe_ids
    if spec.avg_degree is None:
        target_edges = len(graph.edges())
    else:
        target_edges = max(
            len(graph.edges()),
            int(round(spec.avg_degree * spec.num_pes)),
        )
    target_multi = int(round(spec.multi_io_fraction * spec.num_pes))

    def multi_io_count() -> int:
        return sum(
            1
            for pe in all_ids
            if graph.fan_in(pe) > 1 or graph.fan_out(pe) > 1
        )

    attempts = 0
    max_attempts = 50 * spec.num_pes
    while (
        len(graph.edges()) < target_edges or multi_io_count() < target_multi
    ) and attempts < max_attempts:
        attempts += 1
        layer_index = int(rng.integers(0, len(layers) - 1))
        producer_layer = layers[layer_index]
        later = [pe for layer in layers[layer_index + 1 :] for pe in layer]
        producers = _eligible(producer_layer, fan_out_ok)
        consumers = _eligible(later, fan_in_ok)
        if not producers or not consumers:
            continue
        producer = producers[int(rng.integers(0, len(producers)))]
        consumer = consumers[int(rng.integers(0, len(consumers)))]
        try:
            graph.add_edge(producer, consumer)
        except GraphValidationError:
            continue

    graph.validate(
        expected_ingress=set(layers[0]),
        expected_egress=set(layers[-1]),
    )

    # -- placement ---------------------------------------------------------
    if spec.placement_strategy == "load_balanced":
        placement = load_balanced_placement(graph, spec.num_nodes)
    elif spec.placement_strategy == "random":
        placement = random_placement(graph, spec.num_nodes, rng)
    else:
        raise ValueError(
            f"unknown placement strategy {spec.placement_strategy!r}"
        )

    # -- offered source rates ------------------------------------------------
    # A PE's fair CPU share is its node capacity divided by the resident PE
    # count; the offered load multiplies the rate sustainable at that share.
    residents: _t.Dict[int, int] = {}
    for node in placement.values():
        residents[node] = residents.get(node, 0) + 1
    source_rates: _t.Dict[str, float] = {}
    for pe_id in graph.ingress_ids:
        profile = graph.profile(pe_id)
        share = 1.0 / residents[placement[pe_id]]
        source_rates[pe_id] = spec.load_factor * profile.rate_at(share)

    return Topology(
        spec=spec,
        graph=graph,
        placement=placement,
        source_rates=source_rates,
        layers=layers,
    )


def paper_calibration_spec(**overrides: object) -> TopologySpec:
    """The 60 PE / 10 node calibration topology (paper Section VI-C)."""
    params: _t.Dict[str, object] = dict(
        num_nodes=DEFAULTS.calibration_nodes,
        num_ingress=12,
        num_egress=12,
        num_intermediate=DEFAULTS.calibration_pes - 24,
    )
    params.update(overrides)
    return TopologySpec(**params)  # type: ignore[arg-type]


def paper_main_spec(**overrides: object) -> TopologySpec:
    """The 200 PE / 80 node main topology (paper Section VI-C)."""
    params: _t.Dict[str, object] = dict(
        num_nodes=DEFAULTS.main_nodes,
        num_ingress=40,
        num_egress=40,
        num_intermediate=DEFAULTS.main_pes - 80,
    )
    params.update(overrides)
    return TopologySpec(**params)  # type: ignore[arg-type]
