"""Placement optimization: the assignment half of Tier 1.

The paper's first tier "determines the assignment of PEs to PNs"
(Section I) alongside the fractional allocations; re-running it "when PEs
are deployed or terminate and periodically" adapts placement to workload.
:func:`optimize_placement` implements that step as a local search over
single-PE moves and pairwise swaps, scoring each candidate placement by
the Tier-1 optimum it admits (the weighted-throughput objective of
:func:`repro.core.global_opt.solve_global_allocation`).

Scoring a candidate requires solving the concave program, so the search
budget is expressed in *evaluations*; a greedy first-improvement strategy
with a move neighbourhood keeps the count low.  For large systems, seed
the search with :func:`repro.graph.placement.load_balanced_placement`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.graph.dag import ProcessingGraph
from repro.graph.placement import Placement

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.utility import UtilityFunction


@dataclass
class PlacementSearchResult:
    """Outcome of a placement local search."""

    placement: Placement
    objective: float
    initial_objective: float
    evaluations: int
    improvements: _t.List[_t.Tuple[str, float]] = field(default_factory=list)

    @property
    def gain(self) -> float:
        """Relative objective improvement over the initial placement."""
        if self.initial_objective == 0:
            return 0.0
        return self.objective / self.initial_objective - 1.0


def _score(
    graph: ProcessingGraph,
    placement: Placement,
    source_rates: _t.Mapping[str, float],
    utility: _t.Optional["UtilityFunction"],
) -> float:
    # Imported lazily: repro.core depends on repro.graph for its data
    # structures, so importing the solver at module load would be cyclic.
    from repro.core.global_opt import solve_global_allocation

    result = solve_global_allocation(
        graph, placement, source_rates, utility=utility, solver="slsqp"
    )
    return result.objective


def optimize_placement(
    graph: ProcessingGraph,
    initial: Placement,
    source_rates: _t.Mapping[str, float],
    num_nodes: int,
    utility: _t.Optional[UtilityFunction] = None,
    max_evaluations: int = 60,
    rng: _t.Optional[np.random.Generator] = None,
) -> PlacementSearchResult:
    """Greedy local search over PE moves, scored by the Tier-1 optimum.

    Parameters
    ----------
    graph, source_rates:
        The processing graph and offered ingress rates.
    initial:
        Starting placement (e.g. load-balanced).
    num_nodes:
        Number of processing nodes available.
    max_evaluations:
        Budget of Tier-1 solves (each candidate costs one).
    rng:
        Randomizes the order in which candidate moves are tried; defaults
        to a fixed seed for reproducibility.

    Returns
    -------
    PlacementSearchResult
        Best placement found, its objective, and the search trace.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if max_evaluations < 1:
        raise ValueError("max_evaluations must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)

    current = dict(initial)

    # The local search revisits placements: a candidate differs from the
    # incumbent by a single PE, and rejected moves are retried from the
    # same incumbent on later sweeps.  Each solve is an SLSQP run over
    # the whole system, so memoize scores by placement signature for the
    # duration of this call.  The ``evaluations`` budget still counts
    # cache hits — the search trajectory (and therefore the result) is
    # identical to the uncached search, just cheaper.
    cache: _t.Dict[_t.Tuple[_t.Tuple[str, int], ...], float] = {}

    def scored(placement: Placement) -> float:
        signature = tuple(sorted(placement.items()))
        hit = cache.get(signature)
        if hit is None:
            hit = _score(graph, placement, source_rates, utility)
            cache[signature] = hit
        return hit

    evaluations = 1
    current_score = scored(current)
    initial_score = current_score
    improvements: _t.List[_t.Tuple[str, float]] = []

    # Candidate moves: relocate one PE to another node.  Prioritize PEs on
    # the most-loaded nodes (they are the likeliest bottlenecks).
    pe_ids = list(graph.pe_ids)

    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        order = list(pe_ids)
        rng.shuffle(order)
        for pe_id in order:
            if evaluations >= max_evaluations:
                break
            home = current[pe_id]
            targets = [n for n in range(num_nodes) if n != home]
            rng.shuffle(targets)
            for node in targets[: max(1, num_nodes // 4)]:
                if evaluations >= max_evaluations:
                    break
                candidate = dict(current)
                candidate[pe_id] = node
                evaluations += 1
                score = scored(candidate)
                if score > current_score * (1 + 1e-6):
                    current = candidate
                    current_score = score
                    improvements.append(
                        (f"move {pe_id} -> node {node}", score)
                    )
                    improved = True
                    break

    return PlacementSearchResult(
        placement=current,
        objective=current_score,
        initial_objective=initial_score,
        evaluations=evaluations,
        improvements=improvements,
    )
