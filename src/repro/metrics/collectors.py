"""Egress collection and the consolidated per-run metrics report.

The :class:`EgressCollector` sits behind every egress PE; each SDO leaving
the system records one weighted completion and one end-to-end latency
sample.  Warm-up is handled with :meth:`EgressCollector.reset`: the system
runs the transient period, resets, and the measured window starts clean.
"""

from __future__ import annotations

import typing as _t
import warnings
from dataclasses import dataclass, field

from repro.core.utility import LogUtility, UtilityFunction
from repro.metrics.stats import StreamingMoments, SummaryStats
from repro.model.sdo import SDO
from repro.obs.hist import LogHistogram

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracker

#: Quantiles every latency report carries (seconds).
LATENCY_QUANTILES = (0.50, 0.95, 0.99)


@dataclass
class EgressRecord:
    """Accumulated output of one egress PE."""

    pe_id: str
    weight: float
    count: int = 0
    latency: StreamingMoments = field(default_factory=StreamingMoments)
    #: Streaming end-to-end latency histogram (always on; one log-bucket
    #: update per egress SDO buys p50/p95/p99 for every run).
    hist: LogHistogram = field(default_factory=LogHistogram)

    def record(self, sdo: SDO, now: float) -> None:
        self.count += 1
        age = sdo.age(now)
        self.latency.add(age)
        self.hist.add(age)


class EgressCollector:
    """Collects weighted throughput and latency at the system outputs."""

    def __init__(self) -> None:
        self._records: _t.Dict[str, EgressRecord] = {}
        self._window_start = 0.0
        self._spans: _t.Optional["SpanTracker"] = None

    def register(self, pe_id: str, weight: float) -> None:
        if pe_id in self._records:
            raise ValueError(f"egress PE {pe_id!r} already registered")
        self._records[pe_id] = EgressRecord(pe_id=pe_id, weight=weight)

    def attach_spans(self, tracker: "SpanTracker") -> None:
        """Close each egress SDO's span (and check the closure identity)."""
        self._spans = tracker

    def record(self, pe_id: str, sdo: SDO, now: float) -> None:
        self._records[pe_id].record(sdo, now)
        spans = self._spans
        if spans is not None:
            spans.observe_egress(pe_id, sdo, now)

    def reset(self, now: float) -> None:
        """Discard warm-up samples; the measured window starts at ``now``."""
        for record in self._records.values():
            record.count = 0
            record.latency = StreamingMoments()
            record.hist = LogHistogram()
        self._window_start = now

    # -- results -----------------------------------------------------------

    @property
    def window_start(self) -> float:
        return self._window_start

    def records(self) -> _t.Dict[str, EgressRecord]:
        return dict(self._records)

    def weighted_throughput(self, now: float) -> float:
        """sum_j w_j * (egress SDO rate) over the measured window."""
        duration = now - self._window_start
        if duration <= 0:
            return 0.0
        return (
            sum(r.weight * r.count for r in self._records.values()) / duration
        )

    def total_output(self) -> int:
        return sum(r.count for r in self._records.values())

    def weighted_utility(
        self, now: float, utility: _t.Optional[UtilityFunction] = None
    ) -> float:
        """sum_j w_j U(rate_j) over the measured window.

        The concave counterpart of :meth:`weighted_throughput`, evaluated
        with the same utility Tier 1 optimizes (``log(x + 1)`` by default)
        so measured outcomes are comparable to the Tier-1 objective.
        """
        duration = now - self._window_start
        if duration <= 0:
            return 0.0
        if utility is None:
            utility = LogUtility()
        return sum(
            r.weight * utility.value(r.count / duration)
            for r in self._records.values()
        )

    def latency_summary(self) -> SummaryStats:
        """Pooled end-to-end latency over all egress streams."""
        pooled = StreamingMoments()
        for record in self._records.values():
            pooled.merge(record.latency)
        return pooled.summary()

    def latency_histogram(self) -> LogHistogram:
        """Pooled end-to-end latency histogram over all egress streams."""
        pooled = LogHistogram()
        for record in self._records.values():
            pooled.merge(record.hist)
        return pooled

    def latency_percentiles(self) -> _t.Dict[str, float]:
        """Pooled p50/p95/p99 end-to-end latency (seconds)."""
        return self.latency_histogram().percentiles(LATENCY_QUANTILES)

    def stream_percentiles(self) -> _t.Dict[str, _t.Dict[str, float]]:
        """Per-egress-stream p50/p95/p99 (seconds), sorted by stream id."""
        return {
            pe_id: self._records[pe_id].hist.percentiles(LATENCY_QUANTILES)
            for pe_id in sorted(self._records)
        }


def _merge_moments(into: StreamingMoments, other: StreamingMoments) -> None:
    """Deprecated shim: use :meth:`StreamingMoments.merge` instead."""
    warnings.warn(
        "_merge_moments is deprecated; use StreamingMoments.merge",
        DeprecationWarning,
        stacklevel=2,
    )
    into.merge(other)


@dataclass
class MetricsReport:
    """Everything one simulation run reports (over the measured window)."""

    policy: str
    duration: float
    weighted_throughput: float
    total_output_sdos: int
    latency: SummaryStats
    #: SDOs dropped at full input buffers inside the graph.
    buffer_drops: int
    #: SDOs rejected at the system input (sources found ingress full).
    source_rejections: int
    source_generated: int
    #: Mean (over PEs) time-averaged buffer occupancy, in SDOs.
    mean_buffer_occupancy: float
    #: Per-egress detail: pe_id -> (weight, count, mean latency).
    egress_detail: _t.Dict[str, _t.Tuple[float, int, float]] = field(
        default_factory=dict
    )
    #: CPU seconds actually used across PEs / wall duration / node count.
    cpu_utilization: float = 0.0
    #: Fraction of emitted SDOs dropped downstream (wasted processing).
    wasted_work_fraction: float = 0.0
    #: Weighted utility throughput sum_j w_j U(rate_j) for the log utility
    #: (the Tier-1 objective, from ``core/utility.py``), reported alongside
    #: the linear weighted throughput.
    weighted_utility: float = 0.0
    #: Pooled end-to-end latency quantiles in seconds
    #: (``{"p50": ..., "p95": ..., "p99": ...}``; empty when the run
    #: predates histogram collection).
    latency_percentiles: _t.Dict[str, float] = field(default_factory=dict)
    #: Per-kind drop breakdown over the measured window.  The in-graph
    #: kinds (``buffer_overflow``, ``flushed``, ``shed``) sum exactly to
    #: :attr:`buffer_drops`; the admission-front-end refusals
    #: (``admission_shed``, ``admission_rejected``) happen before any
    #: buffer and are a subset of :attr:`source_rejections`.  Empty for
    #: runs that predate the breakdown.
    drops_by_kind: _t.Dict[str, int] = field(default_factory=dict)

    @property
    def input_loss_rate(self) -> float:
        if self.source_generated == 0:
            return 0.0
        return self.source_rejections / self.source_generated

    def one_line(self) -> str:
        pct = self.latency_percentiles
        return (
            f"{self.policy:9s} wthr={self.weighted_throughput:8.2f} "
            f"wutil={self.weighted_utility:7.2f} "
            f"lat={self.latency.mean * 1000:7.1f}ms "
            f"(std {self.latency.std * 1000:6.1f}) "
            f"p50/p95/p99={pct.get('p50', 0.0) * 1000:.1f}/"
            f"{pct.get('p95', 0.0) * 1000:.1f}/"
            f"{pct.get('p99', 0.0) * 1000:.1f}ms "
            f"out={self.total_output_sdos:7d} drops={self.buffer_drops:6d} "
            f"rej={self.source_rejections:6d}"
        )
