"""Measurement: throughput, latency, loss, occupancy, and summary stats.

The paper's two headline metrics are implemented here:

* **weighted throughput** — SDOs leaving the system through egress PEs,
  weighted by each output stream's importance ``w_j`` (Section III-A);
* **end-to-end latency** — time from a source SDO entering the system to a
  derived SDO leaving through an egress PE (mean and standard deviation,
  as in Figures 3 and 4).
"""

from repro.metrics.collectors import EgressCollector, EgressRecord, MetricsReport
from repro.metrics.stats import (
    SummaryStats,
    confidence_interval,
    summarize,
)
from repro.metrics.timeseries import ThroughputProbe, WindowSample

__all__ = [
    "EgressCollector",
    "EgressRecord",
    "MetricsReport",
    "SummaryStats",
    "ThroughputProbe",
    "WindowSample",
    "confidence_interval",
    "summarize",
]
