"""Summary statistics helpers used across experiments."""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass


@dataclass(frozen=True)
class SummaryStats:
    """Mean / std / extremes of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @staticmethod
    def empty() -> "SummaryStats":
        return SummaryStats(
            count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0
        )


def summarize(values: _t.Sequence[float]) -> SummaryStats:
    """Single-pass-friendly summary of a sample (population std)."""
    n = len(values)
    if n == 0:
        return SummaryStats.empty()
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return SummaryStats(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def confidence_interval(
    values: _t.Sequence[float], z: float = 1.96
) -> _t.Tuple[float, float]:
    """Normal-approximation CI half-widths around the sample mean."""
    stats = summarize(values)
    if stats.count < 2:
        return (stats.mean, stats.mean)
    half = z * stats.std / math.sqrt(stats.count)
    return (stats.mean - half, stats.mean + half)


class StreamingMoments:
    """Welford online mean/variance — O(1) memory for long runs."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold ``other``'s samples into this accumulator (in place).

        Chan et al.'s parallel-variance combination: exact for the mean,
        numerically stable for the second moment.  Returns ``self`` so
        merges chain; ``other`` is left untouched.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> SummaryStats:
        if self.count == 0:
            return SummaryStats.empty()
        return SummaryStats(
            count=self.count,
            mean=self.mean,
            std=self.std,
            minimum=self.minimum,
            maximum=self.maximum,
        )
