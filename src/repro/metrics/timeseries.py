"""Time-series probes: throughput and latency sampled over a run.

The scalar :class:`~repro.metrics.collectors.MetricsReport` summarizes a
whole measured window; for transient questions — how fast does the system
recover from a fault? does throughput oscillate? — attach a
:class:`ThroughputProbe` before running and read the per-window series
afterwards.  The plain :class:`TimeSeries` container underneath is shared
with the gauge sampler in :mod:`repro.obs.gauges`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.metrics.stats import SummaryStats, summarize

if _t.TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.systems.simulated import SimulatedSystem


class TimeSeries:
    """An append-only ``(time, value)`` series with window reductions.

    The storage behind every sampled gauge: appends are O(1), times are
    required to be non-decreasing (virtual time only moves forward), and
    the common reductions — summary statistics and fixed-window averages —
    are provided so consumers do not reimplement them.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.times: _t.List[float] = []
        self.values: _t.List[float] = []

    def append(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"{self.name or 'series'}: time went backwards "
                f"({self.times[-1]} -> {t})"
            )
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> _t.Iterator[_t.Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def summary(self) -> SummaryStats:
        return summarize(self.values)

    def window(self, start: float, end: float) -> "TimeSeries":
        """The sub-series with ``start <= t < end``."""
        clipped = TimeSeries(name=self.name)
        for t, value in zip(self.times, self.values):
            if start <= t < end:
                clipped.append(t, value)
        return clipped

    def window_mean(self, start: float, end: float) -> float:
        """Mean of the samples falling in ``[start, end)`` (0 when none)."""
        return self.window(start, end).summary().mean

    def last(self) -> _t.Optional[_t.Tuple[float, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self)})"


@dataclass
class WindowSample:
    """Aggregates for one sampling window."""

    start: float
    end: float
    weighted_throughput: float
    output_sdos: int
    mean_latency: float

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.start + self.end)


class ThroughputProbe:
    """Samples egress output per fixed-size window during a run.

    Attach before ``system.run`` / ``env.run``::

        probe = ThroughputProbe(system, window=0.5)
        system.run(duration)
        series = probe.samples
    """

    def __init__(self, system: SimulatedSystem, window: float = 0.5):
        if window <= 0:
            raise ValueError("window must be positive")
        self.system = system
        self.window = window
        self.samples: _t.List[WindowSample] = []
        self._last_counts: _t.Dict[str, int] = {}
        self._last_latency_totals: _t.Dict[str, _t.Tuple[int, float]] = {}
        system.env.process(self._run())

    def _snapshot(self) -> _t.Tuple[_t.Dict[str, int], _t.Dict[str, _t.Tuple[int, float]]]:
        counts = {}
        latencies = {}
        for pe_id, record in self.system.collector.records().items():
            counts[pe_id] = record.count
            latencies[pe_id] = (
                record.latency.count,
                record.latency.mean * record.latency.count,
            )
        return counts, latencies

    def _run(self) -> _t.Generator:
        self._last_counts, self._last_latency_totals = self._snapshot()
        while True:
            start = self.system.env.now
            yield self.system.env.timeout(self.window)
            end = self.system.env.now
            counts, latency_totals = self._snapshot()

            output = 0
            weighted = 0.0
            latency_sum = 0.0
            latency_n = 0
            for pe_id, record in self.system.collector.records().items():
                previous = self._last_counts.get(pe_id, 0)
                # A warm-up reset zeroes the collector mid-window; treat
                # the post-reset count as the whole window's delta.
                delta = (
                    counts[pe_id] - previous
                    if counts[pe_id] >= previous
                    else counts[pe_id]
                )
                output += delta
                weighted += record.weight * delta
                n1, s1 = latency_totals[pe_id]
                n0, s0 = self._last_latency_totals.get(pe_id, (0, 0.0))
                if n1 >= n0:
                    latency_n += n1 - n0
                    latency_sum += s1 - s0
                else:
                    latency_n += n1
                    latency_sum += s1

            self.samples.append(
                WindowSample(
                    start=start,
                    end=end,
                    weighted_throughput=weighted / self.window,
                    output_sdos=output,
                    mean_latency=(
                        latency_sum / latency_n if latency_n else 0.0
                    ),
                )
            )
            self._last_counts = counts
            self._last_latency_totals = latency_totals

    # -- analysis ------------------------------------------------------------

    def series(self) -> _t.List[_t.Tuple[float, float]]:
        """(window midpoint, weighted throughput) pairs."""
        return [(s.midpoint, s.weighted_throughput) for s in self.samples]

    def recovery_time(
        self, dip_start: float, reference: float, fraction: float = 0.9
    ) -> _t.Optional[float]:
        """Time after ``dip_start`` until throughput regains the fraction
        of ``reference``; ``None`` if it never does within the trace."""
        if reference <= 0:
            return 0.0
        for sample in self.samples:
            if sample.start < dip_start:
                continue
            if sample.weighted_throughput >= fraction * reference:
                return sample.end - dip_start
        return None
