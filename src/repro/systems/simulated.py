"""The complete simulated distributed stream processing system.

Wires the topology (graph + placement + source rates), a control policy
(ACES / UDP / Lock-Step), and Tier-1 allocation targets into a running
discrete-event simulation:

* every ingress PE is fed by a workload source (bursty on/off by default);
* every processing node runs an independent periodic control loop at an
  unsynchronized phase offset (the paper stresses the algorithm needs no
  inter-node synchronization, Section V-E);
* each control tick performs, in the paper's order (Section V-E):
  downstream feedback aggregation (Eq. 8) -> CPU allocation (Section V-D)
  -> flow-control update + upstream publication (Eq. 7) -> PE execution;
* SDOs leaving through egress PEs land in the metrics collector.

Use :func:`run_system` for the one-call experiment entry point.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.cpu_control import AcesCpuScheduler
from repro.core.feedback import FeedbackBus
from repro.core.flow_control import FlowController
from repro.core.policies import Policy
from repro.core.resilience import ResilientTier1, Tier1Unavailable
from repro.core.targets import AllocationTargets
from repro.core.utility import LogUtility
from repro.graph.topology import Topology
from repro.metrics.collectors import EgressCollector, MetricsReport
from repro.model.links import Link
from repro.model.node import ProcessingNode
from repro.model.pe import PERuntime
from repro.model.sdo import SDO
from repro.model.workload import (
    ConstantRateSource,
    OnOffSource,
    PoissonSource,
)
from repro.obs.gauges import GaugeRegistry
from repro.obs.profiler import PhaseProfiler
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams


@dataclass
class SystemConfig:
    """Run-time configuration of a simulated system."""

    buffer_size: int = 50
    #: b0 as a fraction of the buffer size (paper: 1/2).
    b0_fraction: float = 0.5
    #: Control interval Delta-t (seconds).
    dt: float = 0.01
    #: Feedback propagation delay; None means one control interval.
    feedback_delay: _t.Optional[float] = None
    #: Staleness TTL for feedback values (seconds; typically a few Δt).
    #: A value unheard-from for longer decays to the conservative
    #: ``feedback_stale_bound`` instead of being trusted forever.  None
    #: (default) preserves the original trust-forever behavior.
    feedback_staleness_ttl: _t.Optional[float] = None
    #: Conservative r_max substituted for stale feedback values.
    feedback_stale_bound: float = 0.0
    #: Source model: 'onoff' (bursty), 'poisson', or 'constant'.
    source_kind: str = "onoff"
    #: ON fraction for the on/off source.
    source_duty: float = 0.5
    #: Mean ON-period duration (seconds) — the arrival burst length.
    source_mean_on: float = 0.5
    #: Simulated warm-up excluded from all metrics.
    warmup: float = 5.0
    #: Finite bandwidth (size units / second) for links between PEs on
    #: *different* nodes; None models the paper's instantaneous
    #: intra-cluster transport.  Co-located PEs always communicate
    #: through memory.
    link_bandwidth: _t.Optional[float] = None
    #: Propagation delay added to every inter-node transfer (seconds).
    link_latency: float = 0.0
    #: When set, Tier 1 is re-solved every this many simulated seconds
    #: using the *measured* recent input rates, and the refreshed CPU
    #: targets are pushed into the running schedulers (the paper's
    #: periodic global optimization "to support changing workload").
    reoptimize_interval: _t.Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if not 0.0 <= self.b0_fraction <= 1.0:
            raise ValueError("b0_fraction must lie in [0, 1]")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.source_kind not in ("onoff", "poisson", "constant"):
            raise ValueError(f"unknown source_kind {self.source_kind!r}")
        if not 0.0 < self.source_duty <= 1.0:
            raise ValueError("source_duty must lie in (0, 1]")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.reoptimize_interval is not None and self.reoptimize_interval <= 0:
            raise ValueError("reoptimize_interval must be positive")
        if (
            self.feedback_staleness_ttl is not None
            and self.feedback_staleness_ttl <= 0
        ):
            raise ValueError("feedback_staleness_ttl must be positive")
        if self.feedback_stale_bound < 0:
            raise ValueError("feedback_stale_bound must be >= 0")
        if self.link_bandwidth is not None and self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.link_latency < 0:
            raise ValueError("link_latency must be >= 0")


class _TickRecord:
    """Per-PE state resolved once at wiring time for the control loop.

    The per-tick loops in :meth:`SimulatedSystem._tick_node` run for every
    PE on every node every ``dt``; anything constant across ticks (gate,
    controller, downstream ids, the Tier-1 CPU target) lives here instead
    of being re-looked-up from the policy/targets dictionaries each time.
    """

    __slots__ = ("pe", "pe_id", "gate", "controller", "downstream_ids",
                 "cpu_target")

    def __init__(
        self,
        pe: PERuntime,
        gate: _t.Optional[_t.Callable[[PERuntime], bool]],
        controller: _t.Optional[FlowController],
        cpu_target: float,
    ):
        self.pe = pe
        self.pe_id = pe.pe_id
        self.gate = gate
        self.controller = controller
        self.downstream_ids = tuple(d.pe_id for d in pe.downstream)
        self.cpu_target = cpu_target


@dataclass
class _Snapshot:
    """Cumulative counters captured at the start of the measured window."""

    buffer_drops: int = 0
    source_generated: int = 0
    source_rejected: int = 0
    cpu_used: float = 0.0
    emit_attempts: int = 0
    emit_drops: int = 0
    shed_drops: int = 0
    occupancy_integrals: _t.Dict[str, float] = field(default_factory=dict)


class SimulatedSystem:
    """One policy running on one topology inside the simulation kernel."""

    def __init__(
        self,
        topology: Topology,
        policy: Policy,
        targets: _t.Optional[AllocationTargets] = None,
        config: _t.Optional[SystemConfig] = None,
        recorder: _t.Optional[TraceRecorder] = None,
        profiler: _t.Optional[PhaseProfiler] = None,
        gauge_cadence: _t.Optional[float] = None,
    ):
        self.topology = topology
        self.policy = policy
        self.config = config or SystemConfig()
        self.env = Environment()
        self.streams = RandomStreams(seed=self.config.seed)

        #: Trace bus every instrumented component publishes to; the null
        #: default keeps all hot paths on their single-branch fast path.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if self.recorder.enabled:
            self.recorder.bind_clock(lambda: self.env.now)
        self.profiler = profiler
        self.env.profiler = profiler

        #: Degradation-guarded Tier-1 solver: retries, validates, and
        #: falls back to last-known-good targets when a re-solve fails
        #: (fault injection hooks into it via ``inject_failure``).
        self.tier1 = ResilientTier1(recorder=self.recorder)
        if targets is None:
            targets = self.tier1.solve(
                topology.graph,
                topology.placement,
                topology.source_rates,
                reason="initial",
            ).targets
        else:
            self.tier1.seed(targets)
        self.targets = targets

        self._build_runtimes()
        self._build_nodes()
        self._build_links()
        self._build_control()
        self._build_sources()
        self._build_gauges(gauge_cadence)
        self._build_tick_records()
        self._start_node_loops()

        self._emit_attempts = 0
        self._emit_drops = 0
        #: Same-timestamp delivery batches: arrival time -> list of
        #: (consumer-or-None, producer, sdo); one engine event per distinct
        #: arrival instant instead of one per SDO.
        self._delivery_batches: _t.Dict[
            float, _t.List[_t.Tuple[_t.Optional[PERuntime], PERuntime, SDO]]
        ] = {}
        #: Number of Tier-1 refreshes performed during the run.
        self.reoptimizations = 0
        if self.config.reoptimize_interval is not None:
            self.env.process(self._reoptimize_loop())

    # -- construction --------------------------------------------------------

    def _build_runtimes(self) -> None:
        graph = self.topology.graph
        ingress = set(graph.ingress_ids)
        egress = set(graph.egress_ids)
        self.runtimes: _t.Dict[str, PERuntime] = {}
        for pe_id in graph.topological_order():
            runtime = PERuntime(
                profile=graph.profile(pe_id),
                buffer_capacity=self.config.buffer_size,
                rng=self.streams.stream(f"pe:{pe_id}"),
                is_ingress=pe_id in ingress,
                is_egress=pe_id in egress,
            )
            if self.recorder.enabled:
                runtime.buffer.attach_recorder(self.recorder, pe_id)
            self.runtimes[pe_id] = runtime
        for src, dst in graph.edges():
            self.runtimes[src].link_downstream(self.runtimes[dst])

        self.collector = EgressCollector()
        for pe_id in egress:
            self.collector.register(pe_id, graph.profile(pe_id).weight)

    def _build_nodes(self) -> None:
        self.nodes: _t.List[ProcessingNode] = []
        placement = self.topology.placement
        order = self.topology.graph.topological_order()
        for node_index in range(self.topology.num_nodes):
            node = ProcessingNode(node_id=f"node-{node_index}")
            # Place PEs in topological order so intra-node execution flows
            # producer -> consumer within a single tick.
            for pe_id in order:
                if placement[pe_id] == node_index:
                    node.place(self.runtimes[pe_id])
            self.nodes.append(node)

    def _build_links(self) -> None:
        """Create serializing links for edges that cross node boundaries."""
        self.links: _t.Dict[_t.Tuple[str, str], Link] = {}
        bandwidth = self.config.link_bandwidth
        if bandwidth is None:
            return
        placement = self.topology.placement
        for src, dst in self.topology.graph.edges():
            if placement[src] == placement[dst]:
                continue  # co-located PEs share memory
            self.links[(src, dst)] = Link(
                name=f"{src}->{dst}",
                bandwidth=bandwidth,
                latency=self.config.link_latency,
            )

    def _build_control(self) -> None:
        config = self.config
        delay = config.dt if config.feedback_delay is None else config.feedback_delay
        self.bus = FeedbackBus(
            delay=delay,
            staleness_ttl=config.feedback_staleness_ttl,
            stale_bound=config.feedback_stale_bound,
            recorder=self.recorder,
        )

        self.schedulers = [
            self.policy.make_scheduler(
                node.pes, self.targets.cpu, node.cpu_capacity, config.dt
            )
            for node in self.nodes
        ]
        if self.recorder.enabled:
            for node, scheduler in zip(self.nodes, self.schedulers):
                attach = getattr(scheduler, "attach_tracing", None)
                if attach is not None:
                    attach(self.recorder, node.node_id)

        self.controllers: _t.Dict[str, FlowController] = {}
        if self.policy.uses_feedback:
            gains = self.policy.controller_gains(config.dt)
            b0 = config.b0_fraction * config.buffer_size
            for pe_id, runtime in self.runtimes.items():
                self.controllers[pe_id] = FlowController(
                    gains,
                    target_occupancy=b0,
                    buffer_capacity=runtime.buffer.capacity,
                    pe_id=pe_id,
                    recorder=self.recorder,
                )

        self.gates = {
            pe_id: self.policy.make_gate(runtime)
            for pe_id, runtime in self.runtimes.items()
        }
        self.admission_filters = {
            pe_id: self.policy.make_admission_filter(runtime)
            for pe_id, runtime in self.runtimes.items()
        }
        self._shed_drops = 0

        # Tick-loop constants, resolved once instead of per control tick.
        self._uses_feedback = self.policy.uses_feedback
        self._aggregate_max = (
            self.policy.aggregate_feedback() == "max"
            if self._uses_feedback
            else True
        )

    def _build_sources(self) -> None:
        config = self.config
        self.sources = []
        for pe_id, rate in sorted(self.topology.source_rates.items()):
            runtime = self.runtimes[pe_id]

            def sink(sdo: SDO, now: float, runtime: PERuntime = runtime) -> bool:
                return self._admit(runtime, sdo, now)

            stream_id = f"src:{pe_id}"
            rng = self.streams.stream(stream_id)
            if config.source_kind == "constant":
                source = ConstantRateSource(self.env, stream_id, sink, rate)
            elif config.source_kind == "poisson":
                source = PoissonSource(self.env, stream_id, sink, rate, rng)
            else:
                duty = config.source_duty
                mean_on = config.source_mean_on
                mean_off = mean_on * (1.0 - duty) / duty
                source = OnOffSource(
                    self.env,
                    stream_id,
                    sink,
                    peak_rate=rate / duty,
                    mean_on=mean_on,
                    mean_off=mean_off,
                    rng=rng,
                )
            self.sources.append(source)

    def _build_gauges(self, cadence: _t.Optional[float]) -> None:
        """Register the standard per-PE gauges when sampling is requested.

        Gauges: input-buffer ``occupancy`` for every PE, ``token_level``
        for PEs under a token-bucket scheduler, and the last advertised
        ``r_max`` for PEs with a flow controller.
        """
        self.gauges: _t.Optional[GaugeRegistry] = None
        if cadence is None:
            return
        self.gauges = GaugeRegistry(
            self.env, cadence=cadence, recorder=self.recorder
        )
        for pe_id, runtime in self.runtimes.items():
            self.gauges.register(
                "occupancy",
                lambda buffer=runtime.buffer: float(buffer.occupancy),
                pe=pe_id,
            )
        for scheduler in self.schedulers:
            if isinstance(scheduler, AcesCpuScheduler):
                for pe in scheduler.pes:
                    self.gauges.register(
                        "token_level",
                        lambda s=scheduler, p=pe.pe_id: s.token_level(p),
                        pe=pe.pe_id,
                    )
        for pe_id, controller in self.controllers.items():
            self.gauges.register(
                "r_max",
                lambda c=controller: c.last_r_max,
                pe=pe_id,
            )
        self.gauges.start()

    def _build_tick_records(self) -> None:
        """Resolve everything the per-tick loops need, once.

        Per node: the scheduler's concrete protocol (``isinstance`` checks
        hoisted out of the tick path) and one :class:`_TickRecord` per
        resident PE carrying its gate, flow controller, downstream ids,
        and Tier-1 CPU target.
        """
        cpu_targets = self.targets.cpu
        self._node_records: _t.List[_t.List[_TickRecord]] = [
            [
                _TickRecord(
                    pe,
                    self.gates[pe.pe_id],
                    self.controllers.get(pe.pe_id),
                    cpu_targets.get(pe.pe_id, 0.0),
                )
                for pe in node.pes
            ]
            for node in self.nodes
        ]
        self._scheduler_is_aces: _t.List[bool] = [
            isinstance(scheduler, AcesCpuScheduler)
            for scheduler in self.schedulers
        ]

    def _refresh_cpu_targets(self) -> None:
        """Propagate refreshed Tier-1 targets into the tick records."""
        cpu_targets = self.targets.cpu
        for records in self._node_records:
            for record in records:
                record.cpu_target = cpu_targets.get(record.pe_id, 0.0)

    def set_gate(
        self,
        pe_id: str,
        gate: _t.Optional[_t.Callable[[PERuntime], bool]],
    ) -> None:
        """Replace a PE's transmission gate at runtime.

        The tick loop reads gates from per-PE records resolved at wiring
        time, so dynamic replacement (fault injection stalling a PE, an
        operator pausing a stream) must go through here rather than
        mutating :attr:`gates` directly.
        """
        self.gates[pe_id] = gate
        for records in self._node_records:
            for record in records:
                if record.pe_id == pe_id:
                    record.gate = gate
                    return

    def suspend_node(self, node_index: int) -> None:
        """Make a node's control loop miss its ticks (controller outage).

        The loop keeps waking every ``dt`` but performs no control step
        and no PE execution until :meth:`resume_node` — exactly a hung
        controller process: feedback from the node stops, its values on
        the bus age out (see ``feedback_staleness_ttl``), and its PEs
        make no progress.
        """
        self._node_paused[node_index] = True

    def resume_node(self, node_index: int) -> None:
        """Resume a suspended node's control loop."""
        self._node_paused[node_index] = False

    def _start_node_loops(self) -> None:
        self._node_paused: _t.List[bool] = [False] * len(self.nodes)
        for index, (node, scheduler) in enumerate(
            zip(self.nodes, self.schedulers)
        ):
            offset = (index + 1) / (len(self.nodes) + 1) * self.config.dt
            self.env.process(
                self._node_loop(
                    node,
                    scheduler,
                    self._node_records[index],
                    self._scheduler_is_aces[index],
                    offset,
                    index,
                )
            )

    # -- control loop --------------------------------------------------------

    def _node_loop(
        self,
        node: ProcessingNode,
        scheduler: _t.Any,
        records: _t.List[_TickRecord],
        is_aces: bool,
        offset: float,
        node_index: int,
    ) -> _t.Generator:
        # Unsynchronized phase offsets: no global tick (Section V-E).
        env = self.env
        dt = self.config.dt
        tick = self._tick_node
        paused = self._node_paused
        yield env.timeout(offset)
        while True:
            if not paused[node_index]:
                tick(node, scheduler, records, is_aces, env.now)
            yield env.timeout(dt)

    def _tick_node(
        self,
        node: ProcessingNode,
        scheduler: _t.Any,
        records: _t.List[_TickRecord],
        is_aces: bool,
        now: float,
    ) -> None:
        profiler = self.profiler
        if profiler is not None:
            profiler.push("controller_tick")
        try:
            allocations = self._control_step(
                scheduler, records, is_aces, now
            )
        finally:
            if profiler is not None:
                profiler.pop()

        if profiler is not None:
            profiler.push("pe_execute")
        try:
            dt = self.config.dt
            emit = self._emit
            allocations_get = allocations.get
            settle = scheduler.settle
            for record in records:
                pe = record.pe
                used = pe.execute(
                    now,
                    dt,
                    allocations_get(record.pe_id, 0.0),
                    emit=emit,
                    gate=record.gate,
                )
                settle(record.pe_id, used, dt)
        finally:
            if profiler is not None:
                profiler.pop()

    def _control_step(
        self,
        scheduler: _t.Any,
        records: _t.List[_TickRecord],
        is_aces: bool,
        now: float,
    ) -> _t.Dict[str, float]:
        """Feedback aggregation, CPU allocation, and Eq. 7 updates."""
        dt = self.config.dt

        if self._uses_feedback:
            bus = self.bus
            read_bound = (
                bus.max_downstream_rate
                if self._aggregate_max
                else bus.min_downstream_rate
            )
            caps: _t.Dict[str, float] = {}
            for record in records:
                caps[record.pe_id] = read_bound(record.downstream_ids, now)
            if is_aces:
                allocations = scheduler.allocate(dt, caps)
            else:
                allocations = scheduler.allocate(dt)
            allocations_get = allocations.get
            publish = bus.publish
            for record in records:
                pe = record.pe
                # rho_j(n) is the rate the PE can *sustain*: when the PE is
                # momentarily unallocated (e.g. empty buffer) it still earns
                # tokens at its long-term target, so advertising the target
                # rate upstream is what keeps the pipeline from converging
                # to a self-throttled equilibrium.
                cpu_effective = allocations_get(record.pe_id, 0.0)
                if cpu_effective < record.cpu_target:
                    cpu_effective = record.cpu_target
                rho = pe.processing_rate(cpu_effective)
                # records always carry a controller when uses_feedback.
                r_max = record.controller.update(pe.buffer.sample(now), rho)
                publish(record.pe_id, r_max, now)
            return allocations
        else:
            # Redistribution reacts to *observed* blocking (last interval):
            # the scheduler has no clairvoyant knowledge of which PEs will
            # sleep this interval, so a PE that blocks mid-interval wastes
            # the rest of its grant — the stop-start cost of Lock-Step.
            # A sleeping PE wakes when its downstream frees space (checked
            # at tick granularity, like the wake-up notification it would
            # receive), so one stop costs at least one interval.
            blocked = set()
            for record in records:
                pe = record.pe
                if not pe.blocked_last_interval:
                    continue
                gate = record.gate
                if gate is None or gate(pe):
                    pe.blocked_last_interval = False
                else:
                    blocked.add(record.pe_id)
            allocations = scheduler.allocate(dt, blocked=blocked)
            return allocations

    def _reoptimize_loop(self) -> _t.Generator:
        """Periodic Tier-1 refresh from measured input rates (Section V)."""
        interval = self.config.reoptimize_interval
        assert interval is not None
        last_generated = {
            source.stream_id: source.stats.generated
            for source in self.sources
        }
        while True:
            yield self.env.timeout(interval)
            measured_rates: _t.Dict[str, float] = {}
            for source in self.sources:
                generated = source.stats.generated
                delta = generated - last_generated[source.stream_id]
                last_generated[source.stream_id] = generated
                pe_id = source.stream_id.split(":", 1)[1]
                measured_rates[pe_id] = delta / interval
            try:
                result = self.tier1.solve(
                    self.topology.graph,
                    self.topology.placement,
                    measured_rates,
                    reason="reoptimize",
                )
            except Tier1Unavailable:
                # No targets ever computed (cannot happen after a normal
                # construction, which seeds last-known-good): keep serving
                # under the current targets.
                continue
            self.targets = result.targets
            for scheduler in self.schedulers:
                scheduler.update_targets(result.targets.cpu)
            self._refresh_cpu_targets()
            self.reoptimizations += 1

    def _emit(self, pe: PERuntime, sdo: SDO, completion: float) -> None:
        """Schedule delivery of an output SDO at its completion time.

        Completion times are interpolated inside the current control
        interval; delivering through a timed event (rather than touching
        the consumer's buffer immediately) keeps cross-node causality: the
        consumer sees the SDO only when the clock actually reaches the
        completion (plus any link-transfer) instant.  Deliveries landing
        at the same instant share one engine event (see
        :meth:`_enqueue_delivery`).
        """
        if pe.is_egress:
            self._enqueue_delivery(completion, None, pe, sdo)
            return
        links_get = self.links.get
        pe_id = pe.pe_id
        for consumer in pe.downstream:
            link = links_get((pe_id, consumer.pe_id))
            if link is None:
                arrival = completion
            else:
                arrival = link.transfer_completion(sdo, completion)
            self._enqueue_delivery(arrival, consumer, pe, sdo)

    def _enqueue_delivery(
        self,
        at: float,
        consumer: _t.Optional[PERuntime],
        pe: PERuntime,
        sdo: SDO,
    ) -> None:
        """Batch deliveries by exact arrival instant.

        PEs executing a control interval interpolate many completions onto
        the same timestamps, so keying a batch dict by the exact arrival
        float and scheduling one :meth:`Environment.call_at` flush per
        distinct instant replaces the per-SDO event/callback pair.  A
        ``None`` consumer means the SDO exits through the egress collector.
        """
        if at < self.env.now:
            at = self.env.now
        batches = self._delivery_batches
        batch = batches.get(at)
        if batch is None:
            batch = batches[at] = []
            self.env.call_at(at, self._flush_deliveries, value=at)
        batch.append((consumer, pe, sdo))

    def _flush_deliveries(self, event: _t.Any) -> None:
        """Deliver every SDO batched for this event's arrival instant."""
        batch = self._delivery_batches.pop(event._value)
        now = self.env.now
        profiler = self.profiler
        if profiler is not None:
            profiler.push("transport")
        try:
            collector_record = self.collector.record
            admit = self._admit
            for consumer, pe, sdo in batch:
                if consumer is None:
                    collector_record(pe.pe_id, sdo, now)
                else:
                    self._emit_attempts += 1
                    if not admit(consumer, sdo, now):
                        self._emit_drops += 1
        finally:
            if profiler is not None:
                profiler.pop()

    def _admit(self, runtime: PERuntime, sdo: SDO, now: float) -> bool:
        """Offer an SDO to a PE's buffer, via the policy's shed filter."""
        admission = self.admission_filters[runtime.pe_id]
        if admission is not None and not admission(runtime, sdo):
            self._shed_drops += 1
            if self.recorder.enabled:
                self.recorder.emit(
                    "drop",
                    pe=runtime.pe_id,
                    cause="shed",
                    occupancy=runtime.buffer.occupancy,
                    capacity=runtime.buffer.capacity,
                )
            return False
        return runtime.ingest(sdo, now)

    # -- measurement ---------------------------------------------------------

    def _snapshot(self, now: float) -> _Snapshot:
        for runtime in self.runtimes.values():
            runtime.buffer.sample(now)
        return _Snapshot(
            buffer_drops=sum(
                r.buffer.telemetry.dropped for r in self.runtimes.values()
            ),
            source_generated=sum(s.stats.generated for s in self.sources),
            source_rejected=sum(s.stats.rejected for s in self.sources),
            cpu_used=sum(
                r.counters.cpu_used for r in self.runtimes.values()
            ),
            emit_attempts=self._emit_attempts,
            emit_drops=self._emit_drops,
            shed_drops=self._shed_drops,
            occupancy_integrals={
                pe_id: r.buffer.telemetry.occupancy_integral
                for pe_id, r in self.runtimes.items()
            },
        )

    def run(self, duration: float) -> MetricsReport:
        """Warm up, then simulate ``duration`` seconds and report metrics."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        config = self.config
        if config.warmup > 0:
            self.env.run(until=config.warmup)
        self.collector.reset(self.env.now)
        start = self._snapshot(self.env.now)

        self.env.run(until=self.env.now + duration)
        end = self._snapshot(self.env.now)

        occupancy_means = []
        for pe_id in self.runtimes:
            delta = (
                end.occupancy_integrals[pe_id]
                - start.occupancy_integrals[pe_id]
            )
            occupancy_means.append(delta / duration)

        emit_attempts = end.emit_attempts - start.emit_attempts
        emit_drops = end.emit_drops - start.emit_drops
        generated = end.source_generated - start.source_generated
        rejected = end.source_rejected - start.source_rejected

        return MetricsReport(
            policy=self.policy.name,
            duration=duration,
            weighted_throughput=self.collector.weighted_throughput(
                self.env.now
            ),
            total_output_sdos=self.collector.total_output(),
            latency=self.collector.latency_summary(),
            buffer_drops=(
                (end.buffer_drops - start.buffer_drops)
                + (end.shed_drops - start.shed_drops)
            ),
            source_rejections=rejected,
            source_generated=generated,
            mean_buffer_occupancy=(
                sum(occupancy_means) / len(occupancy_means)
                if occupancy_means
                else 0.0
            ),
            egress_detail={
                pe_id: (rec.weight, rec.count, rec.latency.mean)
                for pe_id, rec in self.collector.records().items()
            },
            cpu_utilization=(
                (end.cpu_used - start.cpu_used)
                / (duration * len(self.nodes))
            ),
            wasted_work_fraction=(
                emit_drops / emit_attempts if emit_attempts else 0.0
            ),
            weighted_utility=self.collector.weighted_utility(
                self.env.now, LogUtility()
            ),
        )


def run_system(
    topology: Topology,
    policy: Policy,
    duration: float = 30.0,
    targets: _t.Optional[AllocationTargets] = None,
    config: _t.Optional[SystemConfig] = None,
    recorder: _t.Optional[TraceRecorder] = None,
    profiler: _t.Optional[PhaseProfiler] = None,
    gauge_cadence: _t.Optional[float] = None,
) -> MetricsReport:
    """Build and run one simulated system; the one-call experiment API."""
    system = SimulatedSystem(
        topology,
        policy,
        targets=targets,
        config=config,
        recorder=recorder,
        profiler=profiler,
        gauge_cadence=gauge_cadence,
    )
    return system.run(duration)
