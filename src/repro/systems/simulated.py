"""The simulated distributed stream processing system (composition root).

This module is now a thin facade: construction lives in
:mod:`repro.systems.build`, SDO movement in
:mod:`repro.systems.dataplane`, and the entire Tier-2 control step —
feedback aggregation (Eq. 8), CPU allocation (Section V-D), the LQR
flow-control update with upstream ``r_max`` publication (Eq. 7) — in the
substrate-agnostic :mod:`repro.control` package.
:class:`SimulatedSystem` wires the three together:

* every ingress PE is fed by a workload source (bursty on/off by default);
* every processing node runs an independent periodic control loop at an
  unsynchronized phase offset (the paper stresses the algorithm needs no
  inter-node synchronization, Section V-E), pumping one shared
  :class:`~repro.control.node.NodeController` per node;
* SDOs leaving through egress PEs land in the metrics collector.

Use :func:`run_system` for the one-call experiment entry point.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.control import ControlPlane, NodeGroup, resolve_initial_targets
from repro.control.admission import AdmissionController
from repro.control.node import NodeController
from repro.core.policies import Policy
from repro.core.resilience import ResilientTier1
from repro.core.targets import AllocationTargets
from repro.core.utility import LogUtility
from repro.graph.topology import Topology
from repro.metrics.collectors import MetricsReport
from repro.obs.profiler import PhaseProfiler
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.systems.build import (
    SystemConfig,
    build_gauges,
    build_links,
    build_nodes,
    build_runtimes,
    build_sources,
)
from repro.systems.dataplane import SimAdapter, SimDataPlane

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracker

__all__ = ["SimulatedSystem", "SystemConfig", "run_system"]


@dataclass
class _Snapshot:
    """Cumulative counters captured at the start of the measured window."""

    buffer_drops: int = 0
    buffer_flushed: int = 0
    source_generated: int = 0
    source_rejected: int = 0
    cpu_used: float = 0.0
    emit_attempts: int = 0
    emit_drops: int = 0
    shed_drops: int = 0
    admission_shed: int = 0
    admission_rejected: int = 0
    occupancy_integrals: _t.Dict[str, float] = field(default_factory=dict)


class SimulatedSystem:
    """One policy running on one topology inside the simulation kernel."""

    def __init__(
        self,
        topology: Topology,
        policy: Policy,
        targets: _t.Optional[AllocationTargets] = None,
        config: _t.Optional[SystemConfig] = None,
        recorder: _t.Optional[TraceRecorder] = None,
        profiler: _t.Optional[PhaseProfiler] = None,
        gauge_cadence: _t.Optional[float] = None,
        spans: _t.Optional["SpanTracker"] = None,
    ):
        self.topology = topology
        self.policy = policy
        self.config = config or SystemConfig()
        self.env = Environment()
        self.streams = RandomStreams(seed=self.config.seed)

        #: Trace bus every instrumented component publishes to; the null
        #: default keeps all hot paths on their single-branch fast path.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if self.recorder.enabled:
            self.recorder.bind_clock(lambda: self.env.now)
        self.profiler = profiler
        self.env.profiler = profiler
        #: Armed latency-span tracker (None keeps every hop disarmed).
        self.spans = spans

        #: Degradation-guarded Tier-1 solver: retries, validates, and
        #: falls back to last-known-good targets when a re-solve fails
        #: (fault injection hooks into it via ``inject_failure``).
        self.tier1 = ResilientTier1(recorder=self.recorder)
        targets = resolve_initial_targets(self.tier1, topology, targets)

        self.runtimes, self.collector = build_runtimes(
            topology, self.config, self.streams, self.recorder, spans=spans
        )
        self.nodes = build_nodes(topology, self.runtimes)
        self.links = build_links(topology, self.config)
        if spans is not None:
            for link in self.links.values():
                link.spans = spans

        config = self.config
        delay = (
            config.dt if config.feedback_delay is None
            else config.feedback_delay
        )
        #: SLO-aware admission front end (None unless configured).  Built
        #: before the plane so the plane owns its tick; bound to the
        #: ingress buffers and the live egress histogram records below.
        self.admission: _t.Optional[AdmissionController] = None
        if config.admission is not None:
            self.admission = AdmissionController(config.admission)
            self.admission.bind(
                ingress={
                    pe_id: runtime.buffer
                    for pe_id, runtime in self.runtimes.items()
                    if runtime.is_ingress
                },
                egress=self.collector.records(),
                clock=lambda: self.env.now,
            )

        self.adapter = SimAdapter(self.env, self.recorder, self.profiler)
        self.plane = ControlPlane(
            policy,
            self.adapter,
            groups=[
                NodeGroup(node.node_id, node.pes, node.cpu_capacity)
                for node in self.nodes
            ],
            targets=targets,
            dt=config.dt,
            b0=config.b0_fraction * config.buffer_size,
            feedback_delay=delay,
            feedback_staleness_ttl=config.feedback_staleness_ttl,
            feedback_stale_bound=config.feedback_stale_bound,
            recorder=self.recorder,
            tier1=self.tier1,
            profiler=self.profiler,
            control_impl=config.control_impl,
            admission=self.admission,
        )
        if (
            config.control_phase_buckets is not None
            and self.plane.uses_feedback
            and delay == 0.0
        ):
            raise ValueError(
                "control_phase_buckets requires a nonzero feedback "
                "delay under feedback policies: nodes ticking at the "
                "same instant would otherwise see each other's "
                "same-tick publications, which per-node staggered "
                "loops never do"
            )
        self.dataplane = SimDataPlane(
            self.env,
            self.links,
            self.collector,
            self.plane.admission_filters,
            self.recorder,
            self.profiler,
            spans=spans,
        )
        self.adapter.bind(self.dataplane)

        self.sources = build_sources(
            self.env, topology, config, self.streams, self.runtimes,
            self.dataplane.admit, admission=self.admission,
        )
        self.gauges = build_gauges(
            self.env, gauge_cadence, self.recorder, self.runtimes, self.plane,
            collector=self.collector,
        )
        self._start_node_loops()
        if self.admission is not None:
            self.env.process(self._admission_loop())

        if config.reoptimize_interval is not None:
            self.env.process(self._reoptimize_loop())

    # -- control-plane delegation (stable operational surface) ---------------

    @property
    def targets(self) -> AllocationTargets:
        """Tier-1 allocation targets currently in effect."""
        return self.plane.targets

    @property
    def bus(self) -> _t.Any:
        """The feedback bus (swappable: fault injection wraps it)."""
        return self.plane.bus

    @bus.setter
    def bus(self, value: _t.Any) -> None:
        self.plane.bus = value

    @property
    def schedulers(self) -> _t.List[_t.Any]:
        return self.plane.schedulers

    @property
    def controllers(self) -> _t.Dict[str, _t.Any]:
        return self.plane.controllers

    @property
    def gates(self) -> _t.Dict[str, _t.Any]:
        return self.plane.gates

    @property
    def admission_filters(self) -> _t.Dict[str, _t.Any]:
        return self.plane.admission_filters

    @property
    def reoptimizations(self) -> int:
        """Number of Tier-1 refreshes adopted during the run."""
        return self.plane.reoptimizations

    @property
    def _node_paused(self) -> _t.List[bool]:
        return self.plane.paused

    @property
    def _delivery_batches(self) -> _t.Dict[float, _t.List]:
        return self.dataplane.delivery_batches

    def set_gate(
        self,
        pe_id: str,
        gate: _t.Optional[_t.Callable[..., bool]],
    ) -> None:
        """Replace a PE's processing gate at runtime.

        Deprecated alias for ``system.plane.set_gate`` kept for the chaos
        harness and operational tooling; forwards unchanged.
        """
        self.plane.set_gate(pe_id, gate)

    def suspend_node(self, node_index: int) -> None:
        """Deprecated alias for ``system.plane.suspend_node``."""
        self.plane.suspend_node(node_index)

    def resume_node(self, node_index: int) -> None:
        """Deprecated alias for ``system.plane.resume_node``."""
        self.plane.resume_node(node_index)

    # -- control loop --------------------------------------------------------

    def _start_node_loops(self) -> None:
        num_nodes = len(self.nodes)
        buckets = self.config.control_phase_buckets
        if buckets is not None and num_nodes > 0:
            count = min(buckets, num_nodes)
            for bucket in range(count):
                start = (bucket * num_nodes) // count
                stop = ((bucket + 1) * num_nodes) // count
                if start == stop:
                    continue
                self.env.process(
                    self._bucket_loop(bucket, count, list(range(start, stop)))
                )
            return
        for index, controller in enumerate(self.plane.node_controllers):
            offset = (index + 1) / (num_nodes + 1) * self.config.dt
            self.env.process(self._node_loop(controller, offset, index))

    def _bucket_loop(
        self, bucket: int, count: int, node_indices: _t.List[int]
    ) -> _t.Generator:
        # Phase buckets: contiguous node runs share one tick instant
        # (decide-all-then-apply-all inside the plane), with the same
        # staggered-offset idea as per-node loops but between buckets.
        env = self.env
        dt = self.config.dt
        tick_nodes = self.plane.tick_nodes
        offset = (bucket + 1) / (count + 1) * dt
        yield env.timeout(offset)
        while True:
            tick_nodes(node_indices, env.now)
            yield env.timeout(dt)

    def _node_loop(
        self,
        controller: NodeController,
        offset: float,
        node_index: int,
    ) -> _t.Generator:
        # Unsynchronized phase offsets: no global tick (Section V-E).
        env = self.env
        dt = self.config.dt
        tick = controller.tick
        paused = self.plane.paused
        yield env.timeout(offset)
        while True:
            if not paused[node_index]:
                tick(env.now)
            yield env.timeout(dt)

    def _admission_loop(self) -> _t.Generator:
        """Tick the admission front end once per control interval.

        The tick interval follows the admission config when set, else
        the plane's control ``dt`` — the same cadence every node
        controller runs at.  The first tick lands one full interval in
        (histograms are empty at t=0, so an immediate tick is noise).
        """
        assert self.admission is not None
        interval = self.admission.config.tick_interval or self.config.dt
        env = self.env
        tick = self.plane.tick_admission
        while True:
            yield env.timeout(interval)
            tick(env.now)

    def _reoptimize_loop(self) -> _t.Generator:
        """Periodic Tier-1 refresh from measured input rates (Section V)."""
        interval = self.config.reoptimize_interval
        assert interval is not None
        last_generated = {
            source.stream_id: source.stats.generated
            for source in self.sources
        }
        while True:
            yield self.env.timeout(interval)
            measured_rates: _t.Dict[str, float] = {}
            for source in self.sources:
                generated = source.stats.generated
                delta = generated - last_generated[source.stream_id]
                last_generated[source.stream_id] = generated
                pe_id = source.stream_id.split(":", 1)[1]
                measured_rates[pe_id] = delta / interval
            self.plane.reoptimize(
                self.topology.graph,
                self.topology.placement,
                measured_rates,
                reason="reoptimize",
            )

    # -- measurement ---------------------------------------------------------

    def _snapshot(self, now: float) -> _Snapshot:
        for runtime in self.runtimes.values():
            runtime.buffer.sample(now)
        dataplane = self.dataplane
        admission = self.admission
        return _Snapshot(
            buffer_drops=sum(
                r.buffer.telemetry.dropped for r in self.runtimes.values()
            ),
            buffer_flushed=sum(
                r.buffer.telemetry.flushed for r in self.runtimes.values()
            ),
            source_generated=sum(s.stats.generated for s in self.sources),
            source_rejected=sum(s.stats.rejected for s in self.sources),
            cpu_used=sum(
                r.counters.cpu_used for r in self.runtimes.values()
            ),
            emit_attempts=dataplane.emit_attempts,
            emit_drops=dataplane.emit_drops,
            shed_drops=dataplane.shed_drops,
            admission_shed=(
                admission.total_shed if admission is not None else 0
            ),
            admission_rejected=(
                admission.total_rejected if admission is not None else 0
            ),
            occupancy_integrals={
                pe_id: r.buffer.telemetry.occupancy_integral
                for pe_id, r in self.runtimes.items()
            },
        )

    def run(self, duration: float) -> MetricsReport:
        """Warm up, then simulate ``duration`` seconds and report metrics."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        config = self.config
        if config.warmup > 0:
            self.env.run(until=config.warmup)
        self.collector.reset(self.env.now)
        if self.spans is not None:
            self.spans.reset()
        start = self._snapshot(self.env.now)

        self.env.run(until=self.env.now + duration)
        end = self._snapshot(self.env.now)

        occupancy_means = []
        for pe_id in self.runtimes:
            delta = (
                end.occupancy_integrals[pe_id]
                - start.occupancy_integrals[pe_id]
            )
            occupancy_means.append(delta / duration)

        emit_attempts = end.emit_attempts - start.emit_attempts
        emit_drops = end.emit_drops - start.emit_drops
        generated = end.source_generated - start.source_generated
        rejected = end.source_rejected - start.source_rejected

        # Windowed per-kind drop breakdown.  The invariant the ledger
        # and tests rely on: the buffer_drops aggregate equals exactly
        # buffer_overflow + flushed + shed; admission refusals happen
        # before any buffer and are broken out separately (they are a
        # subset of source_rejections).
        dropped = end.buffer_drops - start.buffer_drops
        flushed = end.buffer_flushed - start.buffer_flushed
        drops_by_kind = {
            "buffer_overflow": dropped - flushed,
            "flushed": flushed,
            "shed": end.shed_drops - start.shed_drops,
            "admission_shed": end.admission_shed - start.admission_shed,
            "admission_rejected": (
                end.admission_rejected - start.admission_rejected
            ),
        }

        return MetricsReport(
            policy=self.policy.name,
            duration=duration,
            weighted_throughput=self.collector.weighted_throughput(
                self.env.now
            ),
            total_output_sdos=self.collector.total_output(),
            latency=self.collector.latency_summary(),
            buffer_drops=(
                drops_by_kind["buffer_overflow"]
                + drops_by_kind["flushed"]
                + drops_by_kind["shed"]
            ),
            drops_by_kind=drops_by_kind,
            source_rejections=rejected,
            source_generated=generated,
            mean_buffer_occupancy=(
                sum(occupancy_means) / len(occupancy_means)
                if occupancy_means
                else 0.0
            ),
            egress_detail={
                pe_id: (rec.weight, rec.count, rec.latency.mean)
                for pe_id, rec in self.collector.records().items()
            },
            cpu_utilization=(
                (end.cpu_used - start.cpu_used)
                / (duration * len(self.nodes))
            ),
            wasted_work_fraction=(
                emit_drops / emit_attempts if emit_attempts else 0.0
            ),
            weighted_utility=self.collector.weighted_utility(
                self.env.now, LogUtility()
            ),
            latency_percentiles=self.collector.latency_percentiles(),
        )


def run_system(
    topology: Topology,
    policy: Policy,
    duration: float = 30.0,
    targets: _t.Optional[AllocationTargets] = None,
    config: _t.Optional[SystemConfig] = None,
    recorder: _t.Optional[TraceRecorder] = None,
    profiler: _t.Optional[PhaseProfiler] = None,
    gauge_cadence: _t.Optional[float] = None,
    spans: _t.Optional["SpanTracker"] = None,
) -> MetricsReport:
    """Build and run one simulated system; the one-call experiment API."""
    system = SimulatedSystem(
        topology,
        policy,
        targets=targets,
        config=config,
        recorder=recorder,
        profiler=profiler,
        gauge_cadence=gauge_cadence,
        spans=spans,
    )
    return system.run(duration)
