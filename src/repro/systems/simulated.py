"""The simulated distributed stream processing system (composition root).

This module is now a thin facade: construction lives in
:mod:`repro.systems.build`, SDO movement in
:mod:`repro.systems.dataplane`, and the entire Tier-2 control step —
feedback aggregation (Eq. 8), CPU allocation (Section V-D), the LQR
flow-control update with upstream ``r_max`` publication (Eq. 7) — in the
substrate-agnostic :mod:`repro.control` package.
:class:`SimulatedSystem` wires the three together:

* every ingress PE is fed by a workload source (bursty on/off by default);
* every processing node runs an independent periodic control loop at an
  unsynchronized phase offset (the paper stresses the algorithm needs no
  inter-node synchronization, Section V-E), pumping one shared
  :class:`~repro.control.node.NodeController` per node;
* SDOs leaving through egress PEs land in the metrics collector.

Use :func:`run_system` for the one-call experiment entry point.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.control import ControlPlane, NodeGroup, resolve_initial_targets
from repro.control.admission import AdmissionController
from repro.control.elastic import (
    MigrationRecord,
    PlacementBook,
    PlacementVersion,
    ScalingPolicy,
    plan_scale_in_placement,
    plan_scale_out_placement,
)
from repro.control.forecast import ForecastController
from repro.control.node import NodeController
from repro.core.policies import Policy
from repro.core.resilience import ResilientTier1
from repro.core.targets import AllocationTargets
from repro.core.utility import LogUtility
from repro.graph.placement_opt import optimize_placement
from repro.graph.topology import Topology
from repro.metrics.collectors import MetricsReport
from repro.model.links import Link
from repro.model.node import ProcessingNode
from repro.obs.profiler import PhaseProfiler
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.systems.build import (
    SystemConfig,
    build_gauges,
    build_links,
    build_nodes,
    build_runtimes,
    build_sources,
)
from repro.systems.dataplane import SimAdapter, SimDataPlane

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracker

__all__ = ["SimulatedSystem", "SystemConfig", "run_system"]


@dataclass
class _Snapshot:
    """Cumulative counters captured at the start of the measured window."""

    buffer_drops: int = 0
    buffer_flushed: int = 0
    source_generated: int = 0
    source_rejected: int = 0
    cpu_used: float = 0.0
    emit_attempts: int = 0
    emit_drops: int = 0
    shed_drops: int = 0
    admission_shed: int = 0
    admission_rejected: int = 0
    occupancy_integrals: _t.Dict[str, float] = field(default_factory=dict)


class SimulatedSystem:
    """One policy running on one topology inside the simulation kernel."""

    def __init__(
        self,
        topology: Topology,
        policy: Policy,
        targets: _t.Optional[AllocationTargets] = None,
        config: _t.Optional[SystemConfig] = None,
        recorder: _t.Optional[TraceRecorder] = None,
        profiler: _t.Optional[PhaseProfiler] = None,
        gauge_cadence: _t.Optional[float] = None,
        spans: _t.Optional["SpanTracker"] = None,
    ):
        self.topology = topology
        self.policy = policy
        self.config = config or SystemConfig()
        self.env = Environment()
        self.streams = RandomStreams(seed=self.config.seed)

        #: Trace bus every instrumented component publishes to; the null
        #: default keeps all hot paths on their single-branch fast path.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if self.recorder.enabled:
            self.recorder.bind_clock(lambda: self.env.now)
        self.profiler = profiler
        self.env.profiler = profiler
        #: Armed latency-span tracker (None keeps every hop disarmed).
        self.spans = spans

        #: Degradation-guarded Tier-1 solver: retries, validates, and
        #: falls back to last-known-good targets when a re-solve fails
        #: (fault injection hooks into it via ``inject_failure``).
        self.tier1 = ResilientTier1(recorder=self.recorder)
        targets = resolve_initial_targets(self.tier1, topology, targets)

        self.runtimes, self.collector = build_runtimes(
            topology, self.config, self.streams, self.recorder, spans=spans
        )
        self.nodes = build_nodes(topology, self.runtimes)
        self.links = build_links(topology, self.config)
        if spans is not None:
            for link in self.links.values():
                link.spans = spans

        config = self.config
        delay = (
            config.dt if config.feedback_delay is None
            else config.feedback_delay
        )
        #: SLO-aware admission front end (None unless configured).  Built
        #: before the plane so the plane owns its tick; bound to the
        #: ingress buffers and the live egress histogram records below.
        self.admission: _t.Optional[AdmissionController] = None
        if config.admission is not None:
            self.admission = AdmissionController(config.admission)
            self.admission.bind(
                ingress={
                    pe_id: runtime.buffer
                    for pe_id, runtime in self.runtimes.items()
                    if runtime.is_ingress
                },
                egress=self.collector.records(),
                clock=lambda: self.env.now,
            )

        #: Forecasting tier (None unless configured).  Built before the
        #: plane so the plane owns its tick; bound to the source
        #: counters (which exist only after ``build_sources``) below.
        self.forecast: _t.Optional[ForecastController] = None
        if config.forecast is not None:
            self.forecast = ForecastController(config.forecast)

        self.adapter = SimAdapter(self.env, self.recorder, self.profiler)
        self.plane = ControlPlane(
            policy,
            self.adapter,
            groups=[
                NodeGroup(node.node_id, node.pes, node.cpu_capacity)
                for node in self.nodes
            ],
            targets=targets,
            dt=config.dt,
            b0=config.b0_fraction * config.buffer_size,
            feedback_delay=delay,
            feedback_staleness_ttl=config.feedback_staleness_ttl,
            feedback_stale_bound=config.feedback_stale_bound,
            recorder=self.recorder,
            tier1=self.tier1,
            profiler=self.profiler,
            control_impl=config.control_impl,
            admission=self.admission,
            forecast=self.forecast,
        )
        if (
            config.control_phase_buckets is not None
            and self.plane.uses_feedback
            and delay == 0.0
        ):
            raise ValueError(
                "control_phase_buckets requires a nonzero feedback "
                "delay under feedback policies: nodes ticking at the "
                "same instant would otherwise see each other's "
                "same-tick publications, which per-node staggered "
                "loops never do"
            )
        self.dataplane = SimDataPlane(
            self.env,
            self.links,
            self.collector,
            self.plane.admission_filters,
            self.recorder,
            self.profiler,
            spans=spans,
        )
        self.adapter.bind(self.dataplane)

        self.sources = build_sources(
            self.env, topology, config, self.streams, self.runtimes,
            self.dataplane.admit, admission=self.admission,
        )
        self.gauges = build_gauges(
            self.env, gauge_cadence, self.recorder, self.runtimes, self.plane,
            collector=self.collector,
        )

        #: Versioned placement spine.  Epoch 0 mirrors the topology's
        #: initial placement (same content and key order); the elastic
        #: tier appends epochs, and every placement consumer reads
        #: ``placement_book.placement`` instead of the frozen dict.
        self.placement_book = PlacementBook(
            dict(topology.placement), topology.num_nodes
        )
        self.elasticity = config.elasticity
        self.scaling_policy: _t.Optional[ScalingPolicy] = (
            ScalingPolicy(config.elasticity)
            if config.elasticity is not None
            else None
        )
        #: Next join gets node-<ordinal>; ordinals are never reused so
        #: node identity stays unique across join/leave churn.
        self._node_ordinal = topology.num_nodes
        #: (t, num_nodes) step function for node-seconds accounting.
        self._membership_timeline: _t.List[_t.Tuple[float, int]] = [
            (0.0, len(self.nodes))
        ]
        #: One record per live PE migration (route + observed downtime).
        self.migration_log: _t.List[MigrationRecord] = []

        if self.forecast is not None:
            # Source-rate probes: each source's cumulative generated
            # counter, keyed by its ingress pe_id.  The baseline is the
            # provisioned load Tier-1 bootstrapped against.
            self.forecast.bind(
                counters={
                    source.stream_id.split(":", 1)[1]: (
                        lambda s=source: s.stats.generated
                    )
                    for source in self.sources
                },
                baseline=dict(topology.source_rates),
                reoptimize_fn=self._proactive_reoptimize,
                scale_out_fn=self._proactive_scale_out,
                active_after=config.warmup,
            )

        self._start_node_loops()
        if self.admission is not None:
            self.env.process(self._admission_loop())
        if self.forecast is not None:
            self.env.process(self._forecast_loop())

        if config.reoptimize_interval is not None:
            self.env.process(self._reoptimize_loop())

    # -- control-plane delegation (stable operational surface) ---------------

    @property
    def targets(self) -> AllocationTargets:
        """Tier-1 allocation targets currently in effect."""
        return self.plane.targets

    @property
    def bus(self) -> _t.Any:
        """The feedback bus (swappable: fault injection wraps it)."""
        return self.plane.bus

    @bus.setter
    def bus(self, value: _t.Any) -> None:
        self.plane.bus = value

    @property
    def schedulers(self) -> _t.List[_t.Any]:
        return self.plane.schedulers

    @property
    def controllers(self) -> _t.Dict[str, _t.Any]:
        return self.plane.controllers

    @property
    def gates(self) -> _t.Dict[str, _t.Any]:
        return self.plane.gates

    @property
    def admission_filters(self) -> _t.Dict[str, _t.Any]:
        return self.plane.admission_filters

    @property
    def reoptimizations(self) -> int:
        """Number of Tier-1 refreshes adopted during the run."""
        return self.plane.reoptimizations

    @property
    def _node_paused(self) -> _t.List[bool]:
        return self.plane.paused

    @property
    def _delivery_batches(self) -> _t.Dict[float, _t.List]:
        return self.dataplane.delivery_batches

    def set_gate(
        self,
        pe_id: str,
        gate: _t.Optional[_t.Callable[..., bool]],
    ) -> None:
        """Replace a PE's processing gate at runtime.

        Deprecated alias for ``system.plane.set_gate`` kept for the chaos
        harness and operational tooling; forwards unchanged.
        """
        self.plane.set_gate(pe_id, gate)

    def suspend_node(self, node_index: int) -> None:
        """Deprecated alias for ``system.plane.suspend_node``."""
        self.plane.suspend_node(node_index)

    def resume_node(self, node_index: int) -> None:
        """Deprecated alias for ``system.plane.resume_node``."""
        self.plane.resume_node(node_index)

    # -- control loop --------------------------------------------------------

    def _start_node_loops(self) -> None:
        num_nodes = len(self.nodes)
        if self.elasticity is not None:
            # Elastic runs key every loop by node_id (indices shift when
            # membership changes); a loop returns when its node leaves.
            for index, node in enumerate(self.nodes):
                offset = (index + 1) / (num_nodes + 1) * self.config.dt
                self.env.process(
                    self._elastic_node_loop(node.node_id, offset)
                )
            self.env.process(self._elastic_loop())
            return
        buckets = self.config.control_phase_buckets
        if buckets is not None and num_nodes > 0:
            count = min(buckets, num_nodes)
            for bucket in range(count):
                start = (bucket * num_nodes) // count
                stop = ((bucket + 1) * num_nodes) // count
                if start == stop:
                    continue
                self.env.process(
                    self._bucket_loop(bucket, count, list(range(start, stop)))
                )
            return
        for index, controller in enumerate(self.plane.node_controllers):
            offset = (index + 1) / (num_nodes + 1) * self.config.dt
            self.env.process(self._node_loop(controller, offset, index))

    def _bucket_loop(
        self, bucket: int, count: int, node_indices: _t.List[int]
    ) -> _t.Generator:
        # Phase buckets: contiguous node runs share one tick instant
        # (decide-all-then-apply-all inside the plane), with the same
        # staggered-offset idea as per-node loops but between buckets.
        env = self.env
        dt = self.config.dt
        tick_nodes = self.plane.tick_nodes
        offset = (bucket + 1) / (count + 1) * dt
        yield env.timeout(offset)
        while True:
            tick_nodes(node_indices, env.now)
            yield env.timeout(dt)

    def _node_loop(
        self,
        controller: NodeController,
        offset: float,
        node_index: int,
    ) -> _t.Generator:
        # Unsynchronized phase offsets: no global tick (Section V-E).
        env = self.env
        dt = self.config.dt
        tick = controller.tick
        paused = self.plane.paused
        yield env.timeout(offset)
        while True:
            if not paused[node_index]:
                tick(env.now)
            yield env.timeout(dt)

    # -- elasticity (Tier 3) -------------------------------------------------

    def _node_index(self, node_id: str) -> _t.Optional[int]:
        """Current index of ``node_id`` in the plane, or None when gone."""
        for index, group in enumerate(self.plane.groups):
            if group.node_id == node_id:
                return index
        return None

    def _elastic_node_loop(self, node_id: str, offset: float) -> _t.Generator:
        # Identity-keyed variant of _node_loop: membership changes shift
        # node indices and rebuild the controller list, so both are
        # resolved fresh each tick.  Returns when the node leaves.
        env = self.env
        dt = self.config.dt
        plane = self.plane
        yield env.timeout(offset)
        while True:
            index = self._node_index(node_id)
            if index is None:
                return
            if not plane.paused[index]:
                plane.node_controllers[index].tick(env.now)
            yield env.timeout(dt)

    def _elastic_loop(self) -> _t.Generator:
        """Tier-3 cadence: observe pressure, act on the policy's decision."""
        assert self.elasticity is not None and self.scaling_policy is not None
        env = self.env
        interval = self.elasticity.check_interval
        while True:
            yield env.timeout(interval)
            if env.now < self.config.warmup:
                # Cold buffers read as slack; scaling decisions start
                # with the measured window.
                continue
            hot, slack = self._pressure()
            decision = self.scaling_policy.observe(
                hot, env.now, len(self.nodes), slack_pressure=slack
            )
            if decision == "scale_out":
                self._scale_out()
            elif decision == "scale_in":
                self._scale_in()

    def _pressure(self) -> _t.Tuple[float, float]:
        """(hot-spot, slack) scaling signals, both normalized to [0, 1].

        Hot-spot is the max over nodes of mean resident buffer fill and
        drives scale-out; slack is the mean over *all* nodes — empty
        nodes count as zero fill, they are reclaimable capacity — and
        drives scale-in.
        """
        worst = 0.0
        total = 0.0
        groups = self.plane.groups
        for group in groups:
            if not group.pes:
                continue
            fill = sum(
                pe.buffer.occupancy / pe.buffer.capacity for pe in group.pes
            ) / len(group.pes)
            if fill > worst:
                worst = fill
            total += fill
        return worst, (total / len(groups) if groups else 0.0)

    def add_node(self, cpu_capacity: float = 1.0) -> ProcessingNode:
        """Join a fresh empty node: substrate object, plane group, loop."""
        node_id = f"node-{self._node_ordinal}"
        self._node_ordinal += 1
        node = ProcessingNode(node_id=node_id, cpu_capacity=cpu_capacity)
        self.nodes.append(node)
        now = self.env.now
        # Hand the plane the node's own resident list so group surgery
        # moves PEs physically too (the constructor-path aliasing).
        index = self.plane.add_node(
            node_id, cpu_capacity, now=now, pes=node.pes
        )
        self._membership_timeline.append((now, len(self.nodes)))
        offset = (index + 1) / (index + 2) * self.config.dt
        self.env.process(self._elastic_node_loop(node_id, offset))
        return node

    def remove_node(self, node_index: int) -> str:
        """Leave: plane first (it refuses non-empty nodes), then substrate.

        The plane's emptiness check is the safety interlock — a node
        still hosting PEs (including a source's ingress PE) must have
        them migrated off first, so removal can never strand buffered
        work or orphan an ingress channel.
        """
        node_id = self.plane.remove_node(node_index, now=self.env.now)
        self.nodes.pop(node_index)
        self._membership_timeline.append((self.env.now, len(self.nodes)))
        return node_id

    def migrate_pes(
        self,
        moves: _t.Sequence[_t.Tuple[str, int]],
        reason: str = "migration",
    ) -> _t.Optional[PlacementVersion]:
        """Live-migrate PEs: drain -> buffer handoff -> re-wire -> resume.

        The whole set is applied at one instant and one epoch boundary:
        each PE's buffered SDOs are lifted out telemetry-neutrally
        (:meth:`~repro.model.buffers.InputBuffer.handoff`), the plane
        re-homes control state, inter-node links are re-wired to the new
        placement, and the SDOs are restored — conservation holds
        exactly across the handoff.  Returns the new placement version,
        or None when every move was a no-op.
        """
        now = self.env.now
        current = self.placement_book.placement
        actual: _t.List[_t.Tuple[str, int]] = []
        for pe_id, target in moves:
            if pe_id not in self.runtimes:
                raise KeyError(f"unknown PE {pe_id!r}")
            if not (0 <= target < len(self.nodes)):
                raise ValueError(
                    f"target node {target} outside [0, {len(self.nodes)})"
                )
            if current[pe_id] != target:
                actual.append((pe_id, target))
        if not actual:
            return None
        recording = self.recorder.enabled
        held: _t.Dict[str, _t.List] = {}
        watermarks: _t.Dict[str, int] = {}
        routes: _t.Dict[str, _t.Tuple[str, str]] = {}
        for pe_id, target in actual:
            runtime = self.runtimes[pe_id]
            from_id = self.plane.groups[current[pe_id]].node_id
            to_id = self.plane.groups[target].node_id
            routes[pe_id] = (from_id, to_id)
            if recording:
                self.recorder.emit(
                    "migration",
                    pe=pe_id,
                    node=from_id,
                    phase="drain",
                    to=to_id,
                    occupancy=runtime.buffer.occupancy,
                    in_progress_work=runtime._work_remaining,
                )
            held[pe_id] = runtime.buffer.handoff(now)
            watermarks[pe_id] = runtime.counters.consumed
        self.plane.migrate_pes(actual, now=now, reason=reason)
        placement = dict(current)
        for pe_id, target in actual:
            placement[pe_id] = target
        version = self.placement_book.advance(
            placement, len(self.nodes), reason
        )
        self._rewire_links()
        for pe_id, target in actual:
            runtime = self.runtimes[pe_id]
            runtime.buffer.restore(held[pe_id])
            from_id, to_id = routes[pe_id]
            record = MigrationRecord(
                pe_id=pe_id,
                t=now,
                from_node=from_id,
                to_node=to_id,
                epoch=version.epoch,
                handoff_occupancy=len(held[pe_id]),
            )
            self.migration_log.append(record)
            if recording:
                self.recorder.emit(
                    "migration",
                    pe=pe_id,
                    node=to_id,
                    phase="resume",
                    occupancy=runtime.buffer.occupancy,
                    epoch=version.epoch,
                )
            self.env.process(
                self._watch_downtime(record, watermarks[pe_id])
            )
        return version

    def _watch_downtime(
        self, record: MigrationRecord, watermark: int
    ) -> _t.Generator:
        # Downtime = time until the migrated PE consumes its next SDO
        # past the pre-migration watermark, polled at control cadence.
        env = self.env
        dt = self.config.dt
        counters = self.runtimes[record.pe_id].counters
        while counters.consumed <= watermark:
            yield env.timeout(dt)
        record.downtime = env.now - record.t

    def _rewire_links(self) -> None:
        """Re-derive inter-node links from the current placement epoch.

        Edges that became cross-node gain a fresh link; edges now
        co-located lose theirs (in-flight transfers already scheduled
        keep their delivery times — only future emits see the change).
        """
        bandwidth = self.config.link_bandwidth
        if bandwidth is None:
            return
        placement = self.placement_book.placement
        live: _t.Set[_t.Tuple[str, str]] = set()
        for src, dst in self.topology.graph.edges():
            if placement[src] == placement[dst]:
                continue
            live.add((src, dst))
            if (src, dst) not in self.links:
                link = Link(
                    name=f"{src}->{dst}",
                    bandwidth=bandwidth,
                    latency=self.config.link_latency,
                )
                if self.spans is not None:
                    link.spans = self.spans
                self.links[(src, dst)] = link
        for key in [k for k in self.links if k not in live]:
            del self.links[key]

    def _scale_out(self) -> None:
        """Join a node, re-solve placement, migrate a bounded move set."""
        assert self.elasticity is not None
        config = self.elasticity
        self.add_node()
        num_nodes = len(self.nodes)
        load = dict(self.plane.targets.cpu)
        seed = plan_scale_out_placement(
            self.placement_book.placement,
            num_nodes,
            load,
            config.max_migrations_per_epoch,
        )
        refined = optimize_placement(
            self.topology.graph,
            seed,
            self.topology.source_rates,
            num_nodes,
            max_evaluations=config.placement_evaluations,
        ).placement
        current = self.placement_book.placement
        moves = [
            (pe_id, refined[pe_id])
            for pe_id in current
            if refined[pe_id] != current[pe_id]
        ][: config.max_migrations_per_epoch]
        self.migrate_pes(moves, reason="scale_out")
        self.plane.reoptimize(
            self.topology.graph,
            self.placement_book.placement,
            self.topology.source_rates,
            reason="elastic",
        )

    def _scale_in(self) -> None:
        """Evacuate and remove the least-loaded evictable node."""
        assert self.elasticity is not None
        config = self.elasticity
        current = self.placement_book.placement
        num_nodes = len(self.nodes)
        load = dict(self.plane.targets.cpu)
        node_load = [0.0] * num_nodes
        node_count = [0] * num_nodes
        for pe_id, node in current.items():
            node_load[node] += load.get(pe_id, 0.0)
            node_count[node] += 1
        # Only nodes whose evacuation fits the per-epoch migration cap
        # are evictable; when none qualify the decision becomes a hold.
        candidates = [
            n
            for n in range(num_nodes)
            if node_count[n] <= config.max_migrations_per_epoch
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda n: (node_load[n], -n))
        renumbered = plan_scale_in_placement(
            current, num_nodes, victim, load
        )
        # plan_scale_in returns post-removal indices; the physical moves
        # happen before removal, so map targets back to current indices.
        moves = [
            (pe_id, post if post < victim else post + 1)
            for pe_id, post in renumbered.items()
            if current[pe_id] == victim
        ]
        self.migrate_pes(moves, reason="scale_in")
        self.remove_node(victim)
        self.placement_book.advance(
            renumbered, len(self.nodes), "scale_in"
        )
        self.plane.reoptimize(
            self.topology.graph,
            self.placement_book.placement,
            self.topology.source_rates,
            reason="elastic",
        )

    def _node_seconds(self, t0: float, t1: float) -> float:
        """Integrate the membership step function over [t0, t1]."""
        timeline = self._membership_timeline
        total = 0.0
        for i, (t, count) in enumerate(timeline):
            seg_start = max(t, t0)
            seg_end = timeline[i + 1][0] if i + 1 < len(timeline) else t1
            seg_end = min(seg_end, t1)
            if seg_end > seg_start:
                total += (seg_end - seg_start) * count
        return total

    def _admission_loop(self) -> _t.Generator:
        """Tick the admission front end once per control interval.

        The tick interval follows the admission config when set, else
        the plane's control ``dt`` — the same cadence every node
        controller runs at.  The first tick lands one full interval in
        (histograms are empty at t=0, so an immediate tick is noise).
        """
        assert self.admission is not None
        interval = self.admission.config.tick_interval or self.config.dt
        env = self.env
        tick = self.plane.tick_admission
        while True:
            yield env.timeout(interval)
            tick(env.now)

    def _forecast_loop(self) -> _t.Generator:
        """Tick the forecasting tier at its sample cadence.

        The first tick lands one full interval in (rate extraction
        needs two counter readings; an immediate tick is noise).
        """
        assert self.forecast is not None
        interval = self.forecast.config.sample_interval
        env = self.env
        tick = self.plane.tick_forecast
        while True:
            yield env.timeout(interval)
            tick(env.now)

    def _proactive_reoptimize(
        self, rates: _t.Mapping[str, float]
    ) -> None:
        """Forecast-triggered Tier-1 re-solve from *predicted* rates."""
        self.plane.reoptimize(
            self.topology.graph,
            self.placement_book.placement,
            rates,
            reason="proactive",
        )

    def _proactive_scale_out(self, now: float) -> bool:
        """Forecast-triggered scale-out, routed through the elastic
        policy so the reactive and proactive tiers share one cooldown.
        Returns False when no elastic tier is armed or the request was
        vetoed (cooldown / node bounds)."""
        policy = self.scaling_policy
        if policy is None:
            return False
        if not policy.request_external(
            "scale_out", now, len(self.nodes)
        ):
            return False
        self._scale_out()
        return True

    def _reoptimize_loop(self) -> _t.Generator:
        """Periodic Tier-1 refresh from measured input rates (Section V)."""
        interval = self.config.reoptimize_interval
        assert interval is not None
        last_generated = {
            source.stream_id: source.stats.generated
            for source in self.sources
        }
        while True:
            yield self.env.timeout(interval)
            measured_rates: _t.Dict[str, float] = {}
            for source in self.sources:
                generated = source.stats.generated
                delta = generated - last_generated[source.stream_id]
                last_generated[source.stream_id] = generated
                pe_id = source.stream_id.split(":", 1)[1]
                measured_rates[pe_id] = delta / interval
            self.plane.reoptimize(
                self.topology.graph,
                self.placement_book.placement,
                measured_rates,
                reason="reoptimize",
            )

    # -- measurement ---------------------------------------------------------

    def _snapshot(self, now: float) -> _Snapshot:
        for runtime in self.runtimes.values():
            runtime.buffer.sample(now)
        dataplane = self.dataplane
        admission = self.admission
        return _Snapshot(
            buffer_drops=sum(
                r.buffer.telemetry.dropped for r in self.runtimes.values()
            ),
            buffer_flushed=sum(
                r.buffer.telemetry.flushed for r in self.runtimes.values()
            ),
            source_generated=sum(s.stats.generated for s in self.sources),
            source_rejected=sum(s.stats.rejected for s in self.sources),
            cpu_used=sum(
                r.counters.cpu_used for r in self.runtimes.values()
            ),
            emit_attempts=dataplane.emit_attempts,
            emit_drops=dataplane.emit_drops,
            shed_drops=dataplane.shed_drops,
            admission_shed=(
                admission.total_shed if admission is not None else 0
            ),
            admission_rejected=(
                admission.total_rejected if admission is not None else 0
            ),
            occupancy_integrals={
                pe_id: r.buffer.telemetry.occupancy_integral
                for pe_id, r in self.runtimes.items()
            },
        )

    def run(self, duration: float) -> MetricsReport:
        """Warm up, then simulate ``duration`` seconds and report metrics."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        config = self.config
        if config.warmup > 0:
            self.env.run(until=config.warmup)
        self.collector.reset(self.env.now)
        if self.spans is not None:
            self.spans.reset()
        measure_start = self.env.now
        start = self._snapshot(self.env.now)

        self.env.run(until=self.env.now + duration)
        end = self._snapshot(self.env.now)

        if self.elasticity is None:
            # The pre-elasticity expression, verbatim: membership is
            # frozen, so node-seconds is exactly duration * num_nodes.
            cpu_denominator = duration * len(self.nodes)
        else:
            cpu_denominator = self._node_seconds(
                measure_start, self.env.now
            )

        occupancy_means = []
        for pe_id in self.runtimes:
            delta = (
                end.occupancy_integrals[pe_id]
                - start.occupancy_integrals[pe_id]
            )
            occupancy_means.append(delta / duration)

        emit_attempts = end.emit_attempts - start.emit_attempts
        emit_drops = end.emit_drops - start.emit_drops
        generated = end.source_generated - start.source_generated
        rejected = end.source_rejected - start.source_rejected

        # Windowed per-kind drop breakdown.  The invariant the ledger
        # and tests rely on: the buffer_drops aggregate equals exactly
        # buffer_overflow + flushed + shed; admission refusals happen
        # before any buffer and are broken out separately (they are a
        # subset of source_rejections).
        dropped = end.buffer_drops - start.buffer_drops
        flushed = end.buffer_flushed - start.buffer_flushed
        drops_by_kind = {
            "buffer_overflow": dropped - flushed,
            "flushed": flushed,
            "shed": end.shed_drops - start.shed_drops,
            "admission_shed": end.admission_shed - start.admission_shed,
            "admission_rejected": (
                end.admission_rejected - start.admission_rejected
            ),
        }

        return MetricsReport(
            policy=self.policy.name,
            duration=duration,
            weighted_throughput=self.collector.weighted_throughput(
                self.env.now
            ),
            total_output_sdos=self.collector.total_output(),
            latency=self.collector.latency_summary(),
            buffer_drops=(
                drops_by_kind["buffer_overflow"]
                + drops_by_kind["flushed"]
                + drops_by_kind["shed"]
            ),
            drops_by_kind=drops_by_kind,
            source_rejections=rejected,
            source_generated=generated,
            mean_buffer_occupancy=(
                sum(occupancy_means) / len(occupancy_means)
                if occupancy_means
                else 0.0
            ),
            egress_detail={
                pe_id: (rec.weight, rec.count, rec.latency.mean)
                for pe_id, rec in self.collector.records().items()
            },
            cpu_utilization=(
                (end.cpu_used - start.cpu_used) / cpu_denominator
                if cpu_denominator
                else 0.0
            ),
            wasted_work_fraction=(
                emit_drops / emit_attempts if emit_attempts else 0.0
            ),
            weighted_utility=self.collector.weighted_utility(
                self.env.now, LogUtility()
            ),
            latency_percentiles=self.collector.latency_percentiles(),
        )


def run_system(
    topology: Topology,
    policy: Policy,
    duration: float = 30.0,
    targets: _t.Optional[AllocationTargets] = None,
    config: _t.Optional[SystemConfig] = None,
    recorder: _t.Optional[TraceRecorder] = None,
    profiler: _t.Optional[PhaseProfiler] = None,
    gauge_cadence: _t.Optional[float] = None,
    spans: _t.Optional["SpanTracker"] = None,
) -> MetricsReport:
    """Build and run one simulated system; the one-call experiment API."""
    system = SimulatedSystem(
        topology,
        policy,
        targets=targets,
        config=config,
        recorder=recorder,
        profiler=profiler,
        gauge_cadence=gauge_cadence,
        spans=spans,
    )
    return system.run(duration)
