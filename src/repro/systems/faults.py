"""Fault and disturbance injection for simulated and threaded systems.

The paper evaluates robustness to *allocation errors*
(:func:`repro.core.targets.perturb_targets`); this module extends the
reproduction with the runtime disturbances an operator of an extreme-scale
system actually sees, so the controller's self-stabilization claim can be
exercised end to end.

Data-plane faults (the workload/hardware misbehaving):

* :meth:`FaultPlan.node_slowdown` — a node loses a fraction of its CPU for
  a while (co-tenant interference, thermal throttling);
* :meth:`FaultPlan.pe_stall` — one PE stops processing entirely for a
  while (GC pause, crash-restart);
* :meth:`FaultPlan.source_surge` — an input stream's rate multiplies for a
  while (flash crowd).

Control-plane faults (the *controller itself* misbehaving):

* :meth:`FaultPlan.feedback_loss` — each r_max publication is dropped
  with a probability (lossy control network);
* :meth:`FaultPlan.feedback_delay` — propagation delay of surviving
  publications is multiplied, plus optional uniform jitter (congested
  control network);
* :meth:`FaultPlan.tier1_outage` — every Tier-1 re-solve during the
  window raises (optimizer service down);
* :meth:`FaultPlan.controller_outage` — one node's control loop misses
  all its ticks during the window (controller process hang);
* :meth:`FaultPlan.pe_crash` — a PE crashes, *losing its input buffer*,
  and restarts after the window.

Membership faults (the cluster itself churning; requires a system built
with an :class:`~repro.control.elastic.ElasticityConfig`, whose control
loops follow nodes by identity across epoch rebuilds):

* :meth:`FaultPlan.node_join` — a node joins at ``start`` and is
  evacuated and removed again when the window ends;
* :meth:`FaultPlan.node_leave` — a node is evacuated (its PEs live-
  migrate to the survivors) and removed at ``start``; a fresh
  replacement node of the same capacity joins when the window ends.

Build a :class:`FaultPlan`, then ``plan.attach(system)`` *before* running;
each fault is applied and reverted by simulation processes.  For the
threaded runtime use ``plan.attach_runtime(runtime)``, which schedules
the supported kinds on a wall-clock timer thread (worker crashes there
are healed by the runtime's supervisor, see :mod:`repro.runtime.spc`).

Overlapping faults contending for the same underlying state (two
slowdowns of one node, a stall and a crash of one PE, ...) would revert
to intermediate captured values, so they are rejected at attach time
with a clear error; faults on *different* resources compose freely.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.control.elastic import plan_scale_in_placement
from repro.core.resilience import LossyFeedbackBus
from repro.model.workload import (
    ConstantRateSource,
    CorrelatedBurstSource,
    DiurnalSource,
    DriftSource,
    FlashCrowdSource,
    PoissonSource,
)
from repro.systems.simulated import SimulatedSystem

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.spc import SPCRuntime

#: Fault kinds the threaded runtime's injector can apply.
RUNTIME_KINDS = frozenset({"pe_crash", "feedback_loss", "feedback_delay"})


@dataclass(frozen=True)
class Fault:
    """One scheduled disturbance."""

    kind: str
    target: str
    start: float
    duration: float
    magnitude: float
    #: Kind-specific second parameter (feedback_delay: uniform jitter).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("fault start must be >= 0")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if self.magnitude < 0:
            raise ValueError("fault magnitude must be >= 0")
        if self.jitter < 0:
            raise ValueError("fault jitter must be >= 0")

    @property
    def end(self) -> float:
        return self.start + self.duration


def _check_magnitude(kind: str, magnitude: float) -> None:
    """Kind-specific magnitude validation, shared by the FaultPlan
    builders (fail early) and FaultInjector._validate (so directly
    constructed Faults cannot bypass the checks)."""
    if kind == "node_slowdown" and not 0.0 <= magnitude <= 1.0:
        raise ValueError(
            f"slowdown factor must lie in [0, 1], got {magnitude}"
        )
    if kind == "source_surge" and magnitude <= 0:
        raise ValueError(f"surge factor must be positive, got {magnitude}")
    if kind == "feedback_loss" and not 0.0 <= magnitude <= 1.0:
        raise ValueError(
            f"loss probability must lie in [0, 1], got {magnitude}"
        )
    if kind == "feedback_delay" and magnitude < 1.0:
        raise ValueError(
            f"delay multiplier must be >= 1, got {magnitude}"
        )
    if kind == "node_join" and magnitude <= 0:
        raise ValueError(
            f"joined-node cpu capacity must be positive, got {magnitude}"
        )


def _resource_key(fault: Fault) -> _t.Tuple[str, str]:
    """The piece of system state a fault captures and restores.

    Two faults with the same key would restore stale intermediate state
    if their windows overlapped, so overlaps are rejected per key.
    """
    if fault.kind == "node_slowdown":
        return ("node_capacity", fault.target)
    if fault.kind in ("pe_stall", "pe_crash"):
        return ("pe_gate", fault.target)
    if fault.kind == "source_surge":
        return ("source_rate", fault.target)
    if fault.kind in ("feedback_loss", "feedback_delay"):
        return ("feedback_bus", "*")
    if fault.kind == "tier1_outage":
        return ("tier1", "*")
    if fault.kind == "controller_outage":
        return ("controller_ticks", fault.target)
    if fault.kind in ("node_join", "node_leave"):
        # Membership mutations share the whole node list: two overlapping
        # joins/leaves would revert against a shifted topology.
        return ("membership", "*")
    return (fault.kind, fault.target)


def _reject_overlaps(faults: _t.Sequence[Fault]) -> None:
    by_key: _t.Dict[_t.Tuple[str, str], _t.List[Fault]] = {}
    for fault in faults:
        by_key.setdefault(_resource_key(fault), []).append(fault)
    for key, group in by_key.items():
        group = sorted(group, key=lambda f: f.start)
        for earlier, later in zip(group, group[1:]):
            if later.start < earlier.end:
                raise ValueError(
                    f"overlapping faults on {key[0]} {key[1]!r}: "
                    f"{earlier.kind} [{earlier.start}, {earlier.end}) and "
                    f"{later.kind} [{later.start}, {later.end}) — "
                    "reverts would restore intermediate state; "
                    "stagger the windows or target different resources"
                )


@dataclass
class FaultPlan:
    """A collection of faults to inject into one run."""

    faults: _t.List[Fault] = field(default_factory=list)

    # -- data-plane faults ------------------------------------------------

    def node_slowdown(
        self, node_index: int, factor: float, start: float, duration: float
    ) -> "FaultPlan":
        """Scale a node's CPU capacity by ``factor`` during the window."""
        _check_magnitude("node_slowdown", factor)
        self.faults.append(
            Fault("node_slowdown", str(node_index), start, duration, factor)
        )
        return self

    def pe_stall(
        self, pe_id: str, start: float, duration: float
    ) -> "FaultPlan":
        """Freeze one PE's processing during the window."""
        self.faults.append(Fault("pe_stall", pe_id, start, duration, 0.0))
        return self

    def source_surge(
        self, ingress_pe_id: str, factor: float, start: float, duration: float
    ) -> "FaultPlan":
        """Multiply one source's arrival rate by ``factor`` in the window."""
        _check_magnitude("source_surge", factor)
        self.faults.append(
            Fault("source_surge", ingress_pe_id, start, duration, factor)
        )
        return self

    # -- control-plane faults ---------------------------------------------

    def feedback_loss(
        self, probability: float, start: float, duration: float
    ) -> "FaultPlan":
        """Drop each r_max publication with ``probability`` in the window."""
        _check_magnitude("feedback_loss", probability)
        self.faults.append(
            Fault("feedback_loss", "*", start, duration, probability)
        )
        return self

    def feedback_delay(
        self,
        multiplier: float,
        start: float,
        duration: float,
        jitter: float = 0.0,
    ) -> "FaultPlan":
        """Stretch feedback propagation delay by ``multiplier`` (+ uniform
        ``jitter`` extra seconds per message) in the window."""
        _check_magnitude("feedback_delay", multiplier)
        self.faults.append(
            Fault(
                "feedback_delay", "*", start, duration, multiplier,
                jitter=jitter,
            )
        )
        return self

    def tier1_outage(self, start: float, duration: float) -> "FaultPlan":
        """Make every Tier-1 (re-)solve fail during the window."""
        self.faults.append(Fault("tier1_outage", "*", start, duration, 0.0))
        return self

    def controller_outage(
        self, node_index: int, start: float, duration: float
    ) -> "FaultPlan":
        """Suspend one node's control ticks during the window."""
        self.faults.append(
            Fault("controller_outage", str(node_index), start, duration, 0.0)
        )
        return self

    def pe_crash(
        self, pe_id: str, start: float, duration: float
    ) -> "FaultPlan":
        """Crash a PE: its input buffer is lost, it restarts after the
        window (simulator) or when the supervisor revives it (runtime)."""
        self.faults.append(Fault("pe_crash", pe_id, start, duration, 0.0))
        return self

    # -- membership faults (elasticity-armed systems only) ------------------

    def node_join(
        self, start: float, duration: float, cpu_capacity: float = 1.0
    ) -> "FaultPlan":
        """Join a fresh node for the window; it is evacuated and removed
        again at the end (capacity churn the scaler must ride out)."""
        _check_magnitude("node_join", cpu_capacity)
        self.faults.append(
            Fault("node_join", "*", start, duration, cpu_capacity)
        )
        return self

    def node_leave(
        self, node_index: int, start: float, duration: float
    ) -> "FaultPlan":
        """Evacuate and remove one node at ``start`` (its PEs live-migrate
        to the survivors); a same-capacity replacement joins at the end."""
        self.faults.append(
            Fault("node_leave", str(node_index), start, duration, 0.0)
        )
        return self

    # -- attachment -------------------------------------------------------

    def attach(self, system: SimulatedSystem) -> "FaultInjector":
        """Bind this plan to a built (but not yet run) system."""
        return FaultInjector(system, list(self.faults))

    def attach_runtime(self, runtime: "SPCRuntime") -> "RuntimeFaultInjector":
        """Bind the runtime-supported subset of this plan to a threaded
        runtime (see :data:`RUNTIME_KINDS`)."""
        return RuntimeFaultInjector(runtime, list(self.faults))


class FaultInjector:
    """Executes a fault plan inside a system's simulation environment."""

    def __init__(self, system: SimulatedSystem, faults: _t.Sequence[Fault]):
        self.system = system
        self.faults = list(faults)
        self.applied: _t.List[_t.Tuple[float, Fault, str]] = []
        _reject_overlaps(self.faults)
        for fault in self.faults:
            self._validate(fault)
            system.env.process(self._run(fault))

    def _validate(self, fault: Fault) -> None:
        _check_magnitude(fault.kind, fault.magnitude)
        if fault.kind in ("node_slowdown", "controller_outage"):
            index = int(fault.target)
            if not 0 <= index < len(self.system.nodes):
                raise ValueError(f"no node {index}")
        elif fault.kind in ("pe_stall", "pe_crash"):
            if fault.target not in self.system.runtimes:
                raise ValueError(f"no PE {fault.target!r}")
        elif fault.kind == "source_surge":
            if not any(
                source.stream_id == f"src:{fault.target}"
                for source in self.system.sources
            ):
                raise ValueError(f"no source feeding {fault.target!r}")
        elif fault.kind in (
            "feedback_loss", "feedback_delay", "tier1_outage"
        ):
            pass  # bus-wide / solver-wide: no target to resolve
        elif fault.kind in ("node_join", "node_leave"):
            if getattr(self.system, "elasticity", None) is None:
                raise ValueError(
                    f"{fault.kind} requires an elasticity-armed system "
                    "(SystemConfig.elasticity): disarmed control loops "
                    "are index-bound and cannot follow membership churn"
                )
            if fault.kind == "node_leave":
                index = int(fault.target)
                if not 0 <= index < len(self.system.nodes):
                    raise ValueError(f"no node {index}")
        else:
            raise ValueError(f"unknown fault kind {fault.kind!r}")

    def _run(self, fault: Fault) -> _t.Generator:
        env = self.system.env
        recorder = self.system.recorder
        if fault.start > 0:
            yield env.timeout(fault.start)
        revert = self._apply(fault)
        self.applied.append((env.now, fault, "applied"))
        if recorder.enabled:
            recorder.emit(
                "fault",
                fault_kind=fault.kind,
                target=fault.target,
                phase="applied",
                magnitude=fault.magnitude,
            )
        yield env.timeout(fault.duration)
        revert()
        self.applied.append((env.now, fault, "reverted"))
        if recorder.enabled:
            recorder.emit(
                "fault",
                fault_kind=fault.kind,
                target=fault.target,
                phase="reverted",
                magnitude=fault.magnitude,
            )

    # -- fault application ---------------------------------------------------

    def _apply(self, fault: Fault) -> _t.Callable[[], None]:
        return {
            "node_slowdown": self._apply_node_slowdown,
            "pe_stall": self._apply_pe_stall,
            "source_surge": self._apply_source_surge,
            "feedback_loss": self._apply_feedback_fault,
            "feedback_delay": self._apply_feedback_fault,
            "tier1_outage": self._apply_tier1_outage,
            "controller_outage": self._apply_controller_outage,
            "pe_crash": self._apply_pe_crash,
            "node_join": self._apply_node_join,
            "node_leave": self._apply_node_leave,
        }[fault.kind](fault)

    def _apply_node_slowdown(self, fault: Fault) -> _t.Callable[[], None]:
        index = int(fault.target)
        system = self.system
        if index >= len(system.nodes):
            # The elastic tier shrank the cluster below the planned
            # index between attach and apply; nothing to slow down.
            return lambda: None
        node = system.nodes[index]
        node_id = node.node_id
        scheduler = system.schedulers[index]
        original_node = node.cpu_capacity
        original_scheduler = scheduler.capacity
        node.cpu_capacity = original_node * fault.magnitude
        scheduler.capacity = original_scheduler * fault.magnitude

        def revert() -> None:
            node.cpu_capacity = original_node
            # A membership rebuild during the window replaces scheduler
            # objects (the slowed capacity is carried across by node_id)
            # and may shift node indices, so re-resolve the live
            # scheduler by node identity; a node that left mid-window
            # has nothing left to revert.
            for idx, group in enumerate(system.plane.groups):
                if group.node_id == node_id:
                    system.plane.schedulers[idx].capacity = (
                        original_scheduler
                    )
                    break

        return revert

    def _apply_pe_stall(self, fault: Fault) -> _t.Callable[[], None]:
        runtime = self.system.runtimes[fault.target]
        previous_gate = self.system.gates[fault.target]

        def stalled_gate(pe: object) -> bool:
            return False

        self.system.set_gate(fault.target, stalled_gate)

        def revert() -> None:
            self.system.set_gate(fault.target, previous_gate)
            runtime.blocked_last_interval = False

        return revert

    def _apply_source_surge(self, fault: Fault) -> _t.Callable[[], None]:
        stream_id = f"src:{fault.target}"
        source = next(
            s for s in self.system.sources if s.stream_id == stream_id
        )
        if isinstance(
            source,
            (
                ConstantRateSource,
                PoissonSource,
                FlashCrowdSource,
                DiurnalSource,
                DriftSource,
                CorrelatedBurstSource,
            ),
        ):
            original = source.rate
            source.rate = original * fault.magnitude

            def revert() -> None:
                source.rate = original

            return revert

        # On/off and square-wave sources (including the drifting square
        # wave): surge the peak rate.
        original_peak = source.peak_rate
        source.peak_rate = original_peak * fault.magnitude

        def revert() -> None:
            source.peak_rate = original_peak

        return revert

    def _apply_feedback_fault(self, fault: Fault) -> _t.Callable[[], None]:
        system = self.system
        rng = system.streams.stream("fault:feedback")
        if fault.kind == "feedback_loss":
            wrapper = LossyFeedbackBus(
                system.bus, rng, loss_probability=fault.magnitude
            )
        else:
            wrapper = LossyFeedbackBus(
                system.bus,
                rng,
                delay_multiplier=fault.magnitude,
                jitter=fault.jitter,
            )
        system.bus = wrapper

        def revert() -> None:
            system.bus = wrapper.inner

        return revert

    def _apply_tier1_outage(self, fault: Fault) -> _t.Callable[[], None]:
        tier1 = self.system.tier1

        def outage() -> None:
            raise RuntimeError("injected tier1 solver outage")

        tier1.inject_failure = outage

        def revert() -> None:
            tier1.inject_failure = None

        return revert

    def _apply_controller_outage(self, fault: Fault) -> _t.Callable[[], None]:
        index = int(fault.target)
        system = self.system
        if index >= len(system.plane.groups):
            # Membership churn removed the planned node before the
            # window opened; there is no controller to suspend.
            return lambda: None
        node_id = system.plane.groups[index].node_id
        system.suspend_node(index)

        def revert() -> None:
            # Pause flags are carried by node_id across membership
            # rebuilds, but resume_node takes an index — re-resolve it.
            for idx, group in enumerate(system.plane.groups):
                if group.node_id == node_id:
                    system.resume_node(idx)
                    break

        return revert

    def _apply_pe_crash(self, fault: Fault) -> _t.Callable[[], None]:
        system = self.system
        runtime = system.runtimes[fault.target]
        previous_gate = system.gates[fault.target]
        runtime.buffer.flush(system.env.now, cause="pe_crash")

        def crashed_gate(pe: object) -> bool:
            return False

        system.set_gate(fault.target, crashed_gate)

        def revert() -> None:
            system.set_gate(fault.target, previous_gate)
            runtime.blocked_last_interval = False

        return revert

    def _evacuate_and_remove(self, node_id: str, reason: str) -> bool:
        """Live-migrate everything off ``node_id``, then remove it.

        Resolves the node by identity (the elastic tier may have moved
        or already removed it); returns False when there is nothing to
        do (node gone, or it is the last one standing).
        """
        system = self.system
        index = next(
            (
                idx
                for idx, group in enumerate(system.plane.groups)
                if group.node_id == node_id
            ),
            None,
        )
        if index is None or len(system.nodes) <= 1:
            return False
        current = system.placement_book.placement
        load = dict(system.plane.targets.cpu)
        renumbered = plan_scale_in_placement(
            current, len(system.nodes), index, load
        )
        moves = [
            (pe_id, post if post < index else post + 1)
            for pe_id, post in renumbered.items()
            if current[pe_id] == index
        ]
        system.migrate_pes(moves, reason=reason)
        system.remove_node(index)
        system.placement_book.advance(
            renumbered, len(system.nodes), reason
        )
        return True

    def _apply_node_join(self, fault: Fault) -> _t.Callable[[], None]:
        system = self.system
        node = system.add_node(cpu_capacity=fault.magnitude)
        node_id = node.node_id

        def revert() -> None:
            # Evacuate whatever the scaler placed on the guest node and
            # remove it; a no-op when the elastic tier already did.
            self._evacuate_and_remove(node_id, reason="fault_node_join")

        return revert

    def _apply_node_leave(self, fault: Fault) -> _t.Callable[[], None]:
        system = self.system
        index = int(fault.target)
        if not 0 <= index < len(system.nodes):
            # The elastic tier shrank below the planned index; nothing
            # to take away.
            return lambda: None
        node_id = system.nodes[index].node_id
        capacity = system.nodes[index].cpu_capacity
        left = self._evacuate_and_remove(node_id, reason="fault_node_leave")

        def revert() -> None:
            if left:
                system.add_node(cpu_capacity=capacity)

        return revert


class RuntimeFaultInjector:
    """Applies the runtime-supported fault kinds to a threaded
    :class:`~repro.runtime.spc.SPCRuntime` on a wall-clock schedule.

    Start/duration are in *model* seconds (scaled by the runtime's
    dilation); the injector runs one daemon thread that sleeps between
    transitions.  ``pe_crash`` kills the worker thread (its channel is
    lost) and leaves revival to the runtime's supervisor — the fault
    window only scopes how long the injector reports the fault active.
    """

    def __init__(self, runtime: "SPCRuntime", faults: _t.Sequence[Fault]):
        import threading

        supported = [f for f in faults if f.kind in RUNTIME_KINDS]
        unsupported = [f for f in faults if f.kind not in RUNTIME_KINDS]
        if unsupported:
            raise ValueError(
                "threaded runtime supports fault kinds "
                f"{sorted(RUNTIME_KINDS)}; got "
                f"{sorted({f.kind for f in unsupported})}"
            )
        _reject_overlaps(supported)
        for fault in supported:
            _check_magnitude(fault.kind, fault.magnitude)
            if fault.kind == "pe_crash" and fault.target not in runtime.pes:
                raise ValueError(f"no PE {fault.target!r}")
        self.runtime = runtime
        self.faults = sorted(supported, key=lambda f: f.start)
        self.applied: _t.List[_t.Tuple[float, Fault, str]] = []
        self._threads = [
            threading.Thread(
                target=self._run, args=(fault,), daemon=True,
                name=f"fault-{fault.kind}",
            )
            for fault in self.faults
        ]

    def start(self) -> None:
        """Arm the plan (call right after ``runtime.run`` starts, or
        before — threads sleep until each fault's start time)."""
        for thread in self._threads:
            thread.start()

    def _run(self, fault: Fault) -> None:
        import time

        runtime = self.runtime
        dilation = runtime.config.dilation
        time.sleep(fault.start * dilation)
        revert = self._apply(fault)
        self.applied.append((runtime.now(), fault, "applied"))
        time.sleep(fault.duration * dilation)
        revert()
        self.applied.append((runtime.now(), fault, "reverted"))

    def _apply(self, fault: Fault) -> _t.Callable[[], None]:
        runtime = self.runtime
        if fault.kind == "pe_crash":
            runtime.pes[fault.target].kill()
            return lambda: None
        rng = runtime.streams.stream("fault:feedback")
        if fault.kind == "feedback_loss":
            wrapper = LossyFeedbackBus(
                runtime._bus, rng, loss_probability=fault.magnitude
            )
        else:
            wrapper = LossyFeedbackBus(
                runtime._bus,
                rng,
                delay_multiplier=fault.magnitude,
                jitter=fault.jitter,
            )
        runtime._bus = wrapper

        def revert() -> None:
            runtime._bus = wrapper.inner

        return revert
