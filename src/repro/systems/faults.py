"""Fault and disturbance injection for simulated systems.

The paper evaluates robustness to *allocation errors*
(:func:`repro.core.targets.perturb_targets`); this module extends the
reproduction with the runtime disturbances an operator of an extreme-scale
system actually sees, so the controller's self-stabilization claim can be
exercised end to end:

* :meth:`FaultPlan.node_slowdown` — a node loses a fraction of its CPU for
  a while (co-tenant interference, thermal throttling);
* :meth:`FaultPlan.pe_stall` — one PE stops processing entirely for a
  while (GC pause, crash-restart);
* :meth:`FaultPlan.source_surge` — an input stream's rate multiplies for a
  while (flash crowd).

Build a :class:`FaultPlan`, then ``plan.attach(system)`` *before* running;
each fault is applied and reverted by simulation processes.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.model.workload import ConstantRateSource, PoissonSource
from repro.systems.simulated import SimulatedSystem


@dataclass(frozen=True)
class Fault:
    """One scheduled disturbance."""

    kind: str
    target: str
    start: float
    duration: float
    magnitude: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("fault start must be >= 0")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if self.magnitude < 0:
            raise ValueError("fault magnitude must be >= 0")


@dataclass
class FaultPlan:
    """A collection of faults to inject into one run."""

    faults: _t.List[Fault] = field(default_factory=list)

    def node_slowdown(
        self, node_index: int, factor: float, start: float, duration: float
    ) -> "FaultPlan":
        """Scale a node's CPU capacity by ``factor`` during the window."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("slowdown factor must lie in [0, 1]")
        self.faults.append(
            Fault("node_slowdown", str(node_index), start, duration, factor)
        )
        return self

    def pe_stall(
        self, pe_id: str, start: float, duration: float
    ) -> "FaultPlan":
        """Freeze one PE's processing during the window."""
        self.faults.append(Fault("pe_stall", pe_id, start, duration, 0.0))
        return self

    def source_surge(
        self, ingress_pe_id: str, factor: float, start: float, duration: float
    ) -> "FaultPlan":
        """Multiply one source's arrival rate by ``factor`` in the window."""
        if factor <= 0:
            raise ValueError("surge factor must be positive")
        self.faults.append(
            Fault("source_surge", ingress_pe_id, start, duration, factor)
        )
        return self

    def attach(self, system: SimulatedSystem) -> "FaultInjector":
        """Bind this plan to a built (but not yet run) system."""
        return FaultInjector(system, list(self.faults))


class FaultInjector:
    """Executes a fault plan inside a system's simulation environment."""

    def __init__(self, system: SimulatedSystem, faults: _t.Sequence[Fault]):
        self.system = system
        self.faults = list(faults)
        self.applied: _t.List[_t.Tuple[float, Fault, str]] = []
        for fault in self.faults:
            self._validate(fault)
            system.env.process(self._run(fault))

    def _validate(self, fault: Fault) -> None:
        if fault.kind == "node_slowdown":
            index = int(fault.target)
            if not 0 <= index < len(self.system.nodes):
                raise ValueError(f"no node {index}")
        elif fault.kind == "pe_stall":
            if fault.target not in self.system.runtimes:
                raise ValueError(f"no PE {fault.target!r}")
        elif fault.kind == "source_surge":
            if not any(
                source.stream_id == f"src:{fault.target}"
                for source in self.system.sources
            ):
                raise ValueError(f"no source feeding {fault.target!r}")
        else:
            raise ValueError(f"unknown fault kind {fault.kind!r}")

    def _run(self, fault: Fault) -> _t.Generator:
        env = self.system.env
        if fault.start > 0:
            yield env.timeout(fault.start)
        revert = self._apply(fault)
        self.applied.append((env.now, fault, "applied"))
        yield env.timeout(fault.duration)
        revert()
        self.applied.append((env.now, fault, "reverted"))

    # -- fault application ---------------------------------------------------

    def _apply(self, fault: Fault) -> _t.Callable[[], None]:
        if fault.kind == "node_slowdown":
            return self._apply_node_slowdown(fault)
        if fault.kind == "pe_stall":
            return self._apply_pe_stall(fault)
        return self._apply_source_surge(fault)

    def _apply_node_slowdown(self, fault: Fault) -> _t.Callable[[], None]:
        index = int(fault.target)
        node = self.system.nodes[index]
        scheduler = self.system.schedulers[index]
        original_node = node.cpu_capacity
        original_scheduler = scheduler.capacity
        node.cpu_capacity = original_node * fault.magnitude
        scheduler.capacity = original_scheduler * fault.magnitude

        def revert() -> None:
            node.cpu_capacity = original_node
            scheduler.capacity = original_scheduler

        return revert

    def _apply_pe_stall(self, fault: Fault) -> _t.Callable[[], None]:
        runtime = self.system.runtimes[fault.target]
        previous_gate = self.system.gates[fault.target]

        def stalled_gate(pe: object) -> bool:
            return False

        self.system.set_gate(fault.target, stalled_gate)

        def revert() -> None:
            self.system.set_gate(fault.target, previous_gate)
            runtime.blocked_last_interval = False

        return revert

    def _apply_source_surge(self, fault: Fault) -> _t.Callable[[], None]:
        stream_id = f"src:{fault.target}"
        source = next(
            s for s in self.system.sources if s.stream_id == stream_id
        )
        if isinstance(source, (ConstantRateSource, PoissonSource)):
            original = source.rate
            source.rate = original * fault.magnitude

            def revert() -> None:
                source.rate = original

            return revert

        # On/off source: surge the peak rate.
        original_peak = source.peak_rate
        source.peak_rate = original_peak * fault.magnitude

        def revert() -> None:
            source.peak_rate = original_peak

        return revert
