"""Steady-state and stability diagnostics for finished runs.

The paper's Section V claims two analytic properties for the closed loop:

1. the steady-state input rate of a PE equals its processing rate, and
2. each PE reaches steady state from an arbitrary starting point.

These helpers verify the discrete-time analogues on trace data: rate
balance (arrivals vs completions over the measured window) and occupancy
convergence (declining deviation from the set-point across windows).
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

from repro.systems.simulated import SimulatedSystem


@dataclass
class RateBalance:
    """Arrival/completion balance for one PE over a window."""

    pe_id: str
    arrivals: int
    completions: int

    @property
    def imbalance(self) -> float:
        """|in - out| / max(in, out); ~0 in steady state."""
        top = max(self.arrivals, self.completions)
        if top == 0:
            return 0.0
        return abs(self.arrivals - self.completions) / top


def rate_balance(system: SimulatedSystem) -> _t.List[RateBalance]:
    """Per-PE input-vs-processing balance over the whole run.

    In a stable system arrivals accepted into a buffer are eventually
    processed, so the two counters track each other (up to the residual
    buffer content, bounded by the buffer capacity).
    """
    balances = []
    for pe_id, runtime in system.runtimes.items():
        balances.append(
            RateBalance(
                pe_id=pe_id,
                arrivals=runtime.buffer.telemetry.accepted,
                completions=runtime.counters.consumed,
            )
        )
    return balances


def max_rate_imbalance(system: SimulatedSystem) -> float:
    """The worst per-PE rate imbalance, excluding near-idle PEs."""
    worst = 0.0
    for balance in rate_balance(system):
        if balance.arrivals + balance.completions < 50:
            continue  # too few samples to judge
        worst = max(worst, balance.imbalance)
    return worst


@dataclass
class OccupancyTrace:
    """Occupancy samples of one PE over time."""

    pe_id: str
    times: _t.List[float]
    occupancies: _t.List[int]

    def mean(self) -> float:
        if not self.occupancies:
            return 0.0
        return sum(self.occupancies) / len(self.occupancies)

    def oscillation_index(self) -> float:
        """Mean absolute successive difference, normalized by the mean.

        Low values indicate smooth, stable occupancy; flapping between
        empty and full yields values near 2.
        """
        if len(self.occupancies) < 2:
            return 0.0
        mean = self.mean()
        if mean == 0:
            return 0.0
        jumps = [
            abs(b - a)
            for a, b in zip(self.occupancies, self.occupancies[1:])
        ]
        return (sum(jumps) / len(jumps)) / mean


class OccupancyProbe:
    """Attachable sampler recording buffer occupancies during a run."""

    def __init__(self, system: SimulatedSystem, period: float = 0.05):
        if period <= 0:
            raise ValueError("period must be positive")
        self.system = system
        self.period = period
        self.traces: _t.Dict[str, OccupancyTrace] = {
            pe_id: OccupancyTrace(pe_id=pe_id, times=[], occupancies=[])
            for pe_id in system.runtimes
        }
        system.env.process(self._run())

    def _run(self) -> _t.Generator:
        while True:
            yield self.system.env.timeout(self.period)
            now = self.system.env.now
            for pe_id, runtime in self.system.runtimes.items():
                trace = self.traces[pe_id]
                trace.times.append(now)
                trace.occupancies.append(runtime.buffer.occupancy)

    def mean_oscillation_index(self) -> float:
        indices = [
            trace.oscillation_index()
            for trace in self.traces.values()
            if len(trace.occupancies) >= 2
        ]
        if not indices:
            return 0.0
        return sum(indices) / len(indices)


def convergence_profile(
    trace: OccupancyTrace, target: float, windows: int = 4
) -> _t.List[float]:
    """RMS deviation from ``target`` per consecutive window.

    A self-stabilizing controller started from an arbitrary point shows a
    non-increasing profile (transient decays); tests assert the last window
    deviates no more than the first.
    """
    if windows <= 0:
        raise ValueError("windows must be positive")
    n = len(trace.occupancies)
    if n < windows:
        return []
    size = n // windows
    profile = []
    for w in range(windows):
        chunk = trace.occupancies[w * size : (w + 1) * size]
        rms = math.sqrt(
            sum((value - target) ** 2 for value in chunk) / len(chunk)
        )
        profile.append(rms)
    return profile
