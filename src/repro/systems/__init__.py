"""Runnable stream-processing systems.

:mod:`repro.systems.simulated` assembles the model (PEs, buffers, nodes,
sources), the ACES core (controllers, schedulers, feedback) and the
simulation kernel into a complete simulated distributed stream processing
system that can run under any :class:`~repro.core.policies.Policy`.

:mod:`repro.systems.analysis` provides steady-state and stability
diagnostics over a finished run.

:mod:`repro.systems.faults` injects data-plane and control-plane faults
(slowdowns, crashes, feedback loss/delay, solver and controller outages)
into either substrate.
"""

from repro.systems.analysis import (
    OccupancyProbe,
    convergence_profile,
    max_rate_imbalance,
    rate_balance,
)
from repro.systems.faults import Fault, FaultPlan
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system

__all__ = [
    "Fault",
    "FaultPlan",
    "OccupancyProbe",
    "SimulatedSystem",
    "SystemConfig",
    "convergence_profile",
    "max_rate_imbalance",
    "rate_balance",
    "run_system",
]
