"""Runnable stream-processing systems.

:mod:`repro.systems.simulated` assembles the model (PEs, buffers, nodes,
sources), the ACES core (controllers, schedulers, feedback) and the
simulation kernel into a complete simulated distributed stream processing
system that can run under any :class:`~repro.core.policies.Policy`.

:mod:`repro.systems.analysis` provides steady-state and stability
diagnostics over a finished run.
"""

from repro.systems.analysis import (
    OccupancyProbe,
    convergence_profile,
    max_rate_imbalance,
    rate_balance,
)
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system

__all__ = [
    "OccupancyProbe",
    "SimulatedSystem",
    "SystemConfig",
    "convergence_profile",
    "max_rate_imbalance",
    "rate_balance",
    "run_system",
]
