"""Simulated data plane: SDO emission, delivery, and admission.

:class:`SimDataPlane` owns everything that moves SDOs between PEs —
timed delivery with same-instant batching, link serialization, egress
collection, and the policy admission path (which is where load shedding
drops).  :class:`SimAdapter` is the simulator's implementation of the
:class:`~repro.control.adapter.SystemAdapter` protocol: it lets the
substrate-agnostic :class:`~repro.control.node.NodeController` read
occupancies and apply CPU grants (executing PEs against the data plane's
``emit``).
"""

from __future__ import annotations

import typing as _t

from repro.control.adapter import GateFn, SettleFn
from repro.metrics.collectors import EgressCollector
from repro.model.links import Link
from repro.model.pe import PERuntime
from repro.model.sdo import SDO
from repro.obs.recorder import TraceRecorder
from repro.sim.engine import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.node import ControlRecord
    from repro.obs.profiler import PhaseProfiler
    from repro.obs.spans import SpanTracker


class SimDataPlane:
    """SDO movement between PEs of one simulated system.

    The admission-filter mapping is shared with (and owned by) the
    control plane — the policy's shed filters are resolved there once,
    and the data plane reads the live dict so dynamic filter updates
    take effect without re-wiring.
    """

    def __init__(
        self,
        env: Environment,
        links: _t.Mapping[_t.Tuple[str, str], Link],
        collector: EgressCollector,
        admission_filters: _t.Mapping[str, _t.Optional[_t.Callable]],
        recorder: TraceRecorder,
        profiler: _t.Optional["PhaseProfiler"] = None,
        spans: _t.Optional["SpanTracker"] = None,
    ):
        self.env = env
        self.links = links
        self.collector = collector
        self.admission_filters = admission_filters
        self.recorder = recorder
        self.profiler = profiler
        self.spans = spans

        self.emit_attempts = 0
        self.emit_drops = 0
        self.shed_drops = 0
        #: Same-timestamp delivery batches: arrival time -> list of
        #: (consumer-or-None, producer, sdo); one engine event per distinct
        #: arrival instant instead of one per SDO.
        self.delivery_batches: _t.Dict[
            float, _t.List[_t.Tuple[_t.Optional[PERuntime], PERuntime, SDO]]
        ] = {}

    def emit(self, pe: PERuntime, sdo: SDO, completion: float) -> None:
        """Schedule delivery of an output SDO at its completion time.

        Completion times are interpolated inside the current control
        interval; delivering through a timed event (rather than touching
        the consumer's buffer immediately) keeps cross-node causality: the
        consumer sees the SDO only when the clock actually reaches the
        completion (plus any link-transfer) instant.  Deliveries landing
        at the same instant share one engine event (see
        :meth:`_enqueue_delivery`).
        """
        if pe.is_egress:
            self._enqueue_delivery(completion, None, pe, sdo)
            return
        links_get = self.links.get
        pe_id = pe.pe_id
        if self.spans is None:
            for consumer in pe.downstream:
                link = links_get((pe_id, consumer.pe_id))
                if link is None:
                    arrival = completion
                else:
                    arrival = link.transfer_completion(sdo, completion)
                self._enqueue_delivery(arrival, consumer, pe, sdo)
            return
        # Spans armed: every consumer path mutates the delivered SDO's
        # span record, so fan-out beyond the first consumer gets an
        # independent copy (same lineage, own span accumulators).
        first = True
        for consumer in pe.downstream:
            link = links_get((pe_id, consumer.pe_id))
            if link is None:
                arrival = completion
            else:
                arrival = link.transfer_completion(sdo, completion)
            payload = sdo if first else sdo.fanout_copy()
            first = False
            self._enqueue_delivery(arrival, consumer, pe, payload)

    def _enqueue_delivery(
        self,
        at: float,
        consumer: _t.Optional[PERuntime],
        pe: PERuntime,
        sdo: SDO,
    ) -> None:
        """Batch deliveries by exact arrival instant.

        PEs executing a control interval interpolate many completions onto
        the same timestamps, so keying a batch dict by the exact arrival
        float and scheduling one :meth:`Environment.call_at` flush per
        distinct instant replaces the per-SDO event/callback pair.  A
        ``None`` consumer means the SDO exits through the egress collector.
        """
        if at < self.env.now:
            at = self.env.now
        batches = self.delivery_batches
        batch = batches.get(at)
        if batch is None:
            batch = batches[at] = []
            self.env.call_at(at, self._flush_deliveries, value=at)
        batch.append((consumer, pe, sdo))

    def _flush_deliveries(self, event: _t.Any) -> None:
        """Deliver every SDO batched for this event's arrival instant."""
        batch = self.delivery_batches.pop(event._value)
        now = self.env.now
        profiler = self.profiler
        if profiler is not None:
            profiler.push("transport")
        try:
            collector_record = self.collector.record
            admit = self.admit
            for consumer, pe, sdo in batch:
                if consumer is None:
                    collector_record(pe.pe_id, sdo, now)
                else:
                    self.emit_attempts += 1
                    if not admit(consumer, sdo, now):
                        self.emit_drops += 1
        finally:
            if profiler is not None:
                profiler.pop()

    def admit(self, runtime: PERuntime, sdo: SDO, now: float) -> bool:
        """Offer an SDO to a PE's buffer, via the policy's shed filter."""
        admission = self.admission_filters[runtime.pe_id]
        if admission is not None and not admission(runtime, sdo):
            self.shed_drops += 1
            if self.recorder.enabled:
                self.recorder.emit(
                    "drop",
                    pe=runtime.pe_id,
                    cause="shed",
                    occupancy=runtime.buffer.occupancy,
                    capacity=runtime.buffer.capacity,
                )
            return False
        return runtime.ingest(sdo, now)


class SimAdapter:
    """:class:`SystemAdapter` implementation for the discrete-event
    simulator.

    Constructed before the control plane (which needs an adapter) but
    acting through the data plane (which needs the control plane's
    admission filters) — hence the late :meth:`bind`.
    """

    def __init__(
        self,
        env: Environment,
        recorder: TraceRecorder,
        profiler: _t.Optional["PhaseProfiler"] = None,
    ):
        self.env = env
        self.recorder = recorder
        self.profiler = profiler
        self.dataplane: _t.Optional[SimDataPlane] = None

    def bind(self, dataplane: SimDataPlane) -> None:
        """Attach the data plane PE execution emits through."""
        self.dataplane = dataplane

    def clock(self) -> float:
        return self.env.now

    def snapshot(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        now: float,
    ) -> _t.Dict[str, float]:
        """Sampled occupancies (folds the read into the simulator's
        occupancy-integral telemetry; idempotent at a fixed ``now``)."""
        return {
            record.pe_id: record.pe.buffer.sample(now) for record in records
        }

    def snapshot_list(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        now: float,
    ) -> _t.List[int]:
        """:meth:`snapshot` in record order, skipping the dict round-trip
        (the vector engine's occupancy read)."""
        return [record.pe.buffer.sample(now) for record in records]

    def apply_grants(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        grants: _t.Mapping[str, float],
        now: float,
        dt: float,
        settle: SettleFn,
    ) -> None:
        """Execute every resident PE for one interval under its grant."""
        profiler = self.profiler
        if profiler is not None:
            profiler.push("pe_execute")
        try:
            emit = self.dataplane.emit
            grants_get = grants.get
            for record in records:
                pe = record.pe
                used = pe.execute(
                    now,
                    dt,
                    grants_get(record.pe_id, 0.0),
                    emit=emit,
                    gate=record.gate,
                )
                settle(record.pe_id, used, dt)
        finally:
            if profiler is not None:
                profiler.pop()

    def apply_gates(self, pe_id: str, gate: _t.Optional[GateFn]) -> None:
        """No substrate-side gate state: the simulator enforces gates
        inside :meth:`apply_grants` via the shared control records."""

    def emit_trace(self, kind: str, **fields: _t.Any) -> None:
        if self.recorder.enabled:
            self.recorder.emit(kind, **fields)
