"""Construction of a simulated system: config + topology/data-plane builders.

Everything here wires *passive* structure — PE runtimes, processing
nodes, inter-node links, workload sources, gauges — and schedules no
control logic of its own.  The Tier-2 control loops live in
:mod:`repro.control`; the delivery/admission path lives in
:mod:`repro.systems.dataplane`; :class:`repro.systems.simulated.
SimulatedSystem` composes the three.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.graph.topology import Topology
from repro.metrics.collectors import EgressCollector
from repro.model.links import Link
from repro.model.node import ProcessingNode
from repro.model.pe import PERuntime
from repro.model.sdo import SDO
from repro.model.workload import (
    ConstantRateSource,
    CorrelatedBurstSource,
    DiurnalSource,
    DriftSource,
    DriftSquareWaveSource,
    FlashCrowdSource,
    OnOffSource,
    PoissonSource,
    SquareWaveSource,
)
from repro.obs.gauges import GaugeRegistry
from repro.obs.recorder import TraceRecorder
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.admission import AdmissionConfig, AdmissionController
    from repro.control.elastic import ElasticityConfig
    from repro.control.forecast import ForecastConfig
    from repro.obs.spans import SpanTracker

#: admit(runtime, sdo, now) -> accepted?  Provided by the data plane.
AdmitFn = _t.Callable[[PERuntime, SDO, float], bool]

#: Every workload-source model ``build_sources`` can instantiate.  The
#: first five are the original set; the last four are the forecasting
#: scenario library (PR 10).
SOURCE_KINDS = (
    "onoff",
    "poisson",
    "constant",
    "squarewave",
    "flashcrowd",
    "diurnal",
    "drift",
    "correlatedburst",
    "driftsquare",
)


@dataclass
class SystemConfig:
    """Run-time configuration of a simulated system."""

    buffer_size: int = 50
    #: b0 as a fraction of the buffer size (paper: 1/2).
    b0_fraction: float = 0.5
    #: Control interval Delta-t (seconds).
    dt: float = 0.01
    #: Feedback propagation delay; None means one control interval.
    feedback_delay: _t.Optional[float] = None
    #: Staleness TTL for feedback values (seconds; typically a few Δt).
    #: A value unheard-from for longer decays to the conservative
    #: ``feedback_stale_bound`` instead of being trusted forever.  None
    #: (default) preserves the original trust-forever behavior.
    feedback_staleness_ttl: _t.Optional[float] = None
    #: Conservative r_max substituted for stale feedback values.
    feedback_stale_bound: float = 0.0
    #: Source model: 'onoff' (bursty), 'poisson', 'constant',
    #: 'squarewave' (deterministic adversarial on/off), 'flashcrowd'
    #: (Poisson with one surge window), or one of the scenario-library
    #: kinds — 'diurnal' (sinusoidal cycle), 'drift' (linear trend),
    #: 'correlatedburst' (shared periodic burst windows), 'driftsquare'
    #: (square wave with drifting peak).  See :data:`SOURCE_KINDS`.
    source_kind: str = "onoff"
    #: ON fraction for the on/off and square-wave sources.
    source_duty: float = 0.5
    #: Mean ON-period duration (seconds) — the arrival burst length.
    #: Doubles as the square-wave ON duration (period = mean_on/duty).
    source_mean_on: float = 0.5
    #: Flash-crowd surge window start (simulated seconds).
    source_surge_start: float = 6.0
    #: Flash-crowd surge window length (seconds).
    source_surge_duration: float = 2.0
    #: Rate multiplier inside the surge window.
    source_surge_factor: float = 4.0
    #: Cycle length (seconds) for the 'diurnal' and 'correlatedburst'
    #: sources (the correlated burst window repeats every period;
    #: window length and factor reuse the surge knobs above).
    source_period: float = 8.0
    #: Sinusoidal modulation depth for the 'diurnal' source, in [0, 1).
    source_amplitude: float = 0.6
    #: Relative rate slope per second for the 'drift' and 'driftsquare'
    #: sources (0.05 = +5% load per simulated second).
    source_drift: float = 0.05
    #: Simulated warm-up excluded from all metrics.
    warmup: float = 5.0
    #: Finite bandwidth (size units / second) for links between PEs on
    #: *different* nodes; None models the paper's instantaneous
    #: intra-cluster transport.  Co-located PEs always communicate
    #: through memory.
    link_bandwidth: _t.Optional[float] = None
    #: Propagation delay added to every inter-node transfer (seconds).
    link_latency: float = 0.0
    #: When set, Tier 1 is re-solved every this many simulated seconds
    #: using the *measured* recent input rates, and the refreshed CPU
    #: targets are pushed into the running schedulers (the paper's
    #: periodic global optimization "to support changing workload").
    reoptimize_interval: _t.Optional[float] = None
    #: Tier-2 step implementation: "scalar" (per-PE Python loops) or
    #: "vector" (the array-backed engine in repro.control.vector, with
    #: automatic scalar fallback when numpy is unavailable or the
    #: policy uses unsupported scheduler types).
    control_impl: str = "scalar"
    #: When set, node control loops are grouped into this many shared
    #: phase buckets instead of one loop per node: every node in a
    #: bucket ticks at the same instant (decide-all-then-apply-all via
    #: ControlPlane.tick_nodes).  This is an explicit semantic choice —
    #: identical between scalar and vector implementations — that lets
    #: the vector engine fuse whole buckets into single array passes.
    #: Feedback policies additionally require a nonzero feedback delay
    #: (same-instant publication plus per-node offsets would otherwise
    #: differ).  None (default) keeps per-node staggered loops.
    control_phase_buckets: _t.Optional[int] = None
    #: When set, arm the SLO-aware admission front end
    #: (:class:`repro.control.admission.AdmissionController`) in front
    #: of the ingress PEs; None (default) admits everything.
    admission: _t.Optional["AdmissionConfig"] = None
    #: When set, arm the Tier-3 elastic tier
    #: (:class:`repro.control.elastic.ElasticityConfig`): dynamic node
    #: membership, autoscaling, and live PE migration.  None (default)
    #: keeps membership frozen and every output byte-identical to the
    #: pre-elasticity system.
    elasticity: _t.Optional["ElasticityConfig"] = None
    #: When set, arm the forecasting tier
    #: (:class:`repro.control.forecast.ForecastController`): streaming
    #: per-source rate forecasts sampled at the configured cadence,
    #: with proactive Tier-1 re-solves (and, when the elastic tier is
    #: also armed, proactive scale-out requests) ahead of predicted
    #: load shifts.  None (default) keeps the system purely reactive.
    forecast: _t.Optional["ForecastConfig"] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if not 0.0 <= self.b0_fraction <= 1.0:
            raise ValueError("b0_fraction must lie in [0, 1]")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.source_kind not in SOURCE_KINDS:
            raise ValueError(f"unknown source_kind {self.source_kind!r}")
        if not 0.0 < self.source_duty <= 1.0:
            raise ValueError("source_duty must lie in (0, 1]")
        if self.source_surge_start < 0 or self.source_surge_duration < 0:
            raise ValueError(
                "source_surge_start and source_surge_duration must be >= 0"
            )
        if self.source_surge_factor < 1.0:
            raise ValueError("source_surge_factor must be >= 1")
        if self.source_period <= 0:
            raise ValueError("source_period must be positive")
        if not 0.0 <= self.source_amplitude < 1.0:
            raise ValueError("source_amplitude must lie in [0, 1)")
        if (
            self.source_kind == "correlatedburst"
            and self.source_surge_duration > self.source_period
        ):
            raise ValueError(
                "correlatedburst needs source_surge_duration <= "
                "source_period (the burst window repeats every period)"
            )
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.reoptimize_interval is not None and self.reoptimize_interval <= 0:
            raise ValueError("reoptimize_interval must be positive")
        if (
            self.feedback_staleness_ttl is not None
            and self.feedback_staleness_ttl <= 0
        ):
            raise ValueError("feedback_staleness_ttl must be positive")
        if self.feedback_stale_bound < 0:
            raise ValueError("feedback_stale_bound must be >= 0")
        if self.link_bandwidth is not None and self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.link_latency < 0:
            raise ValueError("link_latency must be >= 0")
        if self.control_impl not in ("scalar", "vector"):
            raise ValueError(
                f"control_impl must be 'scalar' or 'vector', "
                f"got {self.control_impl!r}"
            )
        if (
            self.control_phase_buckets is not None
            and self.control_phase_buckets < 1
        ):
            raise ValueError("control_phase_buckets must be >= 1")
        if (
            self.elasticity is not None
            and self.control_phase_buckets is not None
        ):
            raise ValueError(
                "elasticity requires per-node control loops "
                "(control_phase_buckets must be None): membership "
                "changes re-bucket nodes mid-run, which shared-phase "
                "loops cannot follow"
            )


def build_runtimes(
    topology: Topology,
    config: SystemConfig,
    streams: RandomStreams,
    recorder: TraceRecorder,
    spans: _t.Optional["SpanTracker"] = None,
) -> _t.Tuple[_t.Dict[str, PERuntime], EgressCollector]:
    """Instantiate every PE runtime, wire the DAG edges, and register
    the egress collector."""
    graph = topology.graph
    ingress = set(graph.ingress_ids)
    egress = set(graph.egress_ids)
    runtimes: _t.Dict[str, PERuntime] = {}
    for pe_id in graph.topological_order():
        runtime = PERuntime(
            profile=graph.profile(pe_id),
            buffer_capacity=config.buffer_size,
            rng=streams.stream(f"pe:{pe_id}"),
            is_ingress=pe_id in ingress,
            is_egress=pe_id in egress,
        )
        if recorder.enabled:
            runtime.buffer.attach_recorder(recorder, pe_id)
        if spans is not None:
            runtime.attach_spans(spans)
        runtimes[pe_id] = runtime
    for src, dst in graph.edges():
        runtimes[src].link_downstream(runtimes[dst])

    collector = EgressCollector()
    for pe_id in egress:
        collector.register(pe_id, graph.profile(pe_id).weight)
    if spans is not None:
        collector.attach_spans(spans)
    return runtimes, collector


def build_nodes(
    topology: Topology, runtimes: _t.Mapping[str, PERuntime]
) -> _t.List[ProcessingNode]:
    """Group PE runtimes into processing nodes according to placement."""
    nodes: _t.List[ProcessingNode] = []
    placement = topology.placement
    order = topology.graph.topological_order()
    for node_index in range(topology.num_nodes):
        node = ProcessingNode(node_id=f"node-{node_index}")
        # Place PEs in topological order so intra-node execution flows
        # producer -> consumer within a single tick.
        for pe_id in order:
            if placement[pe_id] == node_index:
                node.place(runtimes[pe_id])
        nodes.append(node)
    return nodes


def build_links(
    topology: Topology, config: SystemConfig
) -> _t.Dict[_t.Tuple[str, str], Link]:
    """Create serializing links for edges that cross node boundaries."""
    links: _t.Dict[_t.Tuple[str, str], Link] = {}
    bandwidth = config.link_bandwidth
    if bandwidth is None:
        return links
    placement = topology.placement
    for src, dst in topology.graph.edges():
        if placement[src] == placement[dst]:
            continue  # co-located PEs share memory
        links[(src, dst)] = Link(
            name=f"{src}->{dst}",
            bandwidth=bandwidth,
            latency=config.link_latency,
        )
    return links


def build_sources(
    env: Environment,
    topology: Topology,
    config: SystemConfig,
    streams: RandomStreams,
    runtimes: _t.Mapping[str, PERuntime],
    admit: AdmitFn,
    admission: _t.Optional["AdmissionController"] = None,
) -> _t.List[_t.Any]:
    """Start one workload source per ingress PE, sinking through the
    data plane's admission path.

    With an admission front end armed, every offer consults
    :meth:`~repro.control.admission.AdmissionController.admit_ingress`
    first — shed and rejected SDOs never reach the data plane (they
    count as source rejections; the controller keeps the shed/reject
    split) — and each source's ``backoff`` hook is registered so
    REJECT-level refusals impose their retry-after horizon.
    """
    sources = []
    for pe_id, rate in sorted(topology.source_rates.items()):
        runtime = runtimes[pe_id]

        if admission is None:

            def sink(
                sdo: SDO, now: float, runtime: PERuntime = runtime
            ) -> bool:
                return admit(runtime, sdo, now)

        else:

            def sink(
                sdo: SDO,
                now: float,
                runtime: PERuntime = runtime,
                pe_id: str = pe_id,
            ) -> bool:
                assert admission is not None
                if admission.admit_ingress(pe_id, now) != "admit":
                    return False
                return admit(runtime, sdo, now)

        stream_id = f"src:{pe_id}"
        rng = streams.stream(stream_id)
        if config.source_kind == "constant":
            source: _t.Any = ConstantRateSource(env, stream_id, sink, rate)
        elif config.source_kind == "poisson":
            source = PoissonSource(env, stream_id, sink, rate, rng)
        elif config.source_kind == "squarewave":
            duty = config.source_duty
            source = SquareWaveSource(
                env,
                stream_id,
                sink,
                peak_rate=rate / duty,
                period=config.source_mean_on / duty,
                duty=duty,
            )
        elif config.source_kind == "flashcrowd":
            source = FlashCrowdSource(
                env,
                stream_id,
                sink,
                rate=rate,
                surge_start=config.source_surge_start,
                surge_duration=config.source_surge_duration,
                surge_factor=config.source_surge_factor,
                rng=rng,
            )
        elif config.source_kind == "diurnal":
            source = DiurnalSource(
                env,
                stream_id,
                sink,
                rate=rate,
                period=config.source_period,
                amplitude=config.source_amplitude,
                rng=rng,
            )
        elif config.source_kind == "drift":
            source = DriftSource(
                env,
                stream_id,
                sink,
                rate=rate,
                drift=config.source_drift,
                rng=rng,
            )
        elif config.source_kind == "correlatedburst":
            source = CorrelatedBurstSource(
                env,
                stream_id,
                sink,
                rate=rate,
                period=config.source_period,
                burst_duration=config.source_surge_duration,
                burst_factor=config.source_surge_factor,
                rng=rng,
            )
        elif config.source_kind == "driftsquare":
            duty = config.source_duty
            source = DriftSquareWaveSource(
                env,
                stream_id,
                sink,
                peak_rate=rate / duty,
                period=config.source_mean_on / duty,
                duty=duty,
                drift=config.source_drift,
            )
        else:
            duty = config.source_duty
            mean_on = config.source_mean_on
            mean_off = mean_on * (1.0 - duty) / duty
            source = OnOffSource(
                env,
                stream_id,
                sink,
                peak_rate=rate / duty,
                mean_on=mean_on,
                mean_off=mean_off,
                rng=rng,
            )
        if admission is not None:
            admission.register_backoff(pe_id, source.backoff)
        sources.append(source)
    return sources


def build_gauges(
    env: Environment,
    cadence: _t.Optional[float],
    recorder: TraceRecorder,
    runtimes: _t.Mapping[str, PERuntime],
    plane: _t.Any,
    collector: _t.Optional[EgressCollector] = None,
) -> _t.Optional[GaugeRegistry]:
    """Register the standard per-PE gauges when sampling is requested.

    Gauges: input-buffer ``occupancy`` for every PE (a substrate
    observable, registered here), per-egress ``latency_p95`` from the
    streaming latency histograms, plus the control plane's own gauges
    (``token_level`` for PEs under a token-bucket scheduler, the last
    advertised ``r_max`` for PEs with a flow controller).
    """
    if cadence is None:
        return None
    gauges = GaugeRegistry(env, cadence=cadence, recorder=recorder)
    for pe_id, runtime in runtimes.items():
        gauges.register(
            "occupancy",
            lambda buffer=runtime.buffer: float(buffer.occupancy),
            pe=pe_id,
        )
    if collector is not None:
        # Bind the record object, not the collector lookup: records
        # persist across warm-up resets (reset mutates their fields).
        for pe_id, record in sorted(collector.records().items()):
            gauges.register(
                "latency_p95",
                lambda record=record: record.hist.percentile(0.95),
                pe=pe_id,
            )
    plane.register_gauges(gauges, pe_order=runtimes)
    gauges.start()
    return gauges
