"""PE worker threads for the SPC runtime.

Each :class:`RuntimePE` pairs one worker thread with one input
:class:`~repro.runtime.transport.Channel`.  The worker:

1. waits for an SDO (or for Lock-Step clearance),
2. emulates ``T_S`` CPU-seconds of work by sleeping ``T_S / c`` dilated
   wall-seconds at its current fractional allocation ``c``,
3. emits the derived SDOs downstream (or into the egress collector).

The fractional allocation is written by the node's control thread; the
worker reads it per SDO.  ``RuntimePE`` also exposes the small protocol the
CPU schedulers consume (``pe_id``, ``profile``, ``buffer.occupancy``,
``backlog_work``, ``cpu_for_output_rate_now``), so the same scheduler code
drives both substrates.
"""

from __future__ import annotations

import threading
import time
import typing as _t

import numpy as np

from repro.model.params import PEProfile
from repro.model.sdo import SDO
from repro.model.statemachine import TwoStateMachine
from repro.runtime.transport import Channel

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracker

#: Floor on the fractional allocation while emulating work, so a starved
#: worker cannot sleep unboundedly long on one SDO.
_MIN_SHARE = 0.02


class _ChannelView:
    """Adapter giving a Channel the simulator buffer's attribute names."""

    def __init__(self, channel: Channel):
        self._channel = channel

    @property
    def occupancy(self) -> int:
        return self._channel.occupancy

    @property
    def free(self) -> int:
        return self._channel.free

    @property
    def capacity(self) -> int:
        return self._channel.capacity


class RuntimePE:
    """One PE (worker thread + input channel) in the threaded runtime."""

    def __init__(
        self,
        profile: PEProfile,
        channel_capacity: int,
        rng: np.random.Generator,
        dilation: float,
        is_ingress: bool = False,
        is_egress: bool = False,
    ):
        self.profile = profile
        self.pe_id = profile.pe_id
        self.channel = Channel(channel_capacity, name=f"{profile.pe_id}:in")
        self.buffer = _ChannelView(self.channel)
        self.machine = TwoStateMachine(profile, rng)
        self._machine_lock = threading.Lock()
        self.dilation = dilation
        self.is_ingress = is_ingress
        self.is_egress = is_egress

        self.downstream: _t.List["RuntimePE"] = []
        #: Current fractional allocation, written by the node controller.
        self.allocation = 0.0
        #: Blocking admission (Lock-Step) vs drop-on-full (ACES/UDP).
        self.blocking_emission = False
        #: Lock-Step gate: require room in every downstream channel.
        self.min_flow_gate = False

        self.consumed = 0
        self.emitted = 0
        self.cpu_used = 0.0  # emulated CPU-seconds
        #: Armed latency-span tracker (set by SPCRuntime; None = disarmed).
        self.spans: _t.Optional["SpanTracker"] = None
        self._egress_sink: _t.Optional[_t.Callable[[SDO], None]] = None
        self._clock: _t.Optional[_t.Callable[[], float]] = None

        self._stop = threading.Event()
        self._crash = threading.Event()
        #: Incremented on every restart (thread generation).
        self.generation = 0
        #: True once start() ran (so a supervisor can tell "not yet
        #: started" apart from "died").
        self.started = False
        self._thread = threading.Thread(
            target=self._run, name=f"pe-{profile.pe_id}", daemon=True
        )

    # -- scheduler protocol --------------------------------------------------

    @property
    def backlog_work(self) -> float:
        # Same float-op order as PERuntime.backlog_work (occupancy times
        # reciprocal slope), so the substrate parity test stays bit-exact.
        return self.channel.occupancy * (1.0 / self.profile.rate_slope)

    @property
    def current_service_time(self) -> float:
        return self.profile.t1 if self.machine.state == 1 else self.profile.t0

    def processing_rate(self, cpu: float) -> float:
        return cpu / self.current_service_time

    def cpu_for_output_rate_now(self, rate: float) -> float:
        if rate <= 0:
            return 0.0
        return (rate / self.profile.lambda_m) * self.current_service_time

    @property
    def blocked_last_interval(self) -> bool:
        """The threaded runtime blocks inside the worker; never pre-empted."""
        return False

    # -- wiring -----------------------------------------------------------

    def link_downstream(self, other: "RuntimePE") -> None:
        self.downstream.append(other)

    def attach(
        self,
        clock: _t.Callable[[], float],
        egress_sink: _t.Optional[_t.Callable[[SDO], None]] = None,
    ) -> None:
        self._clock = clock
        self._egress_sink = egress_sink

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._clock is None:
            raise RuntimeError(f"{self.pe_id}: attach() before start()")
        self.started = True
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        self._thread.join(timeout=timeout)

    @property
    def is_alive(self) -> bool:
        """Whether the worker thread is currently running."""
        return self._thread.is_alive()

    def kill(self, timeout: float = 2.0) -> int:
        """Simulate a worker crash: the thread dies, buffered input is lost.

        Returns the number of SDOs lost with the channel.  The PE stays
        dead until :meth:`restart` (normally invoked by the runtime's
        supervisor thread).
        """
        self._crash.set()
        lost = self.channel.clear()
        self._thread.join(timeout=timeout)
        return lost

    def restart(self) -> None:
        """Revive a crashed worker with a fresh thread (counters persist)."""
        if self._thread.is_alive():
            raise RuntimeError(f"{self.pe_id}: cannot restart a live worker")
        if self._stop.is_set():
            raise RuntimeError(f"{self.pe_id}: cannot restart after stop()")
        self._crash.clear()
        self.generation += 1
        self._thread = threading.Thread(
            target=self._run,
            name=f"pe-{self.pe_id}-g{self.generation}",
            daemon=True,
        )
        self._thread.start()

    # -- worker loop --------------------------------------------------------

    def _gate_open(self) -> bool:
        expected_m = max(1, int(round(self.profile.lambda_m)))
        return all(
            consumer.channel.free >= expected_m
            for consumer in self.downstream
        )

    def _run(self) -> None:
        poll = 0.002
        while not self._stop.is_set():
            if self._crash.is_set():
                return  # simulated crash: the worker dies mid-flight
            if self.min_flow_gate and self.downstream and not self._gate_open():
                time.sleep(poll)
                continue

            sdo = self.channel.get(timeout=poll)
            if sdo is None:
                continue

            assert self._clock is not None
            started = self._clock()
            spans = self.spans
            if spans is not None:
                spans.observe_queue(self.pe_id, sdo, started)
            share = max(self.allocation, _MIN_SHARE)
            with self._machine_lock:
                cost = self.machine.service_time_at(started)
            time.sleep(cost / share * self.dilation)
            self.cpu_used += cost
            self.consumed += 1
            self._emit(sdo, started)

    def _emit(self, sdo: SDO, started: float) -> None:
        spans = self.spans
        parent_span = None
        now = 0.0
        if spans is not None:
            assert self._clock is not None
            now = self._clock()
            spans.observe_service(self.pe_id, sdo, now - started)
            parent_span = sdo.span
        count = max(1, int(round(self.profile.lambda_m)))
        for _ in range(count):
            derived = sdo.derive(stream_id=self.pe_id)
            if parent_span is not None:
                derived.span = [
                    parent_span[0], parent_span[1], parent_span[2], now, now,
                ]
            self.emitted += 1
            if self.is_egress or not self.downstream:
                if self._egress_sink is not None:
                    self._egress_sink(derived)
                continue
            if parent_span is None:
                for consumer in self.downstream:
                    if self.blocking_emission:
                        consumer.channel.put(derived, timeout=1.0)
                    else:
                        consumer.channel.offer(derived)
                continue
            # Spans armed: fan-out beyond the first consumer gets an
            # independent copy (downstream workers mutate the span).
            first = True
            for consumer in self.downstream:
                payload = derived if first else derived.fanout_copy()
                first = False
                if self.blocking_emission:
                    consumer.channel.put(payload, timeout=1.0)
                else:
                    consumer.channel.offer(payload)

    def __repr__(self) -> str:
        return f"RuntimePE({self.pe_id}, q={self.channel.occupancy})"
