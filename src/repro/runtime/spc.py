"""The SPC runtime orchestrator: topology -> threads -> metrics.

Builds a running system from the same inputs as the simulator
(:class:`~repro.graph.topology.Topology`, a policy name, Tier-1 targets),
with real worker threads, real bounded queues, wall-clock node control
loops, and source threads.  Time is dilated: one model second takes
``dilation`` wall seconds, so a 60-PE calibration run finishes quickly.

The control loop per node pumps the *same*
:class:`~repro.control.node.NodeController` the simulator uses, through
a :class:`ThreadAdapter` — the controller code is shared, not mirrored;
that equivalence is what the calibration experiment (paper Section VI-C)
measures and ``tests/test_control_parity.py`` asserts tick-by-tick.
"""

from __future__ import annotations

import threading
import time
import typing as _t
from dataclasses import dataclass, field

from repro.control import ControlPlane, NodeGroup, resolve_initial_targets
from repro.control.adapter import GateFn, SettleFn
from repro.control.admission import AdmissionConfig, AdmissionController
from repro.control.elastic import (
    ElasticityConfig,
    MigrationRecord,
    PlacementBook,
    PlacementVersion,
    ScalingPolicy,
    plan_scale_in_placement,
    plan_scale_out_placement,
)
from repro.control.forecast import ForecastConfig, ForecastController
from repro.graph.placement_opt import optimize_placement
from repro.core.global_opt import solve_global_allocation
from repro.core.policies import AcesPolicy, LockStepPolicy, Policy, UdpPolicy
from repro.core.resilience import ResilientTier1
from repro.core.targets import AllocationTargets
from repro.graph.topology import Topology
from repro.metrics.collectors import EgressCollector
from repro.metrics.stats import SummaryStats
from repro.model.sdo import SDO
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.runtime.worker import RuntimePE
from repro.sim.rng import RandomStreams, exponential

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.node import ControlRecord
    from repro.obs.spans import SpanTracker


@dataclass
class RuntimeConfig:
    """Configuration of a threaded runtime experiment."""

    buffer_size: int = 50
    b0_fraction: float = 0.5
    dt: float = 0.05
    #: Wall-seconds per model-second (< 1 runs faster than real time is not
    #: possible here because work is emulated with sleeps; 1.0 = real time).
    dilation: float = 1.0
    warmup: float = 1.0
    source_kind: str = "poisson"
    seed: int = 0
    #: Run the worker supervisor (detects dead worker threads and
    #: restarts them with bounded exponential backoff).
    supervise: bool = True
    #: Supervisor scan period (model seconds).
    supervisor_poll: float = 0.02
    #: Restart budget per worker; a worker that keeps dying past this is
    #: abandoned (and counted in ``RuntimeReport.workers_abandoned``).
    max_worker_restarts: int = 5
    #: Exponential-backoff schedule between restarts of one worker
    #: (model seconds): base * factor**restarts_so_far.
    restart_backoff_base: float = 0.05
    restart_backoff_factor: float = 2.0
    #: Staleness TTL for feedback values (model seconds; None = trust
    #: forever), mirroring ``SystemConfig.feedback_staleness_ttl``.
    feedback_staleness_ttl: _t.Optional[float] = None
    feedback_stale_bound: float = 0.0
    #: Tier-2 step implementation ("scalar" | "vector"), mirroring
    #: ``SystemConfig.control_impl``; vector falls back to scalar when
    #: numpy is unavailable.
    control_impl: str = "scalar"
    #: When set, arm the SLO-aware admission front end in front of the
    #: ingress channels, mirroring ``SystemConfig.admission``.
    admission: _t.Optional[AdmissionConfig] = None
    #: When set, arm the Tier-3 elastic tier, mirroring
    #: ``SystemConfig.elasticity``: node membership becomes mutable
    #: (``add_node`` / ``remove_node`` / ``migrate_pes``), control loops
    #: follow nodes by identity across epoch rebuilds, and a scaling
    #: thread observes channel pressure at the configured cadence.
    #: Disarmed runtimes build and behave exactly as before.
    elasticity: _t.Optional[ElasticityConfig] = None
    #: When set, arm the anticipatory forecasting tier, mirroring
    #: ``SystemConfig.forecast``: per-source rate forecasters sampled at
    #: the configured cadence, triggering a proactive Tier-1 re-solve
    #: (and, when the elastic tier is also armed, a proactive scale-out
    #: through the shared cooldown) before a predicted load shift.
    forecast: _t.Optional[ForecastConfig] = None


@dataclass
class RuntimeReport:
    """Measured outcome of one threaded run (model-time units)."""

    policy: str
    duration: float
    weighted_throughput: float
    total_output_sdos: int
    latency: SummaryStats
    buffer_drops: int
    cpu_utilization: float
    per_egress_counts: _t.Dict[str, int] = field(default_factory=dict)
    #: Dead workers revived by the supervisor during the run.
    worker_restarts: int = 0
    #: Workers that exhausted their restart budget and stayed dead.
    workers_abandoned: int = 0
    #: Pooled end-to-end latency quantiles in seconds
    #: (``{"p50": ..., "p95": ..., "p99": ...}``).
    latency_percentiles: _t.Dict[str, float] = field(default_factory=dict)
    #: Per-kind drop breakdown over the measured window, mirroring
    #: ``MetricsReport.drops_by_kind`` (``buffer_overflow`` covers
    #: channel-full drops and crash-flush losses together — the threaded
    #: channel does not distinguish them; ``admission_shed`` /
    #: ``admission_rejected`` count front-end refusals).
    drops_by_kind: _t.Dict[str, int] = field(default_factory=dict)


class ThreadAdapter:
    """:class:`~repro.control.adapter.SystemAdapter` over worker threads.

    Grants are applied by writing each worker's fractional ``allocation``
    (the worker reads it per SDO); consumed CPU is settled from the
    workers' monotonically growing ``cpu_used`` counters.
    """

    def __init__(self, clock: _t.Callable[[], float], recorder: TraceRecorder):
        self._clock = clock
        self.recorder = recorder
        #: Per-PE cpu_used watermark at the previous settle.
        self._last_used: _t.Dict[str, float] = {}

    def clock(self) -> float:
        return self._clock()

    def snapshot(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        now: float,
    ) -> _t.Dict[str, float]:
        """Live channel depths (the threaded runtime's only observable)."""
        return {
            record.pe_id: record.pe.buffer.occupancy for record in records
        }

    def snapshot_list(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        now: float,
    ) -> _t.List[int]:
        """:meth:`snapshot` in record order, without the dict round-trip."""
        return [record.pe.buffer.occupancy for record in records]

    def apply_grants(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        grants: _t.Mapping[str, float],
        now: float,
        dt: float,
        settle: SettleFn,
    ) -> None:
        """Publish allocations to the workers and settle real CPU usage."""
        last_used = self._last_used
        grants_get = grants.get
        for record in records:
            pe = record.pe
            pe_id = record.pe_id
            pe.allocation = grants_get(pe_id, 0.0)
            used_total = pe.cpu_used
            settle(
                pe_id, max(0.0, used_total - last_used.get(pe_id, 0.0)), dt
            )
            last_used[pe_id] = used_total

    def apply_gates(self, pe_id: str, gate: _t.Optional[GateFn]) -> None:
        """No-op: the threaded runtime enforces Lock-Step gating inside
        the worker (``RuntimePE.min_flow_gate``), not in the control step."""

    def emit_trace(self, kind: str, **fields: _t.Any) -> None:
        if self.recorder.enabled:
            self.recorder.emit(kind, **fields)


class SPCRuntime:
    """A running threaded stream-processing system."""

    def __init__(
        self,
        topology: Topology,
        policy: Policy,
        targets: _t.Optional[AllocationTargets] = None,
        config: _t.Optional[RuntimeConfig] = None,
        recorder: _t.Optional[TraceRecorder] = None,
        spans: _t.Optional["SpanTracker"] = None,
    ):
        self.topology = topology
        self.policy = policy
        self.config = config or RuntimeConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if self.recorder.enabled:
            self.recorder.bind_clock(self.now)
        #: Armed latency-span tracker; worker threads share it, so it
        #: must carry a lock regardless of how it was constructed.
        self.spans = spans
        if spans is not None:
            spans.ensure_locked()
        #: Set before the Tier-1 bootstrap: the solver emits trace
        #: events, and the bound clock reads ``_start_wall``.
        self._start_wall: _t.Optional[float] = None
        #: Degradation-guarded Tier-1 solver; only armed runtimes carry
        #: one (scale-out/in and proactive re-solves go through it),
        #: keeping disarmed construction byte-identical.
        self.tier1: _t.Optional[ResilientTier1] = None
        if (
            self.config.elasticity is not None
            or self.config.forecast is not None
        ):
            self.tier1 = ResilientTier1(recorder=self.recorder)
            targets = resolve_initial_targets(self.tier1, topology, targets)
        elif targets is None:
            targets = solve_global_allocation(
                topology.graph, topology.placement, topology.source_rates
            ).targets
        self.targets = targets
        self.streams = RandomStreams(seed=self.config.seed)

        self._collector = EgressCollector()
        self._collector_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: _t.List[threading.Thread] = []
        self.worker_restarts = 0
        self.workers_abandoned = 0

        #: Tier-3 state.  The placement book always carries the seed
        #: epoch (uniform introspection); it only advances when armed.
        self.elasticity = self.config.elasticity
        self.scaling_policy = (
            ScalingPolicy(self.elasticity)
            if self.elasticity is not None
            else None
        )
        self.placement_book = PlacementBook(
            dict(topology.placement), topology.num_nodes
        )
        self.migration_log: _t.List[MigrationRecord] = []
        self._node_ordinal = topology.num_nodes
        self._membership_timeline: _t.List[_t.Tuple[float, int]] = [
            (0.0, topology.num_nodes)
        ]
        #: Serializes membership mutations (the scaling thread, a fault
        #: injector, and test code may all call them); control threads
        #: deliberately do not take it — a tick against the outgoing
        #: epoch's controller is harmless, and the identity-keyed loops
        #: re-resolve their controller on the next tick.
        self._membership_lock = threading.Lock()

        self._build()

    # -- model clock --------------------------------------------------------

    def now(self) -> float:
        """Current model time (seconds since start)."""
        if self._start_wall is None:
            return 0.0
        return (time.monotonic() - self._start_wall) / self.config.dilation

    # -- control-plane delegation --------------------------------------------

    @property
    def _bus(self) -> _t.Any:
        """The feedback bus (swappable: fault injection wraps it)."""
        return self.plane.bus

    @_bus.setter
    def _bus(self, value: _t.Any) -> None:
        self.plane.bus = value

    # -- observation ---------------------------------------------------------

    @property
    def collector(self) -> EgressCollector:
        """The live egress collector; read under :attr:`collector_lock`."""
        return self._collector

    @property
    def collector_lock(self) -> threading.Lock:
        return self._collector_lock

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        graph = self.topology.graph
        config = self.config
        ingress = set(graph.ingress_ids)
        egress = set(graph.egress_ids)

        self.pes: _t.Dict[str, RuntimePE] = {}
        for pe_id in graph.topological_order():
            pe = RuntimePE(
                profile=graph.profile(pe_id),
                channel_capacity=config.buffer_size,
                rng=self.streams.stream(f"pe:{pe_id}"),
                dilation=config.dilation,
                is_ingress=pe_id in ingress,
                is_egress=pe_id in egress,
            )
            if isinstance(self.policy, LockStepPolicy):
                # Substrate-side Lock-Step enforcement: the worker blocks
                # in place instead of being pre-empted by the controller.
                pe.min_flow_gate = True
                pe.blocking_emission = True
            pe.spans = self.spans
            self.pes[pe_id] = pe
        for src, dst in graph.edges():
            self.pes[src].link_downstream(self.pes[dst])

        for pe_id in egress:
            self._collector.register(pe_id, graph.profile(pe_id).weight)
        if self.spans is not None:
            self._collector.attach_spans(self.spans)

        def make_sink(pe_id: str) -> _t.Callable[[SDO], None]:
            def sink(sdo: SDO) -> None:
                with self._collector_lock:
                    self._collector.record(pe_id, sdo, self.now())

            return sink

        for pe_id, pe in self.pes.items():
            pe.attach(
                clock=self.now,
                egress_sink=make_sink(pe_id) if pe.is_egress else None,
            )

        # Node control threads: the simulator's NodeController, pumped at
        # dilated wall cadence through the thread adapter.
        groups: _t.List[NodeGroup] = []
        for node_index in range(self.topology.num_nodes):
            members = [
                self.pes[pe_id]
                for pe_id in graph.topological_order()
                if self.topology.placement[pe_id] == node_index
            ]
            if not members and config.elasticity is None:
                # Disarmed: a PE-less node gets no controller (legacy
                # behaviour, kept byte-identical).  Armed, empty nodes
                # keep their group so group indices track node indices
                # across membership operations.
                continue
            groups.append(NodeGroup(f"node-{node_index}", members))

        #: SLO-aware admission front end, armed exactly as in the
        #: simulator: same controller class, same config, bound to the
        #: live channel views and the collector's histogram records
        #: (reads under the collector lock).
        self.admission: _t.Optional[AdmissionController] = None
        if config.admission is not None:
            self.admission = AdmissionController(config.admission)
            self.admission.bind(
                ingress={
                    pe_id: pe.buffer
                    for pe_id, pe in self.pes.items()
                    if pe.is_ingress
                },
                egress=self._collector.records(),
                clock=self.now,
                lock=self._collector_lock,
            )
            self._threads.append(
                threading.Thread(
                    target=self._admission_loop,
                    name="admission",
                    daemon=True,
                )
            )

        #: Anticipatory forecasting tier, armed exactly as in the
        #: simulator: same controller class, same config, fed from the
        #: per-source cumulative offered-SDO counters below.
        self.forecast: _t.Optional[ForecastController] = None
        if config.forecast is not None:
            self.forecast = ForecastController(config.forecast)
            self._threads.append(
                threading.Thread(
                    target=self._forecast_loop,
                    name="forecast",
                    daemon=True,
                )
            )

        self.adapter = ThreadAdapter(self.now, self.recorder)
        self.plane = ControlPlane(
            self.policy,
            self.adapter,
            groups=groups,
            targets=self.targets,
            dt=config.dt,
            b0=config.b0_fraction * config.buffer_size,
            feedback_delay=0.0,
            feedback_staleness_ttl=config.feedback_staleness_ttl,
            feedback_stale_bound=config.feedback_stale_bound,
            recorder=self.recorder,
            tier1=self.tier1,
            control_impl=config.control_impl,
            admission=self.admission,
            forecast=self.forecast,
        )
        for controller in self.plane.node_controllers:
            if config.elasticity is not None:
                # Identity-keyed: membership rebuilds replace controller
                # objects and shift node indices, so the loop re-resolves
                # its controller by node_id each tick.
                thread = threading.Thread(
                    target=self._elastic_control_loop,
                    args=(controller.node_id,),
                    name=f"ctl-{controller.node_id}",
                    daemon=True,
                )
            else:
                thread = threading.Thread(
                    target=self._control_loop,
                    args=(controller,),
                    name=f"ctl-{controller.node_id}",
                    daemon=True,
                )
            self._threads.append(thread)
        if config.elasticity is not None:
            self._threads.append(
                threading.Thread(
                    target=self._elastic_loop, name="elastic", daemon=True
                )
            )

        # Source threads.  ``source_generated`` mirrors the simulator
        # sources' ``stats.generated`` counters (offered load, counted
        # before the admission verdict); single-writer per key, so the
        # forecast tick can read it lock-free.
        self.source_generated: _t.Dict[str, int] = {
            pe_id: 0 for pe_id in self.topology.source_rates
        }
        for pe_id, rate in sorted(self.topology.source_rates.items()):
            self._threads.append(
                threading.Thread(
                    target=self._source_loop,
                    args=(pe_id, rate),
                    name=f"src-{pe_id}",
                    daemon=True,
                )
            )

        if self.forecast is not None:
            self.forecast.bind(
                counters={
                    pe_id: (lambda p=pe_id: self.source_generated[p])
                    for pe_id in sorted(self.topology.source_rates)
                },
                baseline=dict(self.topology.source_rates),
                reoptimize_fn=self._proactive_reoptimize,
                scale_out_fn=self._proactive_scale_out,
                active_after=config.warmup,
            )

    # -- threads ------------------------------------------------------------

    def _control_loop(self, controller: _t.Any) -> None:
        """Pump one node's controller at the dilated control cadence."""
        config = self.config
        period_wall = config.dt * config.dilation
        paused = self.plane.paused
        node_index = controller.node_index
        while not self._stop.is_set():
            if not paused[node_index]:
                controller.tick(self.now())
            time.sleep(period_wall)

    # -- elastic tier (armed runtimes only) ----------------------------------

    def _node_index(self, node_id: str) -> _t.Optional[int]:
        for index, group in enumerate(self.plane.groups):
            if group.node_id == node_id:
                return index
        return None

    def _elastic_control_loop(self, node_id: str) -> None:
        """Identity-keyed control pump; retires when its node leaves."""
        config = self.config
        period_wall = config.dt * config.dilation
        while not self._stop.is_set():
            index = self._node_index(node_id)
            if index is None:
                return
            plane = self.plane
            if index < len(plane.paused) and not plane.paused[index]:
                plane.node_controllers[index].tick(self.now())
            time.sleep(period_wall)

    def _elastic_loop(self) -> None:
        """Tier-3 cadence thread: observe pressure, act on the decision."""
        assert self.elasticity is not None and self.scaling_policy is not None
        period_wall = self.elasticity.check_interval * self.config.dilation
        while not self._stop.is_set():
            time.sleep(period_wall)
            if self._stop.is_set():
                return
            if self.now() < self.config.warmup:
                # Cold channels read as slack; scaling decisions start
                # with the measured window.
                continue
            with self._membership_lock:
                hot, slack = self._pressure()
                decision = self.scaling_policy.observe(
                    hot, self.now(), len(self.plane.groups),
                    slack_pressure=slack,
                )
                if decision == "scale_out":
                    self._scale_out()
                elif decision == "scale_in":
                    self._scale_in()

    def _pressure(self) -> _t.Tuple[float, float]:
        """(hot-spot, slack) scaling signals, both normalized to [0, 1].

        The same pair as the simulator's pressure probe, read from the
        live channels: hot-spot is the max over nodes of mean resident
        fill (drives scale-out); slack is the mean over *all* nodes,
        empty nodes counting as zero (drives scale-in).
        """
        worst = 0.0
        total = 0.0
        groups = self.plane.groups
        for group in groups:
            if not group.pes:
                continue
            fill = sum(
                pe.buffer.occupancy / pe.buffer.capacity for pe in group.pes
            ) / len(group.pes)
            if fill > worst:
                worst = fill
            total += fill
        return worst, (total / len(groups) if groups else 0.0)

    def _require_elastic(self, operation: str) -> None:
        if self.elasticity is None:
            raise RuntimeError(
                f"{operation} requires an elasticity-armed runtime "
                "(RuntimeConfig.elasticity): disarmed control loops are "
                "object-bound and cannot follow membership churn"
            )

    def add_node(self, cpu_capacity: float = 1.0) -> str:
        """Join a fresh empty node: plane group, gauges, control thread."""
        self._require_elastic("add_node")
        node_id = f"node-{self._node_ordinal}"
        self._node_ordinal += 1
        now = self.now()
        self.plane.add_node(node_id, cpu_capacity, now=now)
        self._membership_timeline.append((now, len(self.plane.groups)))
        thread = threading.Thread(
            target=self._elastic_control_loop,
            args=(node_id,),
            name=f"ctl-{node_id}",
            daemon=True,
        )
        if self._start_wall is None:
            self._threads.append(thread)
        else:
            thread.start()
        return node_id

    def remove_node(self, node_index: int) -> str:
        """Leave: the plane refuses non-empty nodes (the same safety
        interlock as the simulator — buffered work and ingress channels
        can never be stranded); the node's control thread retires on its
        next tick."""
        self._require_elastic("remove_node")
        node_id = self.plane.remove_node(node_index, now=self.now())
        self._membership_timeline.append(
            (self.now(), len(self.plane.groups))
        )
        return node_id

    def migrate_pes(
        self,
        moves: _t.Sequence[_t.Tuple[str, int]],
        reason: str = "migration",
    ) -> _t.Optional[PlacementVersion]:
        """Live-migrate PEs between nodes — control-plane re-homing.

        Worker threads own their input channels and never stop draining
        them, so the threaded migration is pure Tier-2/Tier-3 surgery:
        the plane re-homes control state at one epoch boundary and the
        placement book advances.  Downtime is zero by construction; the
        ``migration`` trace family still brackets the epoch so traces
        from both substrates read the same.
        """
        self._require_elastic("migrate_pes")
        now = self.now()
        current = self.placement_book.placement
        num_nodes = len(self.plane.groups)
        actual: _t.List[_t.Tuple[str, int]] = []
        for pe_id, target in moves:
            if pe_id not in self.pes:
                raise KeyError(f"unknown PE {pe_id!r}")
            if not (0 <= target < num_nodes):
                raise ValueError(
                    f"target node {target} outside [0, {num_nodes})"
                )
            if current[pe_id] != target:
                actual.append((pe_id, target))
        if not actual:
            return None
        recording = self.recorder.enabled
        routes: _t.Dict[str, _t.Tuple[str, str]] = {}
        for pe_id, target in actual:
            from_id = self.plane.groups[current[pe_id]].node_id
            to_id = self.plane.groups[target].node_id
            routes[pe_id] = (from_id, to_id)
            if recording:
                self.recorder.emit(
                    "migration",
                    pe=pe_id,
                    node=from_id,
                    phase="drain",
                    to=to_id,
                    occupancy=self.pes[pe_id].buffer.occupancy,
                )
        self.plane.migrate_pes(actual, now=now, reason=reason)
        placement = dict(current)
        for pe_id, target in actual:
            placement[pe_id] = target
        version = self.placement_book.advance(placement, num_nodes, reason)
        for pe_id, target in actual:
            from_id, to_id = routes[pe_id]
            self.migration_log.append(
                MigrationRecord(
                    pe_id=pe_id,
                    t=now,
                    from_node=from_id,
                    to_node=to_id,
                    epoch=version.epoch,
                    handoff_occupancy=self.pes[pe_id].buffer.occupancy,
                    downtime=0.0,
                )
            )
            if recording:
                self.recorder.emit(
                    "migration",
                    pe=pe_id,
                    node=to_id,
                    phase="resume",
                    occupancy=self.pes[pe_id].buffer.occupancy,
                    epoch=version.epoch,
                )
        return version

    def _scale_out(self) -> None:
        """Join a node, re-solve placement, migrate a bounded move set."""
        assert self.elasticity is not None
        config = self.elasticity
        self.add_node()
        num_nodes = len(self.plane.groups)
        load = dict(self.plane.targets.cpu)
        seed = plan_scale_out_placement(
            self.placement_book.placement,
            num_nodes,
            load,
            config.max_migrations_per_epoch,
        )
        refined = optimize_placement(
            self.topology.graph,
            seed,
            self.topology.source_rates,
            num_nodes,
            max_evaluations=config.placement_evaluations,
        ).placement
        current = self.placement_book.placement
        moves = [
            (pe_id, refined[pe_id])
            for pe_id in current
            if refined[pe_id] != current[pe_id]
        ][: config.max_migrations_per_epoch]
        self.migrate_pes(moves, reason="scale_out")
        self.plane.reoptimize(
            self.topology.graph,
            self.placement_book.placement,
            self.topology.source_rates,
            reason="elastic",
        )

    def _scale_in(self) -> None:
        """Evacuate and remove the least-loaded evictable node."""
        assert self.elasticity is not None
        config = self.elasticity
        current = self.placement_book.placement
        num_nodes = len(self.plane.groups)
        load = dict(self.plane.targets.cpu)
        node_load = [0.0] * num_nodes
        node_count = [0] * num_nodes
        for pe_id, node in current.items():
            node_load[node] += load.get(pe_id, 0.0)
            node_count[node] += 1
        candidates = [
            n
            for n in range(num_nodes)
            if node_count[n] <= config.max_migrations_per_epoch
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda n: (node_load[n], -n))
        renumbered = plan_scale_in_placement(
            current, num_nodes, victim, load
        )
        # plan_scale_in returns post-removal indices; the physical moves
        # happen before removal, so map targets back to current indices.
        moves = [
            (pe_id, post if post < victim else post + 1)
            for pe_id, post in renumbered.items()
            if current[pe_id] == victim
        ]
        self.migrate_pes(moves, reason="scale_in")
        self.remove_node(victim)
        self.placement_book.advance(
            renumbered, len(self.plane.groups), "scale_in"
        )
        self.plane.reoptimize(
            self.topology.graph,
            self.placement_book.placement,
            self.topology.source_rates,
            reason="elastic",
        )

    def _node_seconds(self, t0: float, t1: float) -> float:
        """Integrate the membership step function over [t0, t1]."""
        timeline = self._membership_timeline
        total = 0.0
        for i, (t, count) in enumerate(timeline):
            seg_start = max(t, t0)
            seg_end = timeline[i + 1][0] if i + 1 < len(timeline) else t1
            seg_end = min(seg_end, t1)
            if seg_end > seg_start:
                total += (seg_end - seg_start) * count
        return total

    def _supervisor_loop(self) -> None:
        """Detect dead workers and revive them with bounded backoff.

        A worker thread that dies (an injected crash, or a real bug in
        work emulation) would otherwise silently wedge the pipeline: its
        channel fills, upstream backpressure propagates, and throughput
        collapses with no error anywhere.  The supervisor scans every
        ``supervisor_poll`` model-seconds; a dead worker is restarted
        after an exponential-backoff delay, at most
        ``max_worker_restarts`` times, and each revival publishes one
        ``worker_restart`` trace event.
        """
        config = self.config
        poll_wall = config.supervisor_poll * config.dilation
        restarts: _t.Dict[str, int] = {pe_id: 0 for pe_id in self.pes}
        revive_at: _t.Dict[str, _t.Optional[float]] = {
            pe_id: None for pe_id in self.pes
        }
        abandoned: _t.Set[str] = set()
        while not self._stop.is_set():
            time.sleep(poll_wall)
            for pe_id, pe in self.pes.items():
                if self._stop.is_set():
                    return
                if not pe.started or pe.is_alive or pe_id in abandoned:
                    continue
                if restarts[pe_id] >= config.max_worker_restarts:
                    abandoned.add(pe_id)
                    self.workers_abandoned += 1
                    continue
                now_wall = time.monotonic()
                scheduled = revive_at[pe_id]
                if scheduled is None:
                    backoff = (
                        config.restart_backoff_base
                        * config.restart_backoff_factor ** restarts[pe_id]
                        * config.dilation
                    )
                    revive_at[pe_id] = now_wall + backoff
                    continue
                if now_wall < scheduled:
                    continue
                pe.restart()
                restarts[pe_id] += 1
                revive_at[pe_id] = None
                self.worker_restarts += 1
                if self.recorder.enabled:
                    self.recorder.emit(
                        "worker_restart",
                        pe=pe_id,
                        restarts=restarts[pe_id],
                        generation=pe.generation,
                    )

    def _admission_loop(self) -> None:
        """Tick the admission front end at the dilated control cadence."""
        assert self.admission is not None
        config = self.config
        interval = self.admission.config.tick_interval or config.dt
        period_wall = interval * config.dilation
        tick = self.plane.tick_admission
        while not self._stop.is_set():
            time.sleep(period_wall)
            tick(self.now())

    def _forecast_loop(self) -> None:
        """Tick the forecasting tier at its dilated sample cadence.

        Runs under the membership lock: a fired trigger may scale out,
        and membership mutations are serialized with the elastic loop.
        """
        assert self.forecast is not None
        config = self.config
        period_wall = self.forecast.config.sample_interval * config.dilation
        tick = self.plane.tick_forecast
        while not self._stop.is_set():
            time.sleep(period_wall)
            if self._stop.is_set():
                return
            with self._membership_lock:
                tick(self.now())

    def _proactive_reoptimize(
        self, rates: _t.Mapping[str, float]
    ) -> None:
        """Forecast-triggered Tier-1 re-solve from *predicted* rates."""
        self.plane.reoptimize(
            self.topology.graph,
            self.placement_book.placement,
            rates,
            reason="proactive",
        )

    def _proactive_scale_out(self, now: float) -> bool:
        """Forecast-triggered scale-out through the shared elastic
        cooldown; False when no elastic tier is armed or the request
        was vetoed.  Caller (the forecast tick) already holds the
        membership lock."""
        policy = self.scaling_policy
        if policy is None:
            return False
        if not policy.request_external(
            "scale_out", now, len(self.plane.groups)
        ):
            return False
        self._scale_out()
        return True

    def _source_loop(self, pe_id: str, rate: float) -> None:
        config = self.config
        rng = self.streams.stream(f"src:{pe_id}")
        pe = self.pes[pe_id]
        spans_armed = self.spans is not None
        admission = self.admission
        while not self._stop.is_set():
            if config.source_kind == "poisson":
                gap = exponential(rng, 1.0 / rate)
            else:
                gap = 1.0 / rate
            time.sleep(gap * config.dilation)
            origin = self.now()
            self.source_generated[pe_id] += 1
            if admission is not None:
                verdict = admission.admit_ingress(pe_id, origin)
                if verdict == "shed":
                    continue
                if verdict == "reject":
                    # 429 + retry-after: this open-loop client holds all
                    # offers until the horizon passes (same contract the
                    # simulator's sources honour via their backoff hook).
                    time.sleep(
                        admission.config.retry_after * config.dilation
                    )
                    continue
            sdo = SDO(
                stream_id=f"src:{pe_id}",
                origin_time=origin,
            )
            if spans_armed:
                # Enqueued and emitted at birth: the span telescopes from
                # origin_time so the closure identity holds end to end.
                sdo.span = [0.0, 0.0, 0.0, origin, origin]
            pe.channel.offer(sdo)

    # -- run ----------------------------------------------------------------

    def run(
        self,
        duration: float,
        observer: _t.Optional[_t.Callable[["SPCRuntime"], None]] = None,
        observe_interval: float = 1.0,
    ) -> RuntimeReport:
        """Run for ``duration`` model-seconds (plus warm-up) and report.

        When ``observer`` is given it is invoked every ``observe_interval``
        model-seconds during the measured window with the live runtime
        (the ``repro top --watch`` hook); exceptions it raises propagate
        after the runtime is stopped cleanly.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        config = self.config
        self._start_wall = time.monotonic()
        for pe in self.pes.values():
            pe.start()
        for thread in self._threads:
            thread.start()
        if config.supervise:
            threading.Thread(
                target=self._supervisor_loop, name="supervisor", daemon=True
            ).start()

        time.sleep(config.warmup * config.dilation)
        with self._collector_lock:
            self._collector.reset(self.now())
        if self.spans is not None:
            self.spans.reset()
        drops_at_start = sum(
            pe.channel.stats.dropped for pe in self.pes.values()
        )
        admission = self.admission
        shed_at_start = admission.total_shed if admission is not None else 0
        rejected_at_start = (
            admission.total_rejected if admission is not None else 0
        )
        cpu_at_start = sum(pe.cpu_used for pe in self.pes.values())
        started = self.now()

        if observer is None:
            time.sleep(duration * config.dilation)
        else:
            deadline = started + duration
            step_wall = max(0.01, observe_interval * config.dilation)
            try:
                while True:
                    remaining_wall = (deadline - self.now()) * config.dilation
                    if remaining_wall <= 0:
                        break
                    time.sleep(min(step_wall, remaining_wall))
                    if self.now() < deadline:
                        observer(self)
            except BaseException:
                self._stop.set()
                for pe in self.pes.values():
                    pe.stop()
                raise
        ended = self.now()

        self._stop.set()
        for pe in self.pes.values():
            pe.stop()

        with self._collector_lock:
            throughput = self._collector.weighted_throughput(ended)
            latency = self._collector.latency_summary()
            total = self._collector.total_output()
            percentiles = self._collector.latency_percentiles()
            per_egress = {
                pe_id: record.count
                for pe_id, record in self._collector.records().items()
            }
        window = ended - started
        if self.elasticity is not None:
            # Membership varied during the window: normalize CPU use by
            # integrated node-seconds, not a fixed node count.
            cpu_denominator = self._node_seconds(started, ended)
        else:
            cpu_denominator = window * max(1, self.topology.num_nodes)
        channel_drops = (
            sum(pe.channel.stats.dropped for pe in self.pes.values())
            - drops_at_start
        )
        drops_by_kind = {
            "buffer_overflow": channel_drops,
            "flushed": 0,
            "shed": 0,
            "admission_shed": (
                (admission.total_shed - shed_at_start)
                if admission is not None
                else 0
            ),
            "admission_rejected": (
                (admission.total_rejected - rejected_at_start)
                if admission is not None
                else 0
            ),
        }
        return RuntimeReport(
            policy=self.policy.name,
            duration=window,
            weighted_throughput=throughput,
            total_output_sdos=total,
            latency=latency,
            buffer_drops=channel_drops,
            cpu_utilization=(
                (sum(pe.cpu_used for pe in self.pes.values()) - cpu_at_start)
                / cpu_denominator
                if cpu_denominator
                else 0.0
            ),
            per_egress_counts=per_egress,
            worker_restarts=self.worker_restarts,
            workers_abandoned=self.workers_abandoned,
            latency_percentiles=percentiles,
            drops_by_kind=drops_by_kind,
        )


def run_runtime(
    topology: Topology,
    policy_name: str = "aces",
    duration: float = 4.0,
    targets: _t.Optional[AllocationTargets] = None,
    config: _t.Optional[RuntimeConfig] = None,
    recorder: _t.Optional[TraceRecorder] = None,
    spans: _t.Optional["SpanTracker"] = None,
) -> RuntimeReport:
    """One-call entry point mirroring :func:`repro.systems.run_system`."""
    policies: _t.Dict[str, Policy] = {
        "aces": AcesPolicy(),
        "udp": UdpPolicy(),
        "lockstep": LockStepPolicy(),
    }
    runtime = SPCRuntime(
        topology,
        policies[policy_name],
        targets=targets,
        config=config,
        recorder=recorder,
        spans=spans,
    )
    return runtime.run(duration)
