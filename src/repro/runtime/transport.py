"""Bounded inter-PE channels with per-policy admission semantics.

A :class:`Channel` is the runtime's counterpart of the simulator's
:class:`~repro.model.buffers.InputBuffer`: a thread-safe bounded FIFO with
telemetry.  ``offer`` is the UDP/ACES admission (drop on full); ``put``
with a timeout is the Lock-Step blocking admission.
"""

from __future__ import annotations

import threading
import typing as _t
from collections import deque
from dataclasses import dataclass

from repro.model.sdo import SDO


@dataclass
class ChannelStats:
    offered: int = 0
    accepted: int = 0
    dropped: int = 0
    popped: int = 0


class Channel:
    """Thread-safe bounded SDO queue feeding one PE."""

    def __init__(self, capacity: int, name: str = "channel"):
        if capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: _t.Deque[SDO] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self.stats = ChannelStats()

    @property
    def occupancy(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def free(self) -> int:
        with self._lock:
            return self.capacity - len(self._items)

    def offer(self, sdo: SDO) -> bool:
        """Non-blocking admission; False (and a drop) when full."""
        with self._lock:
            self.stats.offered += 1
            if len(self._items) >= self.capacity:
                self.stats.dropped += 1
                return False
            self._items.append(sdo)
            self.stats.accepted += 1
            self._not_empty.notify()
            return True

    def put(self, sdo: SDO, timeout: _t.Optional[float] = None) -> bool:
        """Blocking admission (Lock-Step); False only on timeout."""
        with self._not_full:
            self.stats.offered += 1
            if not self._not_full.wait_for(
                lambda: len(self._items) < self.capacity, timeout=timeout
            ):
                self.stats.dropped += 1
                return False
            self._items.append(sdo)
            self.stats.accepted += 1
            self._not_empty.notify()
            return True

    def clear(self) -> int:
        """Discard everything queued, counting each SDO as a drop.

        Models buffer loss when the owning worker crashes; returns the
        number of SDOs lost.
        """
        with self._lock:
            lost = len(self._items)
            self._items.clear()
            self.stats.dropped += lost
            self._not_full.notify_all()
            return lost

    def get(self, timeout: _t.Optional[float] = None) -> _t.Optional[SDO]:
        """Pop the oldest SDO, waiting up to ``timeout``; None on timeout."""
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: len(self._items) > 0, timeout=timeout
            ):
                return None
            sdo = self._items.popleft()
            self.stats.popped += 1
            self._not_full.notify()
            return sdo

    def __repr__(self) -> str:
        return f"Channel({self.name}, {self.occupancy}/{self.capacity})"
