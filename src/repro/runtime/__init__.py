"""A real (threaded) mini stream-processing runtime — the SPC analogue.

The paper evaluates ACES both in the SPC (IBM's Stream Processing Core)
and in a simulator calibrated against it.  This package plays the SPC's
role: PEs are worker threads connected by real bounded queues; each node
runs a wall-clock control loop that reuses the *exact same* controller
classes (:class:`~repro.core.flow_control.FlowController`,
:class:`~repro.core.feedback.FeedbackBus`, the CPU schedulers) as the
simulator, so the calibration experiment compares one control
implementation across two substrates.

Processing cost is emulated by sleeping ``T_S / c`` wall-seconds per SDO
(fractional CPU as slowdown) — under the GIL, sleeping rather than burning
cycles is what keeps a 60-PE topology runnable on one machine.  A time
dilation factor scales all model times so experiments finish quickly.
"""

from repro.runtime.spc import RuntimeReport, SPCRuntime, RuntimeConfig

__all__ = ["RuntimeConfig", "RuntimeReport", "SPCRuntime"]
