"""repro — a full reproduction of *Adaptive Control of Extreme-scale
Stream Processing Systems* (Amini et al., ICDCS 2006).

Quickstart::

    import numpy as np
    from repro import (
        AcesPolicy, SystemConfig, generate_topology, run_system,
        solve_global_allocation, TopologySpec,
    )

    spec = TopologySpec(num_nodes=5, num_ingress=4, num_egress=4,
                        num_intermediate=12)
    topology = generate_topology(spec, np.random.default_rng(0))
    report = run_system(topology, AcesPolicy(), duration=20.0)
    print(report.one_line())

Package layout (see DESIGN.md for the full inventory):

=====================  ====================================================
``repro.sim``          discrete-event simulation kernel (C-SIM analogue)
``repro.model``        SDOs, PEs, buffers, nodes, workload sources
``repro.graph``        processing DAG, topology generator, placement
``repro.core``         ACES: global optimization, LQR flow control,
                       token-bucket CPU control, policies
``repro.systems``      the simulated DSPS + stability analysis
``repro.runtime``      threaded mini-SPC (real queues and worker threads)
``repro.metrics``      weighted throughput, latency, summary statistics
``repro.obs``          controller-internals tracing, gauges, profiling
``repro.experiments``  per-figure experiment harness
=====================  ====================================================
"""

from repro.core.global_opt import solve_global_allocation
from repro.core.lqr import design_gains
from repro.core.policies import (
    AcesPolicy,
    LockStepPolicy,
    Policy,
    UdpPolicy,
    policy_by_name,
)
from repro.core.targets import AllocationTargets, fair_share_targets
from repro.graph.dag import ProcessingGraph
from repro.graph.topology import Topology, TopologySpec, generate_topology
from repro.metrics.collectors import MetricsReport
from repro.model.params import DEFAULTS, PEProfile
from repro.obs import (
    GaugeRegistry,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    PhaseProfiler,
    TraceFilter,
    TraceRecorder,
)
from repro.runtime.spc import RuntimeConfig, SPCRuntime
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system

__version__ = "1.0.0"

__all__ = [
    "AcesPolicy",
    "AllocationTargets",
    "DEFAULTS",
    "GaugeRegistry",
    "JsonlRecorder",
    "LockStepPolicy",
    "MemoryRecorder",
    "MetricsReport",
    "NullRecorder",
    "PEProfile",
    "PhaseProfiler",
    "Policy",
    "ProcessingGraph",
    "RuntimeConfig",
    "SPCRuntime",
    "SimulatedSystem",
    "SystemConfig",
    "Topology",
    "TopologySpec",
    "TraceFilter",
    "TraceRecorder",
    "UdpPolicy",
    "design_gains",
    "fair_share_targets",
    "generate_topology",
    "policy_by_name",
    "run_system",
    "solve_global_allocation",
    "__version__",
]
