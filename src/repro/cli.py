"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``      generate a topology and print its structure
``solve``     run the Tier-1 optimization and print allocation targets
``run``       simulate one policy on a random topology
``compare``   simulate several policies on the same topology
``trace``     simulate one policy with full controller telemetry
``figure``    regenerate one of the paper's figures/claims
``calibrate`` run the simulator-vs-threaded-runtime comparison
``chaos``     run the resilience fault matrix (MTTR, utility retention)
``admit``     run the admission burst matrix (plain vs ACES + admission)
``elastic``   run the elasticity ramp matrix (static vs autoscaled)
``forecast``  run the forecasting matrix (reactive vs proactive)
``fuzz``      seeded scenario fuzzing with invariant oracles armed

Examples::

    python -m repro info --pes 60 --nodes 10
    python -m repro compare --policies aces,udp,lockstep --buffer 20
    python -m repro trace --policy aces --duration 5 --trace out.jsonl
    python -m repro trace --trace-filter kind=r_max|drop,pe=pe-3 --profile
    python -m repro trace --check --duration 5
    python -m repro figure fig5
    python -m repro chaos --smoke --output BENCH_resilience.json
    python -m repro admit --smoke --output BENCH_admission.json
    python -m repro elastic --smoke --output BENCH_elasticity.json
    python -m repro forecast --smoke --output BENCH_forecast.json
    python -m repro fuzz --seeds 100 --output fuzz.jsonl
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

import numpy as np

from repro.check import OracleRecorder, check_conservation
from repro.core.global_opt import solve_global_allocation
from repro.core.policies import policy_by_name
from repro.experiments import figures
from repro.experiments.calibration import calibration_spec, run_calibration
from repro.experiments.config import calibration_experiment, main_experiment
from repro.experiments.reporting import print_table
from repro.graph.topology import Topology, TopologySpec, generate_topology
from repro.obs.export import write_events_csv, write_gauges_csv
from repro.obs.profiler import PhaseProfiler
from repro.obs.recorder import (
    JsonlRecorder,
    MemoryRecorder,
    TraceFilter,
    TraceRecorder,
)
from repro.obs.spans import SpanTracker
from repro.obs.surface import (
    render_prometheus,
    render_top,
    snapshot_runtime,
    snapshot_system,
)
from repro.systems.simulated import SimulatedSystem, SystemConfig, run_system


def _topology_from_args(args: argparse.Namespace) -> Topology:
    ingress = max(1, args.pes // 5)
    egress = max(1, args.pes // 5)
    spec = TopologySpec(
        num_nodes=args.nodes,
        num_ingress=ingress,
        num_egress=egress,
        num_intermediate=max(0, args.pes - ingress - egress),
        lambda_s=args.lambda_s,
        load_factor=args.load,
    )
    return generate_topology(spec, np.random.default_rng(args.seed))


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pes", type=int, default=60, help="total PE count")
    parser.add_argument("--nodes", type=int, default=10, help="node count")
    parser.add_argument("--seed", type=int, default=0, help="topology seed")
    parser.add_argument(
        "--lambda-s", dest="lambda_s", type=float, default=10.0,
        help="burstiness scale (paper lambda_s)",
    )
    parser.add_argument(
        "--load", type=float, default=1.2,
        help="offered load relative to fair-share capacity",
    )


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--buffer", type=int, default=50, help="buffer size B")
    parser.add_argument(
        "--duration", type=float, default=20.0, help="measured seconds"
    )
    parser.add_argument(
        "--warmup", type=float, default=5.0, help="warm-up seconds"
    )
    parser.add_argument(
        "--reoptimize", type=float, default=None, metavar="SECONDS",
        help="refresh Tier-1 targets every SECONDS from measured rates",
    )
    parser.add_argument(
        "--link-bandwidth", dest="link_bandwidth", type=float, default=None,
        help="finite inter-node link bandwidth (SDO sizes / second)",
    )


def cmd_info(args: argparse.Namespace) -> int:
    topology = _topology_from_args(args)
    graph = topology.graph
    print(
        f"PEs: {len(graph)} (ingress {len(graph.ingress_ids)}, "
        f"egress {len(graph.egress_ids)}, "
        f"intermediate {len(graph.intermediate_ids)})"
    )
    print(f"Edges: {len(graph.edges())}, depth: {graph.depth()}")
    print(f"Nodes: {topology.num_nodes}")
    multi = sum(
        1
        for p in graph.pe_ids
        if graph.fan_in(p) > 1 or graph.fan_out(p) > 1
    )
    print(f"Multi-IO PEs: {multi} ({multi / len(graph):.0%})")
    components = graph.connected_components()
    print(f"Connected components: {len(components)}")
    offered = sum(topology.source_rates.values())
    print(f"Offered load: {offered:.1f} SDO/s over "
          f"{len(topology.source_rates)} input streams")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    topology = _topology_from_args(args)
    result = solve_global_allocation(
        topology.graph,
        topology.placement,
        topology.source_rates,
        solver=args.solver,
    )
    print(
        f"solver={result.solver} objective={result.objective:.3f} "
        f"converged={result.converged} "
        f"violation={result.max_violation:.2e}"
    )
    rows = [
        {
            "pe": pe_id,
            "node": topology.placement[pe_id],
            "cpu": result.targets.cpu[pe_id],
            "rate_in": result.targets.rate_in[pe_id],
            "rate_out": result.targets.rate_out[pe_id],
            "weight": topology.graph.profile(pe_id).weight,
        }
        for pe_id in topology.graph.topological_order()
    ]
    print_table(rows, title="Tier-1 allocation targets", precision=3)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    topology = _topology_from_args(args)
    policy = policy_by_name(args.policy)
    report = run_system(
        topology,
        policy,
        duration=args.duration,
        config=SystemConfig(
            buffer_size=args.buffer,
            warmup=args.warmup,
            seed=args.seed + 1,
            reoptimize_interval=args.reoptimize,
            link_bandwidth=args.link_bandwidth,
        ),
    )
    print(report.one_line())
    print(
        f"cpu={report.cpu_utilization:.2f} "
        f"occupancy={report.mean_buffer_occupancy:.1f} "
        f"wasted={report.wasted_work_fraction:.3f} "
        f"input_loss={report.input_loss_rate:.3f}"
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    topology = _topology_from_args(args)
    targets = solve_global_allocation(
        topology.graph, topology.placement, topology.source_rates
    ).targets
    rows = []
    for name in args.policies.split(","):
        policy = policy_by_name(name.strip())
        report = run_system(
            topology,
            policy,
            duration=args.duration,
            targets=targets,
            config=SystemConfig(
                buffer_size=args.buffer,
                warmup=args.warmup,
                seed=args.seed + 1,
                reoptimize_interval=args.reoptimize,
                link_bandwidth=args.link_bandwidth,
            ),
        )
        pct = report.latency_percentiles
        rows.append(
            {
                "policy": report.policy,
                "weighted_throughput": report.weighted_throughput,
                "latency_ms": report.latency.mean * 1000,
                "latency_std_ms": report.latency.std * 1000,
                "latency_p50_ms": pct.get("p50", 0.0) * 1000,
                "latency_p95_ms": pct.get("p95", 0.0) * 1000,
                "latency_p99_ms": pct.get("p99", 0.0) * 1000,
                "drops": report.buffer_drops,
                "rejections": report.source_rejections,
                "cpu": report.cpu_utilization,
            }
        )
    print_table(rows, title=f"{len(topology.graph)} PEs, B={args.buffer}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    topology = _topology_from_args(args)
    policy = policy_by_name(args.policy)
    trace_filter = TraceFilter.parse(args.trace_filter)

    # With --check, the oracle sits in front and applies the keep-filter
    # itself; the file recorder then stores whatever the oracle admits.
    file_recorder: TraceRecorder
    sink_filter = None if args.check else trace_filter
    if args.format == "csv":
        # CSV needs the column union up front, so buffer in memory.
        file_recorder = MemoryRecorder(trace_filter=sink_filter)
    else:
        file_recorder = JsonlRecorder(args.trace, trace_filter=sink_filter)
    oracle: _t.Optional[OracleRecorder] = None
    recorder: TraceRecorder = file_recorder
    if args.check:
        # Live threaded runs interleave worker state with checking, so
        # only the substrate-safe subset of the oracles runs there.
        oracle = OracleRecorder(
            strict=args.substrate == "sim",
            trace_filter=trace_filter,
            sink=file_recorder,
        )
        recorder = oracle
    profiler = PhaseProfiler() if args.profile else None
    gauge_cadence = args.gauge_cadence if args.gauge_cadence > 0 else None
    spans = SpanTracker(recorder=recorder) if args.spans else None

    if args.substrate == "threaded":
        return _trace_threaded(
            args, topology, policy, recorder, file_recorder, oracle, spans
        )

    system = SimulatedSystem(
        topology,
        policy,
        config=SystemConfig(
            buffer_size=args.buffer,
            warmup=args.warmup,
            seed=args.seed + 1,
            reoptimize_interval=args.reoptimize,
            link_bandwidth=args.link_bandwidth,
        ),
        recorder=recorder,
        profiler=profiler,
        gauge_cadence=gauge_cadence,
        spans=spans,
    )
    if oracle is not None:
        oracle.attach_plane(system.plane)
    report = system.run(args.duration)

    if args.format == "csv":
        assert isinstance(file_recorder, MemoryRecorder)
        write_events_csv(file_recorder.events, args.trace)
    recorder.close()

    print(report.one_line())
    total = sum(recorder.counts.values())
    breakdown = " ".join(
        f"{kind}={count}" for kind, count in sorted(recorder.counts.items())
    )
    print(f"trace: {total} events -> {args.trace} ({breakdown})")
    if args.gauges is not None and system.gauges is None:
        print("gauges: not written (sampling disabled by --gauge-cadence 0)")
    elif system.gauges is not None and args.gauges is not None:
        count = write_gauges_csv(system.gauges, args.gauges)
        print(
            f"gauges: {count} samples from {len(system.gauges)} gauges "
            f"-> {args.gauges}"
        )
    if profiler is not None:
        print(profiler.one_line())
    if spans is not None:
        _print_span_rows(spans)
    if oracle is not None:
        oracle.finalize()
        violations = list(oracle.violations)
        violations.extend(check_conservation(system))
        print(oracle.summary())
        for violation in violations[:10]:
            print(
                f"  {violation.invariant} ({violation.equation}) "
                f"t={violation.t:.3f} pe={violation.pe}: {violation.detail}"
            )
        if violations:
            return 1
    return 0


def _print_span_rows(spans: "SpanTracker") -> None:
    """Print the per-hop span decomposition (the --spans view)."""
    rows = spans.hop_rows()
    if rows:
        print_table(rows, title="latency spans (per hop)", precision=3)
    print(
        f"spans: {spans.egress_spans} egress spans, "
        f"{len(spans.violations)} closure violation(s)"
    )
    for violation in spans.violations[:5]:
        print(f"  span_closure t={violation['t']:.3f} "
              f"pe={violation['pe']}: {violation['detail']}")


def _trace_threaded(
    args: argparse.Namespace,
    topology: Topology,
    policy: _t.Any,
    recorder: TraceRecorder,
    file_recorder: TraceRecorder,
    oracle: _t.Optional["OracleRecorder"],
    spans: _t.Optional["SpanTracker"] = None,
) -> int:
    """Trace the same control plane on the threaded runtime substrate."""
    from repro.runtime.spc import RuntimeConfig, SPCRuntime

    runtime = SPCRuntime(
        topology,
        policy,
        config=RuntimeConfig(
            buffer_size=args.buffer,
            warmup=args.warmup,
            seed=args.seed + 1,
        ),
        recorder=recorder,
        spans=spans,
    )
    if oracle is not None:
        oracle.attach_plane(runtime.plane)
    report = runtime.run(args.duration)

    if args.format == "csv":
        assert isinstance(file_recorder, MemoryRecorder)
        write_events_csv(file_recorder.events, args.trace)
    recorder.close()

    pct = report.latency_percentiles
    print(
        f"{report.policy} [threaded]: "
        f"throughput={report.weighted_throughput:.2f} "
        f"output={report.total_output_sdos} "
        f"latency_mean={report.latency.mean:.4f} "
        f"p50/p95/p99={pct.get('p50', 0.0) * 1000:.1f}/"
        f"{pct.get('p95', 0.0) * 1000:.1f}/"
        f"{pct.get('p99', 0.0) * 1000:.1f}ms "
        f"drops={report.buffer_drops}"
    )
    if spans is not None:
        _print_span_rows(spans)
    total = sum(recorder.counts.values())
    breakdown = " ".join(
        f"{kind}={count}" for kind, count in sorted(recorder.counts.items())
    )
    print(f"trace: {total} events -> {args.trace} ({breakdown})")
    if args.gauges is not None:
        print("gauges: not available on the threaded substrate")
    if args.profile:
        print("profile: not available on the threaded substrate")
    if oracle is not None:
        oracle.finalize()
        print(oracle.summary())
        for violation in oracle.violations[:10]:
            print(
                f"  {violation.invariant} ({violation.equation}) "
                f"pe={violation.pe}: {violation.detail}"
            )
        if oracle.violations:
            return 1
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live metrics surface: per-stream percentiles, PEs, span hops."""
    topology = _topology_from_args(args)
    policy = policy_by_name(args.policy)
    spans = SpanTracker(locking=args.substrate == "threaded") \
        if args.spans else None
    watch = args.watch and not args.once

    if args.substrate == "threaded":
        from repro.runtime.spc import RuntimeConfig, SPCRuntime

        runtime = SPCRuntime(
            topology,
            policy,
            config=RuntimeConfig(
                buffer_size=args.buffer,
                warmup=args.warmup,
                seed=args.seed + 1,
            ),
            spans=spans,
        )
        observer = None
        if watch:
            def observer(live: SPCRuntime) -> None:
                print(render_top(snapshot_runtime(live)))

        runtime.run(
            args.duration, observer=observer, observe_interval=args.interval
        )
        snapshot = snapshot_runtime(runtime)
    else:
        system = SimulatedSystem(
            topology,
            policy,
            config=SystemConfig(
                buffer_size=args.buffer,
                warmup=args.warmup,
                seed=args.seed + 1,
                reoptimize_interval=args.reoptimize,
                link_bandwidth=args.link_bandwidth,
            ),
            spans=spans,
        )
        if watch:
            # Virtual-time watch: step the engine one interval at a time
            # and render between steps (same warmup/reset protocol as
            # SimulatedSystem.run).
            env = system.env
            if system.config.warmup > 0:
                env.run(until=system.config.warmup)
            system.collector.reset(env.now)
            if spans is not None:
                spans.reset()
            end = env.now + args.duration
            while env.now < end:
                env.run(until=min(env.now + args.interval, end))
                print(render_top(snapshot_system(system)))
        else:
            system.run(args.duration)
        snapshot = snapshot_system(system)

    if not watch:
        print(render_top(snapshot), end="")
    if args.prometheus is not None:
        text = render_prometheus(snapshot)
        if args.prometheus == "-":
            print(text, end="")
        else:
            with open(args.prometheus, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"prometheus: {len(text.splitlines())} lines "
                  f"-> {args.prometheus}")
    if snapshot.span_violations:
        print(f"error: {snapshot.span_violations} span closure violation(s)",
              file=sys.stderr)
        return 1
    return 0


_FIGURES: _t.Dict[str, _t.Callable] = {
    "fig3": figures.figure3_latency,
    "fig4": figures.figure4_tradeoff,
    "fig5": figures.figure5_burstiness,
    "buffer-sweep": figures.buffer_sweep,
    "robustness": figures.robustness,
}


def cmd_figure(args: argparse.Namespace) -> int:
    function = _FIGURES[args.name]
    if args.full:
        config = main_experiment(duration=20.0, replications=3)
    else:
        config = calibration_experiment(
            duration=8.0, replications=2
        ).with_system(warmup=4.0)
    rows = function(config=config, jobs=args.jobs)
    print_table(rows, title=f"{args.name} ({config.name})", precision=3)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.resilience import (
        SCENARIOS,
        run_chaos_matrix,
        write_resilience_bench,
    )

    if args.smoke:
        spec = TopologySpec(
            num_nodes=4, num_ingress=4, num_egress=4, num_intermediate=12,
            lambda_s=args.lambda_s, load_factor=args.load,
        )
        duration, warmup = 6.0, 1.5
        policies = ["aces"]
    else:
        ingress = max(1, args.pes // 5)
        egress = max(1, args.pes // 5)
        spec = TopologySpec(
            num_nodes=args.nodes,
            num_ingress=ingress,
            num_egress=egress,
            num_intermediate=max(0, args.pes - ingress - egress),
            lambda_s=args.lambda_s,
            load_factor=args.load,
        )
        duration, warmup = args.duration, args.warmup
        policies = [name.strip() for name in args.policies.split(",")]

    scenarios = (
        [name.strip() for name in args.scenarios.split(",")]
        if args.scenarios
        else None
    )
    results = run_chaos_matrix(
        spec,
        policies=policies,
        scenarios=scenarios,
        duration=duration,
        warmup=warmup,
        seed=args.seed,
        jobs=args.jobs or 1,
        admission=args.admission,
    )
    write_resilience_bench(results, args.output)

    rows = [
        {
            "scenario": cell["scenario"],
            "policy": cell["policy"],
            "admission": "on" if cell["admission"] else "off",
            "retention": cell["utility_retention"],
            "mttr": cell["mttr"],
            "drops": cell["drops"],
            "stale": cell["events"]["feedback_stale"],
            "fallback": cell["events"]["tier1_fallback"],
            "ladder": len(cell["ladder_timeline"]),
            "error": cell["error"] or "-",
        }
        for cell in results["cells"]
    ]
    print_table(
        rows,
        title=(
            f"resilience matrix ({len(SCENARIOS)} scenarios available, "
            f"{len(results['cells'])} cells run)"
        ),
        precision=3,
    )
    errors = [cell for cell in results["cells"] if cell["error"]]
    unrecovered = [
        cell for cell in results["cells"] if not cell["recovered"]
    ]
    print(
        f"cells={len(results['cells'])} errors={len(errors)} "
        f"unrecovered={len(unrecovered)} -> {args.output}"
    )
    return 1 if errors else 0


def cmd_admit(args: argparse.Namespace) -> int:
    from repro.experiments.admission import (
        run_admission_matrix,
        write_admission_bench,
    )

    if args.smoke:
        workloads = ["squarewave"]
        lambdas: _t.List[float] = [10.0]
        duration, warmup = 10.0, 2.0
    else:
        workloads = [name.strip() for name in args.workloads.split(",")]
        lambdas = [float(value) for value in args.lambdas.split(",")]
        duration, warmup = args.duration, args.warmup

    results = run_admission_matrix(
        workloads=workloads,
        lambdas=lambdas,
        duration=duration,
        warmup=warmup,
        seed=args.seed,
        slo_p95=args.slo,
    )
    write_admission_bench(results, args.output)

    rows = [
        {
            "workload": cell["workload"],
            "lambda_s": cell["lambda_s"],
            "mode": cell["mode"],
            "worst_p95_ms": cell["worst_stream_p95"] * 1000.0,
            "slo_met": cell["slo_met"],
            "wutil": cell["weighted_utility"],
            "retention": (
                cell["utility_retention"]
                if cell["utility_retention"] is not None
                else "-"
            ),
            "shed": cell["admission_shed"],
            "rejected": cell["admission_rejected"],
            "trans": cell["ladder_transitions"],
            "osc": cell["ladder_oscillations"],
            "violations": len(cell["violations"]),
            "error": cell["error"] or "-",
        }
        for cell in results["cells"]
    ]
    print_table(
        rows,
        title=(
            f"admission burst matrix (SLO p95 <= "
            f"{results['slo_p95'] * 1000:.0f}ms)"
        ),
        precision=3,
    )
    summary = results["summary"]
    print(
        f"cells={len(results['cells'])} "
        f"plain_slo_violations={summary['plain_slo_violations']} "
        f"held={summary['admission_cells_held']} "
        f"oscillations={summary['total_oscillations']} "
        f"violations={summary['total_violations']} "
        f"errors={summary['errors']} -> {args.output}"
    )
    return 0 if summary["clean"] else 1


def cmd_elastic(args: argparse.Namespace) -> int:
    from repro.experiments.elasticity import (
        run_elasticity_matrix,
        write_elasticity_bench,
    )

    if args.smoke:
        policies = ["udp"]
        duration, warmup = 12.0, 1.0
    else:
        policies = [name.strip() for name in args.policies.split(",")]
        duration, warmup = args.duration, args.warmup
    for name in policies:
        policy_by_name(name)  # fail fast on unknown policy names

    results = run_elasticity_matrix(
        policies=policies,
        duration=duration,
        warmup=warmup,
        seed=args.seed,
        max_nodes=args.max_nodes,
    )
    write_elasticity_bench(results, args.output)

    rows = [
        {
            "policy": cell["policy"],
            "mode": cell["mode"],
            "wutil": cell["weighted_utility"],
            "retention": (
                cell["utility_retention"]
                if cell["utility_retention"] is not None
                else "-"
            ),
            "out/in": f"{cell['scale_outs']}/{cell['scale_ins']}",
            "peak": cell["peak_nodes"],
            "final": cell["final_nodes"],
            "migrations": cell["migrations"],
            "downtime_max_ms": cell["downtime_max"] * 1000.0,
            "node_seconds": cell["node_seconds"],
            "stranded": cell["stranded_sdos"],
            "violations": len(cell["violations"]),
            "error": cell["error"] or "-",
        }
        for cell in results["cells"]
    ]
    print_table(
        rows,
        title=(
            f"elasticity ramp matrix (downtime bound "
            f"{results['downtime_bound']:.1f}s)"
        ),
        precision=3,
    )
    summary = results["summary"]
    print(
        f"cells={len(results['cells'])} "
        f"scale_outs={summary['total_scale_outs']} "
        f"scale_ins={summary['total_scale_ins']} "
        f"migrations={summary['total_migrations']} "
        f"stranded={summary['total_stranded_sdos']} "
        f"violations={summary['total_violations']} "
        f"errors={summary['errors']} -> {args.output}"
    )
    return 0 if summary["clean"] else 1


def cmd_forecast(args: argparse.Namespace) -> int:
    from repro.experiments.forecast import (
        SCENARIOS,
        run_forecast_matrix,
        write_forecast_bench,
    )

    if args.smoke:
        scenarios = ["flashcrowd"]
        duration, warmup = 12.0, 1.0
    else:
        scenarios = (
            [name.strip() for name in args.scenarios.split(",")]
            if args.scenarios
            else list(SCENARIOS)
        )
        duration, warmup = args.duration, args.warmup
    for name in scenarios:  # fail fast on unknown scenario names
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r} (library: {', '.join(SCENARIOS)})"
            )

    results = run_forecast_matrix(
        scenarios=scenarios,
        duration=duration,
        warmup=warmup,
        seed=args.seed,
        max_nodes=args.max_nodes,
    )
    write_forecast_bench(results, args.output)

    rows = [
        {
            "scenario": cell["scenario"],
            "mode": cell["mode"],
            "wutil": cell["weighted_utility"],
            "retention": (
                cell["utility_retention"]
                if cell["utility_retention"] is not None
                else "-"
            ),
            "triggers": cell["forecast_triggers"],
            "mae": cell["forecast_mae"],
            "out/in": f"{cell['scale_outs']}/{cell['scale_ins']}",
            "peak": cell["peak_nodes"],
            "drops": cell["buffer_drops"],
            "violations": len(cell["violations"]),
            "error": cell["error"] or "-",
        }
        for cell in results["cells"]
    ]
    print_table(
        rows,
        title="forecast matrix (reactive vs proactive control)",
        precision=3,
    )
    summary = results["summary"]
    retention = summary["utility_retention_min"]
    print(
        f"cells={len(results['cells'])} "
        f"triggers={summary['total_triggers']} "
        f"retention_min="
        f"{retention if retention is not None else '-'} "
        f"violations={summary['total_violations']} "
        f"errors={summary['errors']} -> {args.output}"
    )
    return 0 if summary["clean"] else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.experiments.fuzzing import DEFAULT_POLICIES, run_fuzz_campaign

    if args.seeds <= 0:
        raise ValueError(f"--seeds must be positive, got {args.seeds}")
    if args.policies:
        policies = [name.strip() for name in args.policies.split(",")]
    else:
        policies = list(DEFAULT_POLICIES)
    for name in policies:
        policy_by_name(name)  # fail fast on unknown policy names

    seeds = range(args.seed_start, args.seed_start + args.seeds)
    summary = run_fuzz_campaign(
        seeds,
        policies=policies,
        differential=not args.no_differential,
        shrink=not args.no_shrink,
        output=args.output,
        log=print,
        control_impl=args.control_impl,
    )
    destination = f" -> {args.output}" if args.output else ""
    print(
        f"fuzz: {summary['cases']} cases over {summary['seeds']} seeds x "
        f"{len(policies)} policies, {len(summary['failures'])} "
        f"failure(s){destination}"
    )
    for failure in summary["failures"]:
        shrunk = failure.get("shrunk_scenario")
        where = (
            f"shrunk to seed={shrunk['seed']} nodes={shrunk['num_nodes']} "
            f"pes={shrunk['num_ingress'] + shrunk['num_egress'] + shrunk['num_intermediate']} "
            f"faults={len(shrunk['faults'])}"
            if shrunk
            else "not shrunk"
        )
        print(
            f"  seed={failure['seed']} policy={failure['policy']} "
            f"[{failure['mode']}]: "
            f"{failure['error'] or failure['violation_counts'] or 'mismatch'} "
            f"({where})"
        )
    return 0 if summary["ok"] else 1


def cmd_calibrate(args: argparse.Namespace) -> int:
    topology = generate_topology(
        calibration_spec(scale=args.scale), np.random.default_rng(args.seed)
    )
    rows = run_calibration(
        topology=topology,
        sim_duration=args.duration,
        runtime_duration=max(2.0, args.duration / 2),
        seed=args.seed,
    )
    print_table(
        [
            {
                "policy": row.policy,
                "sim_throughput": row.simulator_throughput,
                "runtime_throughput": row.runtime_throughput,
                "ratio": row.throughput_ratio,
            }
            for row in rows
        ],
        title="simulator vs threaded runtime",
        precision=2,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "ACES reproduction: adaptive control of extreme-scale stream "
            "processing systems (ICDCS 2006)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe a random topology")
    _add_topology_arguments(info)
    info.set_defaults(handler=cmd_info)

    solve = subparsers.add_parser("solve", help="Tier-1 allocation targets")
    _add_topology_arguments(solve)
    solve.add_argument(
        "--solver", choices=("auto", "slsqp", "projected_gradient"),
        default="auto",
    )
    solve.set_defaults(handler=cmd_solve)

    run = subparsers.add_parser("run", help="simulate one policy")
    _add_topology_arguments(run)
    _add_run_arguments(run)
    run.add_argument(
        "--policy", default="aces",
        choices=("aces", "udp", "lockstep", "shedding"),
    )
    run.set_defaults(handler=cmd_run)

    compare = subparsers.add_parser(
        "compare", help="simulate several policies on one topology"
    )
    _add_topology_arguments(compare)
    _add_run_arguments(compare)
    compare.add_argument(
        "--policies", default="aces,udp,lockstep",
        help="comma-separated policy names",
    )
    compare.set_defaults(handler=cmd_compare)

    trace = subparsers.add_parser(
        "trace",
        help="simulate one policy with full controller telemetry",
        description=(
            "Run one policy and record controller-internals trace events "
            "(r_max updates, token buckets, CPU grants, buffer occupancy, "
            "drops, Tier-1 re-solves) to a JSONL/CSV file."
        ),
    )
    _add_topology_arguments(trace)
    _add_run_arguments(trace)
    trace.add_argument(
        "--policy", default="aces",
        choices=("aces", "udp", "lockstep", "shedding"),
    )
    trace.add_argument(
        "--trace", default="trace.jsonl", metavar="PATH",
        help="trace event output file (default trace.jsonl)",
    )
    trace.add_argument(
        "--substrate", choices=("sim", "threaded"), default="sim",
        help=(
            "execution substrate driving the shared control plane: the "
            "discrete-event simulator (default) or the threaded runtime"
        ),
    )
    trace.add_argument(
        "--trace-filter", dest="trace_filter", default=None,
        metavar="EXPR",
        help=(
            "keep-filter, e.g. kind=r_max|drop,pe=pe-3 "
            "(keys: kind, pe, node; | separates alternatives)"
        ),
    )
    trace.add_argument(
        "--format", choices=("jsonl", "csv"), default="jsonl",
        help="trace file format (csv buffers all events in memory)",
    )
    trace.add_argument(
        "--gauge-cadence", dest="gauge_cadence", type=float, default=0.1,
        metavar="SECONDS",
        help="gauge sampling period in virtual seconds (0 disables)",
    )
    trace.add_argument(
        "--gauges", default=None, metavar="PATH",
        help="also export sampled gauge series to this CSV file",
    )
    trace.add_argument(
        "--profile", action="store_true",
        help="attribute wall-clock time to sim-engine phases",
    )
    trace.add_argument(
        "--check", action="store_true",
        help=(
            "validate paper invariants (Eqs. 4/7/8, token bounds, SDO "
            "conservation) on every recorded event; exit 1 on violation. "
            "A --trace-filter limits which events are checked."
        ),
    )
    trace.add_argument(
        "--spans", action="store_true",
        help=(
            "arm per-SDO latency spans: decompose end-to-end latency into "
            "queue-wait/service/transit per hop, emit one span event per "
            "egress SDO, and print the per-hop percentile table"
        ),
    )
    trace.set_defaults(handler=cmd_trace)

    top = subparsers.add_parser(
        "top",
        help="live metrics surface (percentiles, occupancy, span hops)",
        description=(
            "Run one policy and render the live metrics surface: "
            "per-egress-stream p50/p95/p99 latency, per-PE occupancy and "
            "r_max, drop counters, and (with --spans) the per-hop "
            "queue/service/transit decomposition.  One-shot by default; "
            "--watch re-renders every --interval model seconds."
        ),
    )
    _add_topology_arguments(top)
    _add_run_arguments(top)
    top.add_argument(
        "--policy", default="aces",
        choices=("aces", "udp", "lockstep", "shedding"),
    )
    top.add_argument(
        "--substrate", choices=("sim", "threaded"), default="sim",
        help="execution substrate (default: discrete-event simulator)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single snapshot after the run (the default)",
    )
    top.add_argument(
        "--watch", action="store_true",
        help="re-render the surface every --interval model seconds",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="watch-mode refresh period in model seconds (default 1.0)",
    )
    top.add_argument(
        "--spans", action="store_true",
        help="arm per-SDO latency spans and show the per-hop table",
    )
    top.add_argument(
        "--prometheus", default=None, metavar="PATH",
        help="also write Prometheus text exposition ('-' for stdout)",
    )
    top.set_defaults(handler=cmd_top)

    figure = subparsers.add_parser(
        "figure", help="regenerate a paper figure/claim"
    )
    figure.add_argument("name", choices=sorted(_FIGURES))
    figure.add_argument(
        "--full", action="store_true",
        help="paper scale (200 PEs / 80 nodes) instead of the quick scale",
    )
    figure.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "fan each cell's (replication x policy) grid across N worker "
            "processes; results are identical to a serial run"
        ),
    )
    figure.set_defaults(handler=cmd_figure)

    chaos = subparsers.add_parser(
        "chaos",
        help="resilience fault matrix (MTTR, utility retention, drops)",
        description=(
            "Inject each fault scenario (data-plane and control-plane) "
            "into a mid-run window for every requested policy, measure "
            "utility retention during the fault and MTTR afterwards, and "
            "write the matrix to a JSON benchmark file."
        ),
    )
    _add_topology_arguments(chaos)
    chaos.add_argument(
        "--policies", default="aces,udp,lockstep",
        help="comma-separated policy names",
    )
    chaos.add_argument(
        "--scenarios", default=None,
        help="comma-separated scenario names (default: all)",
    )
    chaos.add_argument(
        "--duration", type=float, default=10.0, help="measured seconds"
    )
    chaos.add_argument(
        "--warmup", type=float, default=2.0, help="warm-up seconds"
    )
    chaos.add_argument(
        "--output", default="BENCH_resilience.json", metavar="PATH",
        help="benchmark JSON output file",
    )
    chaos.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan matrix cells across N worker processes",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="reduced CI matrix: small topology, short run, ACES only",
    )
    chaos.add_argument(
        "--admission", action="store_true",
        help=(
            "double the matrix: run every cell plain AND with the "
            "SLO-aware admission front end armed (admission cells carry "
            "the degradation-ladder timeline)"
        ),
    )
    chaos.set_defaults(handler=cmd_chaos)

    admit = subparsers.add_parser(
        "admit",
        help="admission burst matrix (plain ACES vs ACES + admission)",
        description=(
            "Run burst workloads (square-wave and flash-crowd sources) at "
            "several Fig. 5 burstiness scales, plain and with the "
            "SLO-aware admission front end armed, with strict invariant "
            "oracles watching every cell, and write the matrix to a JSON "
            "benchmark file.  Exits nonzero on any SLO defense failure, "
            "ladder oscillation, or invariant violation."
        ),
    )
    admit.add_argument(
        "--workloads", default="squarewave,flashcrowd",
        help="comma-separated burst workload kinds",
    )
    admit.add_argument(
        "--lambdas", default="5,10,25",
        help="comma-separated lambda_s burstiness scales",
    )
    admit.add_argument(
        "--duration", type=float, default=15.0, help="measured seconds"
    )
    admit.add_argument(
        "--warmup", type=float, default=2.0, help="warm-up seconds"
    )
    admit.add_argument(
        "--slo", type=float, default=2.5, metavar="SECONDS",
        help="end-to-end p95 SLO the front end defends (default 2.5)",
    )
    admit.add_argument("--seed", type=int, default=0, help="matrix seed")
    admit.add_argument(
        "--output", default="BENCH_admission.json", metavar="PATH",
        help="benchmark JSON output file",
    )
    admit.add_argument(
        "--smoke", action="store_true",
        help="reduced CI matrix: one workload, one lambda_s, short run",
    )
    admit.set_defaults(handler=cmd_admit)

    elastic = subparsers.add_parser(
        "elastic",
        help="elasticity ramp matrix (static vs autoscaled cluster)",
        description=(
            "Run flash-crowd scale-out/in ramps per policy, with the "
            "cluster membership frozen (static) and with the Tier-3 "
            "elastic tier armed (autoscaling + live PE migration), strict "
            "invariant oracles watching every cell, and write the matrix "
            "to a JSON benchmark file.  Exits nonzero if any elastic cell "
            "fails to scale, exceeds the migration downtime bound, "
            "strands SDOs, or violates an invariant."
        ),
    )
    elastic.add_argument(
        "--policies", default="aces,udp",
        help="comma-separated policy names (default aces,udp)",
    )
    elastic.add_argument(
        "--duration", type=float, default=18.0, help="measured seconds"
    )
    elastic.add_argument(
        "--warmup", type=float, default=1.0, help="warm-up seconds"
    )
    elastic.add_argument(
        "--max-nodes", dest="max_nodes", type=int, default=5,
        help="autoscaler node ceiling (default 5)",
    )
    elastic.add_argument("--seed", type=int, default=0, help="matrix seed")
    elastic.add_argument(
        "--output", default="BENCH_elasticity.json", metavar="PATH",
        help="benchmark JSON output file",
    )
    elastic.add_argument(
        "--smoke", action="store_true",
        help="reduced CI matrix: UDP only, short run",
    )
    elastic.set_defaults(handler=cmd_elastic)

    forecast = subparsers.add_parser(
        "forecast",
        help="forecasting matrix (reactive vs proactive control)",
        description=(
            "Run every scenario-library workload twice — purely reactive "
            "(elastic tier only) and proactive (the forecasting tier "
            "additionally armed: Holt-Winters rate forecasts triggering "
            "Tier-1 re-solves and early scale-out ahead of predicted "
            "load shifts) — with strict invariant oracles watching every "
            "cell, and write the matrix to a JSON benchmark file.  Exits "
            "nonzero if any proactive cell loses utility against its "
            "reactive twin, no cell triggers, or an invariant is "
            "violated."
        ),
    )
    forecast.add_argument(
        "--scenarios", default="",
        help="comma-separated scenario names (default: the full library)",
    )
    forecast.add_argument(
        "--duration", type=float, default=16.0, help="measured seconds"
    )
    forecast.add_argument(
        "--warmup", type=float, default=1.0, help="warm-up seconds"
    )
    forecast.add_argument(
        "--max-nodes", dest="max_nodes", type=int, default=5,
        help="autoscaler node ceiling (default 5)",
    )
    forecast.add_argument("--seed", type=int, default=0, help="matrix seed")
    forecast.add_argument(
        "--output", default="BENCH_forecast.json", metavar="PATH",
        help="benchmark JSON output file",
    )
    forecast.add_argument(
        "--smoke", action="store_true",
        help="reduced CI matrix: flash-crowd scenario only, short run",
    )
    forecast.set_defaults(handler=cmd_forecast)

    calibrate = subparsers.add_parser(
        "calibrate", help="simulator vs threaded runtime"
    )
    calibrate.add_argument("--scale", type=float, default=0.4)
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.add_argument("--duration", type=float, default=6.0)
    calibrate.set_defaults(handler=cmd_calibrate)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="seeded scenario fuzzing with invariant oracles armed",
        description=(
            "Expand each seed into a random topology/workload/fault "
            "scenario, run it under every policy with the paper-invariant "
            "oracles armed (plus a scripted cross-substrate differential "
            "drive), log violations as JSONL, and shrink failures to "
            "minimal reproducers."
        ),
    )
    fuzz.add_argument(
        "--seeds", type=int, default=25, metavar="N",
        help="number of scenario seeds to fuzz (default 25)",
    )
    fuzz.add_argument(
        "--seed-start", dest="seed_start", type=int, default=0,
        help="first seed of the range (default 0)",
    )
    fuzz.add_argument(
        "--policies", default=None,
        help="comma-separated policy names (default udp,lockstep,aces)",
    )
    fuzz.add_argument(
        "--output", default=None, metavar="PATH",
        help="write one JSON line per fuzz case to this file",
    )
    fuzz.add_argument(
        "--no-differential", action="store_true",
        help="skip the scripted sim-vs-threaded differential pass",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimizing them",
    )
    fuzz.add_argument(
        "--control-impl", dest="control_impl",
        choices=("scalar", "vector"), default="scalar",
        help="Tier-2 step implementation to fuzz (default scalar)",
    )
    fuzz.set_defaults(handler=cmd_fuzz)

    return parser


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
