"""Online invariant oracles and conservation checks (``repro.check``).

The checking layer of the reproduction: paper-derived invariants (Eqs.
4, 7, 8; Sections V-D/V-E) validated on every Tier-2 control step via
the trace event bus, plus an end-of-run SDO conservation ledger for the
simulated substrate.  See :mod:`repro.check.oracles` for the online
checks and :mod:`repro.check.conservation` for the ledger; the seeded
scenario fuzzer that exercises them lives in
:mod:`repro.experiments.fuzzing`.
"""

from repro.check.conservation import check_conservation
from repro.check.oracles import InvariantViolation, OracleRecorder

__all__ = [
    "InvariantViolation",
    "OracleRecorder",
    "check_conservation",
]
