"""Online invariant oracles over the trace event bus.

The paper states its guarantees as invariants; this module checks them
*online*, on every Tier-2 control step, in whichever substrate is
emitting trace events:

* **Eq. 7 (flow control)** — every published ``r_max`` is finite,
  non-negative (the ``[.]+`` clip), and equal to an independently
  maintained reference implementation of the LQR law (including the
  physical free-space clamp) evaluated on the event's own
  ``(occupancy, rho)`` measurements.
* **Eq. 8 (feedback cap)** — every ACES CPU grant respects
  ``c_j <= g_j^{-1}(r_o,j)``: the grant never exceeds the CPU needed to
  produce the output rate downstream advertised (re-derived from the
  PE's rate model, not trusted from the scheduler).
* **Eq. 4 / Section V-D (capacity)** — per node and per control
  interval, granted CPU fractions sum to at most the node's (live,
  fault-adjusted) capacity; token-bucket levels stay within
  ``[0, depth]``.
* **Gate/pause consistency** — a PE blocked by its Lock-Step gate
  receives a zero grant; a paused (controller-outage) node emits no
  control events at all.
* **Tier-1 targets** — the allocation targets in effect always satisfy
  the per-node capacity constraint ``sum_j c̄_j <= capacity``.
* **Admission ladder** (when the plane carries an admission front end) —
  every ``admission_level`` event respects the ladder contract: automatic
  transitions are monotonic downgrades (recovery moves exactly one rank
  up), no two ladder transitions fall within one ``min_dwell`` window,
  transitions are consistent with the hysteresis band they claim
  (adaptive moves only at/above the target level's enter threshold,
  recoveries only at/below the left level's exit threshold), the kill
  switch always resolves to ``KILL``, and ``KILL`` is never entered
  adaptively.  ``shed``/``reject`` events are only legal at the levels
  that shed/reject.  The enter/exit bands themselves are validated once
  at attach time.
* **Forecast tier** (when the plane carries a forecasting tier) — every
  ``forecast`` tick publishes finite, non-negative signals whose ratio
  is exactly ``predicted / baseline``; every ``proactive_trigger`` cites
  a ratio at or above the configured headroom, and consecutive triggers
  respect the forecast cooldown.

:class:`OracleRecorder` is a :class:`~repro.obs.recorder.TraceRecorder`:
arm it by passing it as the ``recorder`` of a simulated system, threaded
runtime, or bare control plane, then call :meth:`attach_plane` with the
plane so the oracle gets its narrow live view
(:meth:`~repro.control.plane.ControlPlane.inspection`).  Violations are
collected, not raised — a fuzzing campaign wants the full list.

``strict`` mode additionally checks invariants that are only exact when
control steps are serialized (the simulator, or a scripted drive of
either substrate's plane): the Eq. 8 re-derivation through the PE's
*current-state* rate model, gate/grant consistency, and the paused-node
check.  A live threaded run interleaves worker state transitions with
checking, so those become approximate there — pass ``strict=False`` and
the oracle falls back to the substrate-safe subset.
"""

from __future__ import annotations

import math
import typing as _t
from collections import Counter, deque
from dataclasses import dataclass

from repro.control.admission import ADAPTIVE_LEVELS, AdmissionLevel
from repro.obs.recorder import TraceFilter, TraceRecorder

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.admission import AdmissionController
    from repro.control.forecast import ForecastController
    from repro.control.plane import ControlPlane, PlaneInspection

_INF = float("inf")
_isfinite = math.isfinite


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation of a paper-derived invariant."""

    #: Machine-readable invariant name, e.g. ``"r_max_nonnegative"``.
    invariant: str
    #: The paper anchor, e.g. ``"Eq. 7"`` or ``"Section V-D"``.
    equation: str
    #: Virtual time of the offending event (0.0 for end-of-run checks).
    t: float
    pe: _t.Optional[str]
    node: _t.Optional[str]
    #: Human-readable description with the observed vs expected values.
    detail: str

    def as_dict(self) -> _t.Dict[str, object]:
        return {
            "invariant": self.invariant,
            "equation": self.equation,
            "t": self.t,
            "pe": self.pe,
            "node": self.node,
            "detail": self.detail,
        }


def _make_shadow(controller: _t.Any) -> _t.Tuple[_t.Any, ...]:
    """Reference Eq. 7 state for one PE, fed from r_max event payloads.

    A ``(lambdas, mus, b0, capacity, inv_dt, deviations, surpluses)``
    tuple mirroring the real controller's internal histories: deviations
    are rebuilt from each event's measured occupancy, surpluses from the
    controller's *actual* published ``r_max`` — so each event is judged
    on its own step given the state the real controller was in, and one
    wrong step does not cascade into false positives on later steps.
    The law itself is evaluated inline in :meth:`OracleRecorder._write`
    (the per-event hot path).
    """
    lambdas = tuple(controller.gains.lambdas)
    mus = tuple(controller.gains.mus)
    surplus_len = max(len(mus), 1)
    return (
        lambdas,
        mus,
        float(controller.b0),
        float(controller.capacity),
        1.0 / float(controller.gains.dt),
        deque([0.0] * len(lambdas), maxlen=len(lambdas)),
        deque([0.0] * surplus_len, maxlen=surplus_len),
    )


class OracleRecorder(TraceRecorder):
    """A trace recorder that validates invariants instead of storing.

    Parameters
    ----------
    plane:
        Control plane to check against; may also be attached later via
        :meth:`attach_plane` (required for anything beyond payload-level
        checks, since systems emit a few bootstrap events — the initial
        Tier-1 solve — before their plane exists).
    strict:
        Enable the serialized-execution-only checks (see module docs).
    tolerance:
        Relative floating-point slack for the arithmetic comparisons.
    sink:
        Optional downstream recorder each admitted event is forwarded to
        after checking (so one run can be both checked and recorded).
    max_violations:
        Detail-retention cap; past it violations are still *counted*
        (:attr:`violation_counts`) but their records are dropped.
    """

    def __init__(
        self,
        plane: _t.Optional["ControlPlane"] = None,
        strict: bool = True,
        tolerance: float = 1e-9,
        clock: _t.Optional[_t.Callable[[], float]] = None,
        trace_filter: _t.Optional[TraceFilter] = None,
        sink: _t.Optional[TraceRecorder] = None,
        max_violations: int = 1000,
    ):
        super().__init__(clock=clock, trace_filter=trace_filter)
        self.strict = strict
        self.tolerance = tolerance
        self.sink = sink
        self.max_violations = max_violations
        self.violations: _t.List[InvariantViolation] = []
        self.violation_counts: Counter = Counter()
        self._inspection: _t.Optional["PlaneInspection"] = None
        #: pe_id -> reference Eq. 7 state (see :func:`_make_shadow`).
        self._shadows: _t.Dict[str, _t.Tuple[_t.Any, ...]] = {}
        #: pe_id -> (node_id, scheduler, node_controller, machine-or-None,
        #: t0/lambda_m, t1/lambda_m, group_size, node_index) — flattened
        #: at attach time so the per-event cpu_grant check is a single
        #: dict lookup, with the Eq. 8 g^-1 slope precomputed per state.
        self._grant_info: _t.Dict[str, _t.Tuple[_t.Any, ...]] = {}
        #: node_id -> [running grant-fraction sum, events in this group],
        #: mutated in place per event.
        self._grant_groups: _t.Dict[str, _t.List[float]] = {}
        self._paused: _t.Sequence[bool] = ()
        #: The plane's admission front end, when armed.
        self._admission: _t.Optional["AdmissionController"] = None
        #: Rank of the last effective level seen in events.
        self._adm_last_rank = 0
        #: Time of the last *ladder* transition (adaptive/recovery,
        #: shadowed or not); operator actions don't reset the dwell.
        self._adm_last_ladder_t: _t.Optional[float] = None
        #: The plane's forecasting tier, when armed.
        self._forecast: _t.Optional["ForecastController"] = None
        #: Time of the last proactive trigger (cooldown spacing check).
        self._fc_last_trigger_t: _t.Optional[float] = None
        if plane is not None:
            self.attach_plane(plane)

    # -- wiring --------------------------------------------------------------

    def attach_plane(self, plane: "ControlPlane") -> None:
        """Bind the plane whose invariants this oracle checks.

        Builds the reference Eq. 7 shadows from the plane's designed
        gains; call before the run starts so the shadows and the real
        controllers share their all-zero initial histories.
        """
        inspection = plane.inspection()
        self._inspection = inspection
        self._shadows = {
            pe_id: _make_shadow(controller)
            for pe_id, controller in inspection.controllers.items()
        }
        self._rebind_inspection(inspection)
        # Membership rebuilds (the elastic tier) invalidate every view
        # this oracle flattened at attach time; re-flatten at each epoch
        # boundary, preserving the Eq. 7 shadow histories of surviving
        # PEs (their real controllers' histories survive too).
        plane.add_rebuild_hook(self.refresh_plane)

        self._admission = getattr(inspection, "admission", None)
        self._adm_last_rank = 0
        self._adm_last_ladder_t = None
        self._forecast = getattr(inspection, "forecast", None)
        self._fc_last_trigger_t = None
        if self._admission is not None:
            # Static hysteresis-band validation: a malformed band (enter
            # at or below exit, or non-increasing enters) lets pressure
            # hovering at one value trigger repeated transitions, which
            # is precisely what hysteresis exists to exclude.
            config = self._admission.config
            for index, level in enumerate(ADAPTIVE_LEVELS):
                if config.enter[index] <= config.exit[index]:
                    self.record_violation(
                        "admission_band_consistency", "ladder hysteresis",
                        f"{level.name}: enter={config.enter[index]} is not "
                        f"strictly above exit={config.exit[index]}",
                    )
                if index and config.enter[index] <= config.enter[index - 1]:
                    self.record_violation(
                        "admission_band_consistency", "ladder hysteresis",
                        f"enter thresholds not strictly increasing: "
                        f"{config.enter}",
                    )

    def refresh_plane(self, plane: "ControlPlane") -> None:
        """Re-flatten the oracle's views after a membership rebuild.

        Shadows of surviving PEs are kept (Eq. 7 histories continue
        across an epoch boundary exactly like the real controllers');
        departed PEs are dropped and new ones get zero-history shadows.
        Any partially accumulated capacity round is discarded — the
        rebuild replaces node controllers mid-round, so the next full
        round restarts the Eq. 4 sum.
        """
        inspection = plane.inspection()
        self._inspection = inspection
        controllers = inspection.controllers
        for pe_id in [p for p in self._shadows if p not in controllers]:
            del self._shadows[pe_id]
        for pe_id, controller in controllers.items():
            if pe_id not in self._shadows:
                self._shadows[pe_id] = _make_shadow(controller)
        self._rebind_inspection(inspection)

    def _rebind_inspection(self, inspection: "PlaneInspection") -> None:
        """Flatten the per-event lookup tables from one inspection view."""
        self._grant_groups = {}
        self._paused = inspection.paused

        def _eq8_terms(pe_id: str) -> _t.Tuple[_t.Any, float, float]:
            # g^-1(rate) = rate / lambda_m * service_time, where the
            # service time is t1 or t0 by the machine's *current* state
            # (see PERuntime.cpu_for_output_rate_now) — precompute both
            # slopes so the per-event check is one mul and a state read.
            pe_runtime = inspection.pes.get(pe_id)
            if pe_runtime is None:
                return (None, 0.0, 0.0)
            profile = pe_runtime.profile
            return (
                pe_runtime.machine,
                profile.t0 / profile.lambda_m,
                profile.t1 / profile.lambda_m,
            )

        self._grant_info = {
            pe_id: (
                node_id,
                inspection.schedulers[node_id],
                inspection.node_controllers.get(node_id),
                *_eq8_terms(pe_id),
                inspection.group_sizes.get(node_id, 0),
                inspection.node_index[node_id],
            )
            for pe_id, node_id in inspection.node_of.items()
        }

    def bind_clock(self, clock: _t.Callable[[], float]) -> None:
        super().bind_clock(clock)
        if self.sink is not None:
            self.sink.bind_clock(clock)

    # -- violation plumbing --------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while no invariant has been violated."""
        return not self.violation_counts

    def record_violation(
        self,
        invariant: str,
        equation: str,
        detail: str,
        t: float = 0.0,
        pe: _t.Optional[str] = None,
        node: _t.Optional[str] = None,
    ) -> None:
        self.violation_counts[invariant] += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(
                InvariantViolation(
                    invariant=invariant,
                    equation=equation,
                    t=t,
                    pe=pe,
                    node=node,
                    detail=detail,
                )
            )

    def summary(self) -> str:
        if self.ok:
            return "oracles: all invariants held"
        breakdown = " ".join(
            f"{name}={count}"
            for name, count in sorted(self.violation_counts.items())
        )
        return (
            f"oracles: {sum(self.violation_counts.values())} violation(s) "
            f"({breakdown})"
        )

    # -- the checking sink ---------------------------------------------------

    def _write(self, event: _t.Dict[str, _t.Any]) -> None:
        """Check one admitted event, then forward it to the sink.

        This is the per-event hot path — it runs under the emit lock on
        every trace event of both substrates, so all four per-kind checks
        are inlined here (no per-event dispatch or helper calls) and the
        happy path is a handful of dict lookups and float compares, with
        violation formatting kept on the cold path.
        """
        kind = event["kind"]
        tolerance = self.tolerance

        if kind == "buffer_occupancy":
            # Section IV: occupancy within [0, capacity].
            occupancy = event["occupancy"]
            if not 0 <= occupancy <= event["capacity"]:
                self.record_violation(
                    "buffer_bounds", "Section IV",
                    f"occupancy {occupancy} outside "
                    f"[0, {event['capacity']}]",
                    t=event["t"], pe=event["pe"],
                )

        elif kind == "token_bucket":
            # Section V-D: token level within [0, depth].
            level = event["level"]
            depth = event["depth"]
            slack = tolerance * depth if depth > 1.0 else tolerance
            if not -slack <= level <= depth + slack:
                if level < -slack:
                    self.record_violation(
                        "token_nonnegative", "Section V-D",
                        f"token level {level} < 0",
                        t=event["t"], pe=event["pe"],
                        node=event.get("node"),
                    )
                else:
                    self.record_violation(
                        "token_cap", "Section V-D",
                        f"token level {level} exceeds bucket depth {depth}",
                        t=event["t"], pe=event["pe"],
                        node=event.get("node"),
                    )

        elif kind == "r_max":
            # Eq. 7: finite, clipped at zero, and equal to the reference
            # LQR law evaluated on the event's own measurements.
            r_max = event["r_max"]
            occupancy = event["occupancy"]
            rho = event["rho"]
            if not _isfinite(r_max):
                self.record_violation(
                    "r_max_finite", "Eq. 7",
                    f"r_max={r_max!r} is not finite",
                    t=event["t"], pe=event["pe"],
                )
                shadow = None  # skip the law; still forward to the sink
            else:
                if r_max < 0.0:
                    self.record_violation(
                        "r_max_nonnegative", "Eq. 7",
                        f"r_max={r_max} < 0 (the [.]+ clip was not "
                        f"applied)",
                        t=event["t"], pe=event["pe"],
                    )
                shadow = self._shadows.get(event["pe"])
            if shadow is not None:
                lambdas, mus, b0, capacity, inv_dt, deviations, surpluses \
                    = shadow
                deviations.appendleft(occupancy - b0)
                # Designed gains carry one or two lags; unroll those so
                # the per-event law is loop- and allocation-free.
                n = len(lambdas)
                if n == 2:
                    reference = (
                        rho
                        - lambdas[0] * deviations[0]
                        - lambdas[1] * deviations[1]
                    )
                elif n == 1:
                    reference = rho - lambdas[0] * deviations[0]
                else:
                    reference = rho
                    for i in range(n):
                        reference -= lambdas[i] * deviations[i]
                n = len(mus)
                if n == 1:
                    reference -= mus[0] * surpluses[0]
                elif n:
                    for i in range(n):
                        reference -= mus[i] * surpluses[i]
                if reference < 0.0:
                    reference = 0.0
                free = capacity - occupancy
                ceiling = (free if free > 0.0 else 0.0) * inv_dt + rho
                if reference > ceiling:
                    reference = ceiling
                delta = r_max - reference
                slack = tolerance * reference if reference > 1.0 \
                    else tolerance
                if delta > slack or -delta > slack:
                    self.record_violation(
                        "r_max_law", "Eq. 7",
                        f"r_max={r_max} but the LQR law with the same "
                        f"(occupancy={occupancy}, rho={rho}) and history "
                        f"gives {reference}",
                        t=event["t"], pe=event["pe"],
                    )
                # Mirror the real controller's post-update surplus
                # history from its *actual* published value.
                surpluses.appendleft(r_max - rho)

        elif kind == "cpu_grant":
            grant = event["cpu"]
            pe = event["pe"]
            if grant < -tolerance or not _isfinite(grant):
                self.record_violation(
                    "cpu_grant_nonnegative", "Section V-D",
                    f"cpu grant {grant!r} is negative or non-finite",
                    t=event["t"], pe=pe, node=event.get("node"),
                )
            info = self._grant_info.get(pe)
            if info is not None:
                (node_id, scheduler, controller, machine,
                 t0_slope, t1_slope, group_size, index) = info

                strict = self.strict
                if strict:
                    if self._paused[index]:
                        self.record_violation(
                            "paused_node_silent", "Section V-E",
                            "a suspended node's controller emitted a "
                            "CPU grant",
                            t=event["t"], pe=pe, node=node_id,
                        )
                    if (
                        grant > tolerance
                        and controller is not None
                        and pe in controller.last_blocked
                    ):
                        self.record_violation(
                            "gate_blocked_zero_grant",
                            "Section VI (Lock-Step)",
                            f"gate-blocked PE granted cpu={grant}",
                            t=event["t"], pe=pe, node=node_id,
                        )

                # Eq. 8: the grant never exceeds g^{-1} of the advertised
                # bound.  ACES events carry the bound they were capped
                # under (None when downstream left the PE unconstrained).
                cap_rate = event.get("cap_rate", _INF)
                if cap_rate is not _INF and cap_rate is not None:
                    cap_cpu = scheduler.capacity
                    if strict and machine is not None:
                        if cap_rate <= 0.0:
                            derived = 0.0
                        elif machine.state == 1:
                            derived = cap_rate * t1_slope
                        else:
                            derived = cap_rate * t0_slope
                        if derived < cap_cpu:
                            cap_cpu = derived
                    slack = tolerance * cap_cpu if cap_cpu > 1.0 \
                        else tolerance
                    if grant > cap_cpu + slack:
                        self.record_violation(
                            "feedback_cap", "Eq. 8",
                            f"cpu grant {grant} exceeds the feedback cap "
                            f"g^-1({cap_rate}) = {cap_cpu}",
                            t=event["t"], pe=pe, node=node_id,
                        )

                # Eq. 4 / V-D: grants of one allocation round sum to
                # <= capacity.  Rounds are delimited by event count (one
                # cpu_grant per resident PE per round), which is
                # substrate- and clock-agnostic.
                if group_size > 0:
                    group = self._grant_groups.get(node_id)
                    if group is None:
                        group = self._grant_groups[node_id] = [0.0, 0]
                    group[0] += grant
                    group[1] += 1
                    if group[1] >= group_size:
                        total = group[0]
                        capacity = scheduler.capacity
                        slack = tolerance * capacity if capacity > 1.0 \
                            else tolerance
                        if total > capacity + slack:
                            self.record_violation(
                                "node_capacity", "Eq. 4",
                                f"granted CPU fractions sum to {total} "
                                f"on a node with capacity {capacity}",
                                t=event["t"], node=node_id,
                            )
                        group[0] = 0.0
                        group[1] = 0

        elif kind == "tier1_resolve":
            # Eq. 4 on the targets in effect whenever Tier 1 (re-)solves.
            if self._inspection is not None:
                self.check_targets(t=event["t"])

        elif kind == "admission_level":
            t = event["t"]
            cause = event["cause"]
            try:
                rank = int(AdmissionLevel[event["level"]])
                prev_rank = int(AdmissionLevel[event["prev"]])
            except KeyError:
                self.record_violation(
                    "admission_level_known", "ladder levels",
                    f"unknown level in {event['prev']!r} -> "
                    f"{event['level']!r}",
                    t=t,
                )
                rank = prev_rank = -1
            is_ladder_move = cause in ("adaptive", "recovery")
            if rank >= 0:
                if cause == "adaptive":
                    # Monotonic-downgrade-only, and never into KILL.
                    if rank <= prev_rank:
                        self.record_violation(
                            "admission_monotonic_downgrade",
                            "ladder monotonicity",
                            f"adaptive move {event['prev']} -> "
                            f"{event['level']} does not increase rank",
                            t=t,
                        )
                    if rank >= int(AdmissionLevel.KILL):
                        self.record_violation(
                            "admission_kill_adaptive", "ladder priority",
                            "KILL entered by an adaptive transition",
                            t=t,
                        )
                elif cause == "recovery":
                    if prev_rank - rank != 1:
                        self.record_violation(
                            "admission_recovery_single_step",
                            "ladder monotonicity",
                            f"recovery {event['prev']} -> {event['level']} "
                            f"is not exactly one rank down",
                            t=t,
                        )
                if cause == "kill" and rank != int(AdmissionLevel.KILL):
                    self.record_violation(
                        "admission_priority", "ladder priority",
                        f"kill switch resolved to {event['level']}, "
                        f"not KILL",
                        t=t,
                    )
                admission = self._admission
                if (
                    self.strict
                    and admission is not None
                    and not event.get("shadowed", False)
                ):
                    # Priority resolver consistency against the live
                    # controller (events are checked synchronously at
                    # emit time under serialized execution).
                    if admission.kill_switch and rank != int(
                        AdmissionLevel.KILL
                    ):
                        self.record_violation(
                            "admission_priority", "ladder priority",
                            f"effective level {event['level']} while the "
                            f"kill switch is engaged",
                            t=t,
                        )
                    elif (
                        not admission.kill_switch
                        and admission.manual_level is not None
                        and rank != int(admission.manual_level)
                    ):
                        self.record_violation(
                            "admission_priority", "ladder priority",
                            f"effective level {event['level']} while "
                            f"manual override pins "
                            f"{admission.manual_level.name}",
                            t=t,
                        )
            if is_ladder_move:
                admission = self._admission
                if admission is not None:
                    config = admission.config
                    last = self._adm_last_ladder_t
                    if last is not None:
                        gap = t - last
                        slack = tolerance * max(1.0, config.min_dwell)
                        if gap < config.min_dwell - slack:
                            self.record_violation(
                                "admission_dwell", "ladder dwell time",
                                f"ladder transitions {gap:.6f}s apart "
                                f"(min_dwell={config.min_dwell})",
                                t=t,
                            )
                    self._adm_last_ladder_t = t
                    # Hysteresis consistency: the claimed pressure must
                    # actually cross the band the transition cites.
                    pressure = event["pressure"]
                    slack = tolerance
                    if cause == "adaptive" and 0 < rank <= int(
                        AdmissionLevel.REJECT
                    ):
                        threshold = config.enter_threshold(
                            AdmissionLevel(rank)
                        )
                        if pressure < threshold - slack:
                            self.record_violation(
                                "admission_hysteresis", "ladder hysteresis",
                                f"adaptive move to {event['level']} at "
                                f"pressure {pressure} below enter "
                                f"threshold {threshold}",
                                t=t,
                            )
                    elif cause == "recovery" and 0 < prev_rank <= int(
                        AdmissionLevel.REJECT
                    ):
                        threshold = config.exit_threshold(
                            AdmissionLevel(prev_rank)
                        )
                        if pressure > threshold + slack:
                            self.record_violation(
                                "admission_hysteresis", "ladder hysteresis",
                                f"recovery from {event['prev']} at "
                                f"pressure {pressure} above exit "
                                f"threshold {threshold}",
                                t=t,
                            )
            if rank >= 0 and not event.get("shadowed", False):
                self._adm_last_rank = rank

        elif kind == "shed":
            # Shedding is only legal at the shedding levels.
            if event["level"] not in ("SHED_LOW", "SHED_HIGH"):
                self.record_violation(
                    "admission_shed_level", "ladder levels",
                    f"shed at level {event['level']}",
                    t=event["t"], pe=event["pe"],
                )

        elif kind == "reject":
            if event["level"] not in ("REJECT", "KILL"):
                self.record_violation(
                    "admission_reject_level", "ladder levels",
                    f"reject at level {event['level']}",
                    t=event["t"], pe=event["pe"],
                )

        elif kind == "forecast":
            # Every forecast tick publishes finite, non-negative signals,
            # and the headroom ratio it acts on is exactly
            # predicted / baseline (the trigger predicate's inputs).
            clean = True
            for name in ("predicted", "observed", "baseline", "ratio"):
                value = event[name]
                if not _isfinite(value) or value < 0:
                    self.record_violation(
                        "forecast_signal_range", "forecast tier",
                        f"{name}={value} is not finite and non-negative",
                        t=event["t"],
                    )
                    clean = False
            if clean and event["baseline"] > 0:
                expected = event["predicted"] / event["baseline"]
                if abs(event["ratio"] - expected) > tolerance * max(
                    1.0, expected
                ):
                    self.record_violation(
                        "forecast_ratio_consistency", "forecast tier",
                        f"ratio {event['ratio']} != predicted/baseline "
                        f"= {expected}",
                        t=event["t"],
                    )

        elif kind == "proactive_trigger":
            # A trigger must cite a ratio at or above the configured
            # headroom, and consecutive triggers must respect the
            # forecast cooldown (the anti-thrash contract).
            t = event["t"]
            forecast = self._forecast
            if forecast is not None:
                config = forecast.config
                if event["ratio"] < config.headroom - tolerance:
                    self.record_violation(
                        "proactive_headroom", "forecast trigger",
                        f"trigger at ratio {event['ratio']} below "
                        f"headroom {config.headroom}",
                        t=t,
                    )
                last = self._fc_last_trigger_t
                if last is not None:
                    gap = t - last
                    slack = tolerance * max(1.0, config.cooldown)
                    if gap < config.cooldown - slack:
                        self.record_violation(
                            "proactive_cooldown", "forecast trigger",
                            f"proactive triggers {gap:.6f}s apart "
                            f"(cooldown={config.cooldown})",
                            t=t,
                        )
            self._fc_last_trigger_t = t

        sink = self.sink
        if sink is not None:
            sink._write(event)

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def check_targets(self, t: float = 0.0) -> None:
        """Validate the live Tier-1 targets against nominal capacities.

        Targets are the *nominal* budget (a transiently slowed node may
        legitimately be over-budgeted until the next re-solve), so this
        checks against the nominal — not fault-adjusted — capacity.  The
        solver's own constraint tolerance sets the slack.
        """
        inspection = self._inspection
        if inspection is None:
            return
        plane = inspection.plane
        targets = plane.targets
        # Budgets are checked under the placement the targets were
        # *adopted* for: a live migration moves PEs without touching
        # targets, so summing over the post-migration placement would
        # flag a transient that Eq. 4 enforcement (the per-grant check)
        # already covers.  Nodes removed since adoption are skipped.
        node_of = getattr(plane, "targets_node_of", None)
        if node_of is None:
            node_of = inspection.node_of
        sums: _t.Dict[str, float] = {
            node_id: 0.0 for node_id in inspection.nominal_capacity
        }
        for pe_id, cpu in targets.cpu.items():
            if cpu < -1e-9:
                self.record_violation(
                    "target_cpu_nonnegative", "Eq. 4",
                    f"Tier-1 cpu target {cpu} < 0", t=t, pe=pe_id,
                )
            node_id = node_of.get(pe_id)
            if node_id is not None and node_id in sums:
                sums[node_id] += cpu
        for node_id, total in sums.items():
            capacity = inspection.nominal_capacity[node_id]
            if total > capacity + 1e-4 * max(1.0, capacity):
                self.record_violation(
                    "target_capacity", "Eq. 4",
                    f"Tier-1 cpu targets sum to {total} on a node with "
                    f"nominal capacity {capacity}",
                    t=t, node=node_id,
                )

    def finalize(self) -> _t.List[InvariantViolation]:
        """End-of-run checks; returns the accumulated violation list."""
        self.check_targets()
        return self.violations

    def __repr__(self) -> str:
        return (
            f"OracleRecorder(strict={self.strict}, "
            f"violations={sum(self.violation_counts.values())})"
        )
