"""End-to-end SDO conservation ledger for the simulated substrate.

Every SDO that enters a :class:`~repro.systems.simulated.SimulatedSystem`
must be accounted for somewhere: delivered to the egress collector,
dropped (overflow, shed, or crash-flush), still buffered, in execution,
or in flight on a link.  :func:`check_conservation` closes that ledger
after a run from the system's lifetime counters:

per input buffer
    ``offered == accepted + (dropped - flushed)`` and
    ``accepted == popped + flushed + occupancy`` — flush losses are
    *accepted* SDOs, so they are carried by the ``flushed`` counter, not
    double-counted against ``offered``.

per PE
    ``popped == consumed + in_progress`` and ``cpu_used <= cpu_granted``.

globally
    ``sum(offered) == sum(generated) + emit_attempts - shed_drops -
    admission_shed - admission_rejected``
    (the only entry points are workload sources and upstream emissions;
    a shed SDO never reaches a buffer, and SDOs the admission front end
    turns away never reach the data plane at all);
    ``sum(emitted * fan_out) over non-egress PEs ==
    emit_attempts + in-flight non-egress deliveries``; and
    ``sum(emitted) over egress PEs ==
    collector total + in-flight egress deliveries`` (checked only when
    the collector window covers the whole run, i.e. ``warmup == 0``).

The checker reads counters only — it never advances the system — so it
can be run repeatedly and composes with the online oracles in
:mod:`repro.check.oracles`.
"""

from __future__ import annotations

import typing as _t

from repro.check.oracles import InvariantViolation

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.systems.simulated import SimulatedSystem


def check_conservation(
    system: "SimulatedSystem", tolerance: float = 1e-9
) -> _t.List[InvariantViolation]:
    """Close the SDO ledger of a finished (or paused) simulated run."""
    violations: _t.List[InvariantViolation] = []

    def violate(invariant: str, detail: str, pe: _t.Optional[str] = None) -> None:
        violations.append(
            InvariantViolation(
                invariant=invariant,
                equation="Section IV (conservation)",
                t=float(system.env.now),
                pe=pe,
                node=None,
                detail=detail,
            )
        )

    total_offered = 0
    egress_emitted = 0
    fanout_emissions = 0
    for pe_id, runtime in sorted(system.runtimes.items()):
        telemetry = runtime.buffer.telemetry
        occupancy = runtime.buffer.occupancy
        total_offered += telemetry.offered

        if telemetry.offered != telemetry.accepted + (
            telemetry.dropped - telemetry.flushed
        ):
            violate(
                "buffer_offer_conservation",
                f"offered={telemetry.offered} != accepted={telemetry.accepted}"
                f" + (dropped={telemetry.dropped} - flushed={telemetry.flushed})",
                pe=pe_id,
            )
        if telemetry.accepted != (
            telemetry.popped + telemetry.flushed + occupancy
        ):
            violate(
                "buffer_occupancy_conservation",
                f"accepted={telemetry.accepted} != popped={telemetry.popped}"
                f" + flushed={telemetry.flushed} + occupancy={occupancy}",
                pe=pe_id,
            )
        if telemetry.high_water > runtime.buffer.capacity:
            violate(
                "buffer_high_water",
                f"high_water={telemetry.high_water} exceeds "
                f"capacity={runtime.buffer.capacity}",
                pe=pe_id,
            )

        counters = runtime.counters
        in_progress = 1 if runtime._current is not None else 0
        if telemetry.popped != counters.consumed + in_progress:
            violate(
                "pe_consumption_conservation",
                f"popped={telemetry.popped} != consumed={counters.consumed}"
                f" + in_progress={in_progress}",
                pe=pe_id,
            )
        if counters.cpu_used > counters.cpu_granted + tolerance * max(
            1.0, counters.cpu_granted
        ):
            violate(
                "cpu_budget",
                f"cpu_used={counters.cpu_used} exceeds "
                f"cpu_granted={counters.cpu_granted}",
                pe=pe_id,
            )

        if runtime.is_egress:
            egress_emitted += counters.emitted
        else:
            fanout_emissions += counters.emitted * len(runtime.downstream)

    dataplane = system.dataplane
    pending_egress = 0
    pending_internal = 0
    for batch in dataplane.delivery_batches.values():
        for consumer, _producer, _sdo in batch:
            if consumer is None:
                pending_egress += 1
            else:
                pending_internal += 1

    total_generated = sum(source.stats.generated for source in system.sources)
    admission = getattr(system.plane, "admission", None)
    admission_shed = admission.total_shed if admission is not None else 0
    admission_rejected = (
        admission.total_rejected if admission is not None else 0
    )
    expected_offered = (
        total_generated
        + dataplane.emit_attempts
        - dataplane.shed_drops
        - admission_shed
        - admission_rejected
    )
    if total_offered != expected_offered:
        violate(
            "global_offer_conservation",
            f"sum(offered)={total_offered} != generated={total_generated}"
            f" + emit_attempts={dataplane.emit_attempts}"
            f" - shed_drops={dataplane.shed_drops}"
            f" - admission_shed={admission_shed}"
            f" - admission_rejected={admission_rejected}",
        )

    if admission is not None:
        # Admission decision ledger: every generated SDO got exactly one
        # verdict, per stream and in total, and the per-stream breakdown
        # sums exactly to the totals.
        decisions = 0
        for pe_id, stream in sorted(admission.streams.items()):
            decisions += stream.decisions
            source_generated = next(
                (
                    s.stats.generated
                    for s in system.sources
                    if s.stream_id == f"src:{pe_id}"
                ),
                None,
            )
            if (
                source_generated is not None
                and stream.decisions != source_generated
            ):
                violate(
                    "admission_decision_conservation",
                    f"decisions={stream.decisions} (admitted="
                    f"{stream.admitted} + shed={stream.shed} + rejected="
                    f"{stream.rejected}) != generated={source_generated}",
                    pe=pe_id,
                )
        expected_totals = (
            admission.total_admitted + admission_shed + admission_rejected
        )
        if decisions != expected_totals or decisions != total_generated:
            violate(
                "admission_breakdown_conservation",
                f"sum(per-stream decisions)={decisions} != "
                f"admitted={admission.total_admitted}"
                f" + shed={admission_shed}"
                f" + rejected={admission_rejected}"
                f" (= {expected_totals}), generated={total_generated}",
            )

    if fanout_emissions != dataplane.emit_attempts + pending_internal:
        violate(
            "emission_delivery_conservation",
            f"sum(emitted * fan_out)={fanout_emissions} != "
            f"emit_attempts={dataplane.emit_attempts}"
            f" + in_flight={pending_internal}",
        )

    # The collector only sees its measurement window; the egress identity
    # is exact when that window spans the whole run (warmup == 0).
    collector = system.collector
    if collector.window_start == 0.0:
        delivered = collector.total_output()
        if egress_emitted != delivered + pending_egress:
            violate(
                "egress_conservation",
                f"sum(egress emitted)={egress_emitted} != "
                f"delivered={delivered} + in_flight={pending_egress}",
            )

    for source in system.sources:
        stats = source.stats
        if stats.generated != stats.admitted + stats.rejected:
            violate(
                "source_conservation",
                f"{source.stream_id}: generated={stats.generated} != "
                f"admitted={stats.admitted} + rejected={stats.rejected}",
            )

    # Per-egress histogram/moments identity: the streaming latency
    # histogram sees exactly the SDOs the moment accumulator sees.
    for pe_id, record in sorted(collector.records().items()):
        if not (record.hist.count == record.count == record.latency.count):
            violate(
                "latency_histogram_conservation",
                f"hist.count={record.hist.count}, record.count="
                f"{record.count}, moments.count={record.latency.count} "
                "disagree",
                pe=pe_id,
            )

    # Armed span tracker: lift its closure violations into the shared
    # violation type and close the span/egress ledger.
    spans = getattr(system, "spans", None)
    if spans is not None:
        for entry in spans.violations:
            violations.append(
                InvariantViolation(
                    invariant=str(entry["invariant"]),
                    equation="span telescoping (queue+service+transit==e2e)",
                    t=float(entry["t"]),  # type: ignore[arg-type]
                    pe=_t.cast(_t.Optional[str], entry.get("pe")),
                    node=None,
                    detail=str(entry["detail"]),
                )
            )
        delivered = collector.total_output()
        if spans.egress_spans != delivered:
            violate(
                "span_egress_conservation",
                f"egress spans={spans.egress_spans} != collector "
                f"output={delivered} over the measured window",
            )

    return violations
