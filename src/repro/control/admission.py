"""SLO-aware admission front end: hysteresis ladder + graceful shedding.

The paper's three-tier controllers (Eq. 4/7/8) maximize weighted
throughput but never answer to a latency SLO — under burst workloads
they keep admitting traffic that queues past any usable p95.  This
module adds the production-style answer: an admission/backpressure
layer *in front of* the ingress PEs that watches two pressure signals
(worst per-output-stream p95 end-to-end latency from the streaming
:class:`~repro.obs.hist.LogHistogram` path, and worst ingress-queue
occupancy) and degrades service along an ordered ladder::

    NORMAL > SHED_LOW > SHED_HIGH > REJECT > KILL

The decision engine (:class:`DegradationLadder`) is deliberately boring
and provable:

* **Hysteresis band** — each adaptive level has a separate *enter* and
  *exit* threshold (``enter > exit``), so pressure hovering at a
  boundary cannot flap the level.
* **Minimum dwell time** — after any transition the ladder holds its
  level for at least ``min_dwell`` seconds, in *both* directions; two
  transitions can never occur within one dwell window.
* **Monotonic automatic moves** — an automatic transition only ever
  *downgrades* (rank increases).  Upgrades happen one step at a time,
  only after the dwell has elapsed *and* pressure has fallen through
  the current level's exit threshold (``cause="recovery"``), or via
  explicit operator action.
* **Priority resolver** — kill switch beats manual override beats
  adaptive decision beats the NORMAL default, always
  (:attr:`AdmissionController.effective_level`).

Shedding drops tagged SDOs at ingress (a dedicated ``shed`` drop kind
threaded through the SDO-conservation ledger); rejection is the
429-style refusal — the source's registered backoff callback receives a
``retry-after`` horizon so the load model stops offering until it
passes.  Shedding uses a deterministic per-stream error accumulator
rather than an RNG, so the sim and threaded substrates make
bit-identical decisions from identical pressure sequences — the parity
tests rely on this.

The invariant oracles (:mod:`repro.check.oracles`) re-derive every
ladder guarantee online from ``admission_level`` trace events; the
conservation ledger (:mod:`repro.check.conservation`) accounts every
shed and rejected SDO exactly.
"""

from __future__ import annotations

import enum
import math
import typing as _t
from dataclasses import dataclass, field

from repro.obs.recorder import NULL_RECORDER, TraceRecorder

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.adapter import BufferLike


class AdmissionLevel(enum.IntEnum):
    """Ordered degradation levels; higher rank = more degraded service.

    A "downgrade" is a rank *increase* (service degrades); "upgrade"
    (recovery) is a rank decrease.  ``KILL`` is never entered
    adaptively — only the operator kill switch resolves to it.
    """

    NORMAL = 0
    SHED_LOW = 1
    SHED_HIGH = 2
    REJECT = 3
    KILL = 4


#: The levels an *automatic* (adaptive) transition may target, in rank
#: order.  ``KILL`` is deliberately absent.
ADAPTIVE_LEVELS = (
    AdmissionLevel.SHED_LOW,
    AdmissionLevel.SHED_HIGH,
    AdmissionLevel.REJECT,
)


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning of the admission front end (hashable, picklable).

    Pressure is a unitless ratio where 1.0 sits exactly at the SLO
    boundary: ``pressure = max(worst_p95 / slo_p95, worst_ingress_occ /
    (queue_slo_fraction * capacity))``.  The enter/exit ladders are
    expressed in that unit, so one config transfers across topologies.

    ``enter[i]``/``exit[i]`` guard :data:`ADAPTIVE_LEVELS`\\ ``[i]``
    (SHED_LOW, SHED_HIGH, REJECT).  Validation enforces the shape the
    oracles assume: ``enter[i] > exit[i]`` (a real hysteresis band per
    level) and ``enter`` strictly increasing (a deeper level is never
    cheaper to reach than a shallower one).
    """

    #: Per-output-stream p95 end-to-end latency SLO (seconds).
    slo_p95: float = 0.25
    #: Ingress occupancy fraction treated as pressure 1.0.
    queue_slo_fraction: float = 0.8
    #: Minimum seconds between *any* two ladder transitions.
    min_dwell: float = 0.5
    #: Seconds between pressure samples; None follows the substrate's
    #: control interval ``dt``.
    tick_interval: _t.Optional[float] = None
    #: Length of the sliding latency-measurement window (seconds).  The
    #: p95 signal is computed over recent egress samples only — a
    #: cumulative histogram would remember every past spike forever and
    #: the ladder could never recover.
    pressure_window: float = 1.0
    #: Fraction of ingress SDOs shed at SHED_LOW / SHED_HIGH.
    shed_low_fraction: float = 0.25
    shed_high_fraction: float = 0.60
    #: Retry-after horizon handed to source backoff callbacks (seconds).
    retry_after: float = 0.5
    #: Enter thresholds for (SHED_LOW, SHED_HIGH, REJECT).
    enter: _t.Tuple[float, float, float] = (1.0, 1.3, 1.6)
    #: Exit thresholds for the same levels; each strictly below enter.
    exit: _t.Tuple[float, float, float] = (0.85, 1.1, 1.35)

    def __post_init__(self) -> None:
        if self.slo_p95 <= 0:
            raise ValueError(f"slo_p95 must be > 0, got {self.slo_p95}")
        if not 0.0 < self.queue_slo_fraction <= 1.0:
            raise ValueError(
                "queue_slo_fraction must lie in (0, 1], "
                f"got {self.queue_slo_fraction}"
            )
        if self.min_dwell < 0:
            raise ValueError(f"min_dwell must be >= 0, got {self.min_dwell}")
        if self.tick_interval is not None and self.tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be positive, got {self.tick_interval}"
            )
        if self.pressure_window <= 0:
            raise ValueError(
                f"pressure_window must be positive, got "
                f"{self.pressure_window}"
            )
        if self.retry_after <= 0:
            raise ValueError(
                f"retry_after must be > 0, got {self.retry_after}"
            )
        for name, value in (
            ("shed_low_fraction", self.shed_low_fraction),
            ("shed_high_fraction", self.shed_high_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.shed_high_fraction < self.shed_low_fraction:
            raise ValueError(
                "shed_high_fraction must be >= shed_low_fraction "
                f"({self.shed_high_fraction} < {self.shed_low_fraction})"
            )
        if len(self.enter) != len(ADAPTIVE_LEVELS) or len(self.exit) != len(
            ADAPTIVE_LEVELS
        ):
            raise ValueError(
                "enter/exit must give one threshold per adaptive level "
                f"({len(ADAPTIVE_LEVELS)})"
            )
        for index, level in enumerate(ADAPTIVE_LEVELS):
            if self.enter[index] <= self.exit[index]:
                raise ValueError(
                    f"{level.name}: enter ({self.enter[index]}) must be "
                    f"strictly above exit ({self.exit[index]}) — "
                    "a zero-width hysteresis band oscillates"
                )
        for index in range(1, len(self.enter)):
            if self.enter[index] <= self.enter[index - 1]:
                raise ValueError(
                    "enter thresholds must be strictly increasing, "
                    f"got {self.enter}"
                )
            if self.exit[index] <= self.exit[index - 1]:
                raise ValueError(
                    "exit thresholds must be strictly increasing, "
                    f"got {self.exit}"
                )

    def shed_fraction(self, level: AdmissionLevel) -> float:
        """Fraction of ingress SDOs shed while at ``level``."""
        if level is AdmissionLevel.SHED_LOW:
            return self.shed_low_fraction
        if level is AdmissionLevel.SHED_HIGH:
            return self.shed_high_fraction
        return 0.0

    def enter_threshold(self, level: AdmissionLevel) -> float:
        return self.enter[ADAPTIVE_LEVELS.index(level)]

    def exit_threshold(self, level: AdmissionLevel) -> float:
        return self.exit[ADAPTIVE_LEVELS.index(level)]


@dataclass
class LadderTransition:
    """One adaptive-ladder move, as reported by :meth:`DegradationLadder.step`."""

    prev: AdmissionLevel
    level: AdmissionLevel
    cause: str  # "adaptive" (downgrade) or "recovery" (one-step upgrade)
    pressure: float
    at: float
    #: Seconds since the previous transition (inf for the first).
    since_last: float


class DegradationLadder:
    """The adaptive decision engine: hysteresis + dwell + monotonicity.

    Holds only *adaptive* state — operator overrides live in
    :class:`AdmissionController`, which resolves priority on top.

    Transition rules applied on every :meth:`step`:

    1. Within ``min_dwell`` of the last transition: no move, either
       direction.  (This alone guarantees the no-two-transitions-per-
       dwell-window property the oracles check.)
    2. Otherwise, the *target* is the deepest adaptive level whose
       enter threshold the pressure meets.  If the target outranks the
       current level, downgrade straight to it (multi-step downgrades
       are still monotonic — rank only increases).
    3. Otherwise, if the current level is above NORMAL and pressure has
       fallen to or below the *current* level's exit threshold, recover
       exactly one rank.
    """

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self.level: AdmissionLevel = AdmissionLevel.NORMAL
        self.last_transition: _t.Optional[float] = None
        self.transitions = 0
        #: Downgrades re-entering a level within one dwell of leaving it
        #: via recovery.  Structurally zero under rule 1; the bench and
        #: the acceptance criteria report it rather than trusting that.
        self.oscillations = 0
        self._last_recovery_from: _t.Optional[
            _t.Tuple[AdmissionLevel, float]
        ] = None

    def dwell_remaining(self, now: float) -> float:
        """Seconds before the next transition may fire (0 when free)."""
        if self.last_transition is None:
            return 0.0
        return max(0.0, self.config.min_dwell - (now - self.last_transition))

    def _target(self, pressure: float) -> AdmissionLevel:
        target = AdmissionLevel.NORMAL
        for index, level in enumerate(ADAPTIVE_LEVELS):
            if pressure >= self.config.enter[index]:
                target = level
        return target

    def step(
        self, pressure: float, now: float
    ) -> _t.Optional[LadderTransition]:
        """Advance the ladder one observation; return the move, if any."""
        if self.dwell_remaining(now) > 0.0:
            return None
        target = self._target(pressure)
        if target > self.level:
            return self._move(target, "adaptive", pressure, now)
        if self.level > AdmissionLevel.NORMAL and pressure <= (
            self.config.exit_threshold(self.level)
        ):
            recovered = AdmissionLevel(int(self.level) - 1)
            self._last_recovery_from = (self.level, now)
            return self._move(recovered, "recovery", pressure, now)
        return None

    def _move(
        self,
        level: AdmissionLevel,
        cause: str,
        pressure: float,
        now: float,
    ) -> LadderTransition:
        prev = self.level
        since = (
            float("inf")
            if self.last_transition is None
            else now - self.last_transition
        )
        if cause == "adaptive" and self._last_recovery_from is not None:
            left_level, left_at = self._last_recovery_from
            if level >= left_level and (
                now - left_at
            ) < self.config.min_dwell:
                self.oscillations += 1
        self.level = level
        self.last_transition = now
        self.transitions += 1
        return LadderTransition(
            prev=prev,
            level=level,
            cause=cause,
            pressure=pressure,
            at=now,
            since_last=since,
        )


@dataclass
class StreamAdmission:
    """Per-ingress-stream admission accounting (and the shed accumulator)."""

    admitted: int = 0
    shed: int = 0
    rejected: int = 0
    #: Deterministic fractional-shed error accumulator: ``acc`` gains the
    #: shed fraction per offered SDO and sheds whenever it reaches 1 —
    #: exact long-run fraction, zero RNG, bit-equal across substrates.
    acc: float = 0.0

    @property
    def decisions(self) -> int:
        return self.admitted + self.shed + self.rejected


class AdmissionController:
    """The admission front end one :class:`~repro.control.plane.ControlPlane` ticks.

    Lifecycle: construct with a config, :meth:`bind` to a substrate's
    ingress buffers / egress records / clock (plus a lock when the
    collector is written from worker threads), then let the plane call
    :meth:`tick` every control interval.  Sources consult
    :meth:`admit_ingress` per offered SDO and register a
    :meth:`register_backoff` callback to honour 429-style retry-after.

    Priority resolution (:attr:`effective_level`): kill switch, then
    manual override, then the adaptive ladder.  The ladder keeps
    stepping underneath an override so releasing it resumes from an
    up-to-date adaptive level rather than a stale one.
    """

    def __init__(
        self,
        config: AdmissionConfig,
        recorder: _t.Optional[TraceRecorder] = None,
    ):
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.ladder = DegradationLadder(config)
        self.kill_switch = False
        self.manual_level: _t.Optional[AdmissionLevel] = None
        self.streams: _t.Dict[str, StreamAdmission] = {}
        self.ticks = 0
        self.last_pressure = 0.0
        self._last_effective = AdmissionLevel.NORMAL
        self._ingress: _t.Dict[str, "BufferLike"] = {}
        self._egress: _t.Mapping[str, _t.Any] = {}
        self._clock: _t.Callable[[], float] = lambda: 0.0
        self._lock: _t.Optional[_t.Any] = None
        self._backoff: _t.Dict[str, _t.Callable[[float], None]] = {}
        #: Sliding latency window: per-stream histogram bucket counts at
        #: the window start, plus the last completed window's p95.
        self._window_started: _t.Optional[float] = None
        self._window_base: _t.Dict[str, _t.Dict[int, int]] = {}
        self._window_p95: _t.Dict[str, float] = {}

    # -- wiring --------------------------------------------------------------

    def bind(
        self,
        ingress: _t.Mapping[str, "BufferLike"],
        egress: _t.Mapping[str, _t.Any],
        clock: _t.Callable[[], float],
        lock: _t.Optional[_t.Any] = None,
    ) -> None:
        """Attach the substrate observables the pressure signal reads.

        ``egress`` maps stream ids to objects exposing a ``hist``
        :class:`~repro.obs.hist.LogHistogram` (the collector's
        :class:`~repro.metrics.collectors.EgressRecord` does).  ``lock``
        guards histogram reads in threaded substrates.
        """
        self._ingress = dict(ingress)
        self._egress = egress
        self._clock = clock
        self._lock = lock
        for pe_id in self._ingress:
            self.streams.setdefault(pe_id, StreamAdmission())

    def register_backoff(
        self, pe_id: str, callback: _t.Callable[[float], None]
    ) -> None:
        """Register a source's ``backoff(until)`` retry-after hook."""
        self._backoff[pe_id] = callback

    # -- pressure signal -----------------------------------------------------

    def _windowed_p95(self, pe_id: str, hist: _t.Any, rotate: bool) -> float:
        """p95 of the egress samples recorded since the window started.

        Reads the stream's cumulative :class:`~repro.obs.hist.
        LogHistogram` and subtracts the bucket counts captured at the
        window start, so the signal *decays* once latency improves — a
        cumulative p95 would remember every past spike forever and the
        ladder could never recover.  On rotation the partial becomes the
        completed window's p95 and a fresh base is captured; between
        rotations the max of the partial and the last completed window
        is reported (conservative against a thin, freshly rotated
        window looking spuriously healthy).
        """
        counts = dict(hist.bucket_counts())
        base = self._window_base.get(pe_id)
        if base:
            delta = {
                index: count - base.get(index, 0)
                for index, count in counts.items()
                if count - base.get(index, 0) > 0
            }
        else:
            delta = counts
        total = sum(delta.values())
        if total == 0:
            partial = 0.0
        else:
            rank = max(1, math.ceil(0.95 * total))
            cumulative = 0
            partial = 0.0
            for index in sorted(delta):
                cumulative += delta[index]
                if cumulative >= rank:
                    partial = hist.bucket_upper_edge(index)
                    break
        if rotate:
            self._window_base[pe_id] = counts
            self._window_p95[pe_id] = partial
            return partial
        return max(partial, self._window_p95.get(pe_id, 0.0))

    def pressure(self, now: _t.Optional[float] = None) -> float:
        """Current unitless pressure (1.0 = exactly at the SLO boundary)."""
        config = self.config
        if now is None:
            now = self._clock()
        rotate = (
            self._window_started is None
            or now - self._window_started >= config.pressure_window
        )
        if rotate:
            self._window_started = now
        worst_p95 = 0.0
        lock = self._lock
        if lock is not None:
            lock.acquire()
        try:
            for pe_id, record in self._egress.items():
                p95 = self._windowed_p95(pe_id, record.hist, rotate)
                if p95 > worst_p95:
                    worst_p95 = p95
        finally:
            if lock is not None:
                lock.release()
        latency_pressure = worst_p95 / config.slo_p95
        queue_pressure = 0.0
        for buffer in self._ingress.values():
            capacity = buffer.capacity
            if capacity <= 0:
                continue
            fraction = buffer.occupancy / (
                config.queue_slo_fraction * capacity
            )
            if fraction > queue_pressure:
                queue_pressure = fraction
        return max(latency_pressure, queue_pressure)

    # -- control-tick entry points -------------------------------------------

    def tick(self, now: float) -> None:
        """Sample the pressure signals and advance the ladder."""
        self.observe(self.pressure(now), now)

    def observe(self, pressure: float, now: float) -> None:
        """Advance the ladder from an explicit pressure sample.

        This is the scriptable entry point the cross-substrate parity
        tests drive: identical ``(pressure, now)`` sequences must yield
        identical decision sequences on any substrate.
        """
        self.ticks += 1
        self.last_pressure = pressure
        transition = self.ladder.step(pressure, now)
        effective = self.effective_level
        if effective != self._last_effective:
            cause = (
                transition.cause
                if transition is not None
                and effective == transition.level
                else self._override_cause()
            )
            self._emit_level(effective, cause, pressure, now)
        elif transition is not None and self.recorder.enabled:
            # The adaptive level moved underneath an operator override;
            # trace it (cause intact) so the oracle still sees every
            # ladder decision, flagged as shadowed.
            self.recorder.emit(
                "admission_level",
                level=transition.level.name,
                prev=transition.prev.name,
                cause=transition.cause,
                pressure=pressure,
                since_last=_finite(transition.since_last),
                shadowed=True,
            )

    # -- operator surface ----------------------------------------------------

    def set_kill_switch(self, engaged: bool) -> None:
        """Operator kill switch: beats every other decision while set."""
        self.kill_switch = engaged
        self._refresh_effective("kill" if engaged else "kill_release")

    def set_manual_level(
        self, level: _t.Optional[AdmissionLevel]
    ) -> None:
        """Operator override: pin the level (None releases the pin)."""
        self.manual_level = level
        self._refresh_effective(
            "manual" if level is not None else "manual_release"
        )

    @property
    def effective_level(self) -> AdmissionLevel:
        """Priority resolution: kill > manual > adaptive > default."""
        if self.kill_switch:
            return AdmissionLevel.KILL
        if self.manual_level is not None:
            return self.manual_level
        return self.ladder.level

    def _override_cause(self) -> str:
        if self.kill_switch:
            return "kill"
        if self.manual_level is not None:
            return "manual"
        return "release"

    def _refresh_effective(self, cause: str) -> None:
        effective = self.effective_level
        if effective != self._last_effective:
            self._emit_level(
                effective, cause, self.last_pressure, self._clock()
            )

    def _emit_level(
        self,
        level: AdmissionLevel,
        cause: str,
        pressure: float,
        now: float,
    ) -> None:
        prev = self._last_effective
        self._last_effective = level
        if self.recorder.enabled:
            self.recorder.emit(
                "admission_level",
                level=level.name,
                prev=prev.name,
                cause=cause,
                pressure=pressure,
                since_last=None,
                shadowed=False,
            )

    # -- the ingress decision ------------------------------------------------

    def admit_ingress(self, pe_id: str, now: float) -> str:
        """Decide one offered SDO: ``"admit"``, ``"shed"`` or ``"reject"``.

        Deterministic: at a shedding level the per-stream accumulator
        sheds exactly ``round(fraction * offered)`` of every prefix, so
        two substrates replaying the same offer sequence under the same
        level sequence shed the same SDOs.
        """
        stream = self.streams.get(pe_id)
        if stream is None:
            stream = self.streams.setdefault(pe_id, StreamAdmission())
        level = self.effective_level
        if level >= AdmissionLevel.REJECT:
            stream.rejected += 1
            callback = self._backoff.get(pe_id)
            if callback is not None:
                callback(now + self.config.retry_after)
            if self.recorder.enabled:
                self.recorder.emit(
                    "reject",
                    pe=pe_id,
                    level=level.name,
                    retry_after=self.config.retry_after,
                )
            return "reject"
        fraction = self.config.shed_fraction(level)
        if fraction > 0.0:
            stream.acc += fraction
            if stream.acc >= 1.0:
                stream.acc -= 1.0
                stream.shed += 1
                if self.recorder.enabled:
                    self.recorder.emit("shed", pe=pe_id, level=level.name)
                return "shed"
        stream.admitted += 1
        return "admit"

    # -- accounting ----------------------------------------------------------

    @property
    def total_admitted(self) -> int:
        return sum(s.admitted for s in self.streams.values())

    @property
    def total_shed(self) -> int:
        return sum(s.shed for s in self.streams.values())

    @property
    def total_rejected(self) -> int:
        return sum(s.rejected for s in self.streams.values())

    def counters(self) -> _t.Dict[str, _t.Dict[str, int]]:
        """Per-stream decision counts (stable key order)."""
        return {
            pe_id: {
                "admitted": stream.admitted,
                "shed": stream.shed,
                "rejected": stream.rejected,
            }
            for pe_id, stream in sorted(self.streams.items())
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(level={self.effective_level.name}, "
            f"pressure={self.last_pressure:.3f}, "
            f"shed={self.total_shed}, rejected={self.total_rejected})"
        )


def _finite(value: float) -> _t.Optional[float]:
    """inf -> None, keeping trace JSON strict-parser friendly."""
    return None if value == float("inf") else value
