"""Array-backed Tier-2 control tick (the vectorized engine).

The scalar :class:`~repro.control.node.NodeController` runs the paper's
per-node control step — Eq. 8 feedback aggregation, Section V-D CPU
allocation, Eq. 7 LQR flow update — as per-PE Python loops.  At paper
scale (80 nodes / 200 PEs) that loop is ~58% of wall time; multiplied
x10-x100 it dominates everything.  This module re-expresses the *same*
step as contiguous-array operations:

* :class:`PEIndexRegistry` assigns every PE a dense integer index at
  wiring time (node-major placement order) and holds the deduplicated
  downstream adjacency as a CSR index structure.
* :class:`VectorEngine` owns the flat per-PE state arrays — token
  levels/rates/depths, Eq. 7 deviation and surplus histories, Tier-1
  CPU targets, buffer capacities, rate-model coefficients — and computes
  an entire tick for a group of nodes (one node, or a whole phase
  bucket) with numpy kernels.
* :class:`VectorNodeController` / :class:`VectorTokenScheduler` /
  :class:`VectorStrictScheduler` / :class:`VectorFlowView` are thin
  facades over the engine exposing the exact object surfaces the rest
  of the system (plane, adapters, oracles, gauges, fault injection)
  already consumes.

Bit-exactness contract
----------------------
Every kernel reproduces the scalar implementation's floating-point
operations *in the same order*: order-sensitive reductions (the
water-fill weight totals, the work-conserving leftover sums) run as
column loops over node-major 2D arrays in the scalar iteration order,
while element-wise math relies on IEEE-754 f64 ops being identical in
numpy and CPython.  The differential tests in
``tests/test_control_vector.py`` hold scalar and vector decision
sequences bit-equal across policies and substrates.

Fallback
--------
``fallback_reason`` reports why the vector path cannot be used (numpy
missing, ``REPRO_FORCE_SCALAR`` set, unknown scheduler types...); the
plane then silently runs the scalar implementation, so ``control_impl=
"vector"`` is always safe to request.
"""

from __future__ import annotations

import os
import typing as _t

try:  # pragma: no cover - exercised via REPRO_FORCE_SCALAR in CI
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.control.node import ControlRecord
from repro.core.cpu_control import (
    AcesCpuScheduler,
    StrictProportionalScheduler,
)
from repro.obs.recorder import NULL_RECORDER, TraceRecorder

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.adapter import GateFn, SystemAdapter
    from repro.control.plane import ControlPlane, NodeGroup
    from repro.core.lqr import LQRGains

_INF = float("inf")

__all__ = [
    "PEIndexRegistry",
    "VectorEngine",
    "VectorFeedbackBus",
    "VectorFlowView",
    "VectorNodeController",
    "VectorStrictScheduler",
    "VectorTokenScheduler",
    "fallback_reason",
    "numpy_enabled",
    "vector_proportional_fill",
]


def numpy_enabled() -> bool:
    """Whether the vector path's numpy dependency is importable."""
    return np is not None


def fallback_reason(
    schedulers: _t.Sequence[_t.Any], uses_feedback: bool
) -> _t.Optional[str]:
    """Why ``control_impl="vector"`` must fall back to scalar, or None.

    The vector engine mirrors exactly the two stock schedulers; custom
    policy scheduler types (or a mix) get the scalar path so their
    behaviour is preserved rather than silently approximated.
    """
    if np is None:
        return "numpy is not importable (install the [fast] extra)"
    if os.environ.get("REPRO_FORCE_SCALAR"):
        return "REPRO_FORCE_SCALAR is set"
    kinds = {type(scheduler) for scheduler in schedulers}
    unknown = kinds - {AcesCpuScheduler, StrictProportionalScheduler}
    if unknown:
        names = ", ".join(sorted(k.__name__ for k in unknown))
        return f"unsupported scheduler type(s): {names}"
    if len(kinds) > 1:
        return "mixed scheduler types across nodes"
    if AcesCpuScheduler in kinds and not uses_feedback:
        return "token scheduler without feedback is not vectorizable"
    return None


class PEIndexRegistry:
    """Dense integer indices for every PE, assigned at wiring time.

    Indexing is node-major in placement order: node 0's PEs get the
    first indices, node 1's the next, and so on — so one node (or any
    run of consecutive nodes) is a contiguous slice of every flat
    state array.  The downstream adjacency is held as a CSR structure
    (``down_indptr``/``down_indices``) over the same index space, with
    duplicate edges removed (safe: Eq. 8 takes a max/min).
    """

    def __init__(self, groups: _t.Sequence["NodeGroup"]):
        if np is None:  # pragma: no cover - registry only built w/ numpy
            raise RuntimeError("PEIndexRegistry requires numpy")
        self.ids: _t.List[str] = []
        self.index: _t.Dict[str, int] = {}
        self.node_slices: _t.List[slice] = []
        for group in groups:
            start = len(self.ids)
            for pe in group.pes:
                self.index[pe.pe_id] = len(self.ids)
                self.ids.append(pe.pe_id)
            self.node_slices.append(slice(start, len(self.ids)))
        self.size = len(self.ids)

        indptr = [0]
        indices: _t.List[int] = []
        for group in groups:
            for pe in group.pes:
                for did in dict.fromkeys(d.pe_id for d in pe.downstream):
                    indices.append(self.index[did])
                indptr.append(len(indices))
        self.down_indptr = np.asarray(indptr, dtype=np.int64)
        self.down_indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return self.size


class VectorFeedbackBus:
    """Array-backed drop-in for :class:`~repro.core.feedback.FeedbackBus`.

    The fast path is :meth:`publish_block` / :meth:`settle_all`: whole
    r_max vectors move as one batch per tick instead of one dict write
    per PE.  The scalar ``publish``/``latest``/``max_downstream_rate``
    API is kept bit-compatible so fault-injection wrappers
    (``LossyFeedbackBus``) and diagnostics keep working unchanged.

    Only built when no ``staleness_ttl`` is configured — the staleness
    guard's per-read decay semantics stay on the scalar bus.
    """

    def __init__(
        self,
        registry: PEIndexRegistry,
        delay: float = 0.0,
        recorder: _t.Optional[TraceRecorder] = None,
    ):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._registry = registry
        self.delay = delay
        self.staleness_ttl: _t.Optional[float] = None
        self.stale_bound = 0.0
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        size = registry.size
        self._current_arr = np.zeros(size, dtype=np.float64)
        self._published = np.zeros(size, dtype=bool)
        self._freshened = np.zeros(size, dtype=np.float64)
        #: Whole-vector in-flight publications: (visible_at, sel, values),
        #: appended in publish order.  Fixed bus delay + nondecreasing
        #: publish times keep this FIFO visible_at-ordered.
        self._batches: _t.List[
            _t.Tuple[float, _t.Union[slice, _t.Any], _t.Any]
        ] = []
        #: Per-PE jittered publications (scalar API, fault injection),
        #: visible_at-ordered like the scalar bus's pending lists.
        self._pending: _t.Dict[str, _t.List[_t.Tuple[float, float]]] = {}
        self.publishes = 0
        self.stale_reads = 0

    # -- fast path --------------------------------------------------------

    def publish_block(
        self,
        sel: _t.Union[slice, _t.Any],
        values: _t.Any,
        now: float,
        count: int,
    ) -> None:
        """Publish one r_max per selected PE (the engine's batch path).

        ``values`` ownership passes to the bus; callers must hand in a
        fresh array each tick.
        """
        self.publishes += count
        if self.delay == 0.0:
            self._current_arr[sel] = values
            self._published[sel] = True
            self._freshened[sel] = now
            return
        self._batches.append((now + self.delay, sel, values))

    def settle_all(self, now: float) -> None:
        """Fold every publication (batch and per-PE) visible by ``now``."""
        batches = self._batches
        ripe = 0
        for visible_at, _, _ in batches:
            if visible_at > now:
                break
            ripe += 1
        if ripe:
            for visible_at, sel, values in batches[:ripe]:
                self._current_arr[sel] = values
                self._published[sel] = True
                self._freshened[sel] = visible_at
            del batches[:ripe]
        if self._pending:
            index = self._registry.index
            done = []
            for pe_id, pending in self._pending.items():
                n_ripe = 0
                for visible_at, _ in pending:
                    if visible_at > now:
                        break
                    n_ripe += 1
                if not n_ripe:
                    continue
                visible_at, value = pending[n_ripe - 1]
                i = index[pe_id]
                # A later-visible batch already superseded this message;
                # ties go to the per-PE message (published later).
                if visible_at >= self._freshened[i]:
                    self._current_arr[i] = value
                    self._published[i] = True
                    self._freshened[i] = visible_at
                del pending[:n_ripe]
                if not pending:
                    done.append(pe_id)
            for pe_id in done:
                del self._pending[pe_id]

    # -- scalar-compatible API --------------------------------------------

    def publish(
        self, pe_id: str, r_max: float, now: float, extra_delay: float = 0.0
    ) -> None:
        """Scalar-bus-compatible single publication (jitter-capable)."""
        if r_max < 0:
            raise ValueError(f"{pe_id}: r_max must be >= 0, got {r_max}")
        if extra_delay < 0:
            raise ValueError(
                f"{pe_id}: extra_delay must be >= 0, got {extra_delay}"
            )
        self.publishes += 1
        i = self._registry.index[pe_id]
        if self.delay == 0.0 and extra_delay == 0.0:
            self._current_arr[i] = r_max
            self._published[i] = True
            self._freshened[i] = now
            return
        pending = self._pending.get(pe_id)
        if pending is None:
            pending = self._pending[pe_id] = []
        visible_at = now + self.delay + extra_delay
        if pending and pending[-1][0] > visible_at:
            from bisect import insort

            insort(pending, (visible_at, r_max))
        else:
            pending.append((visible_at, r_max))

    def latest(self, pe_id: str, now: float) -> _t.Optional[float]:
        """Most recent visible r_max for ``pe_id`` (None if never heard)."""
        self.settle_all(now)
        i = self._registry.index[pe_id]
        if not self._published[i]:
            return None
        return float(self._current_arr[i])

    def max_downstream_rate(
        self, downstream_ids: _t.Sequence[str], now: float
    ) -> float:
        """Eq. 8 max-flow read (see :class:`FeedbackBus`)."""
        bound = -_INF
        for pe_id in downstream_ids:
            value = self.latest(pe_id, now)
            if value is None:
                return _INF
            if value > bound:
                bound = value
        return bound if downstream_ids else _INF

    def min_downstream_rate(
        self, downstream_ids: _t.Sequence[str], now: float
    ) -> float:
        """Min-flow ablation read (see :class:`FeedbackBus`)."""
        bound = _INF
        for pe_id in downstream_ids:
            value = self.latest(pe_id, now)
            if value is None:
                continue
            if value < bound:
                bound = value
        return bound


def _fill_rounds(
    demands: _t.Any, weights: _t.Any, budget: _t.Any, mask: _t.Any
) -> _t.Any:
    """Water-fill ``budget`` per row, proportional to weights, capped by
    demands — many independent nodes at once.

    Rows are nodes, columns are that node's PEs *in sorted-id order*
    (the scalar ``_proportional_fill`` iteration order).  Per-row
    accumulations run as column loops so the float-addition sequence
    matches the scalar loop exactly; dead lanes contribute ``+0.0``,
    an exact identity for the non-negative partial sums involved.
    """
    grants = np.zeros_like(demands)
    floors = np.maximum(weights, 1e-12)
    alive = mask & (demands > 1e-12)
    remaining = np.asarray(budget, dtype=np.float64).copy()
    on = (remaining > 1e-12) & alive.any(axis=1)
    cols = demands.shape[1]
    rows = demands.shape[0]
    while on.any():
        total = np.zeros(rows)
        for j in range(cols):
            total = total + np.where(alive[:, j] & on, floors[:, j], 0.0)
        scale = np.where(
            on, remaining / np.where(total > 0.0, total, 1.0), 0.0
        )
        saturated = np.zeros(rows, dtype=np.int64)
        distributed = np.zeros(rows)
        for j in range(cols):
            lane = alive[:, j] & on
            share = scale * floors[:, j]
            headroom = demands[:, j] - grants[:, j]
            sat = lane & ~(share < headroom)
            give = np.where(lane, np.where(sat, headroom, share), 0.0)
            grants[:, j] += give
            distributed += give
            alive[:, j] &= ~sat
            saturated += sat
        remaining -= np.where(on, distributed, 0.0)
        on = on & (saturated > 0) & (remaining > 1e-12) & alive.any(axis=1)
    return grants


def vector_proportional_fill(
    demands: _t.Mapping[str, float],
    weights: _t.Mapping[str, float],
    budget: float,
) -> _t.Dict[str, float]:
    """Single-node dict-shaped wrapper over the vector water-fill.

    Exists for the property tests: drives the same `_fill_rounds`
    kernel the engine uses and must agree bit-exactly with the scalar
    ``_proportional_fill``.
    """
    if np is None:
        raise RuntimeError("vector_proportional_fill requires numpy")
    keys = sorted(demands)
    if not keys:
        return {}
    d2 = np.array([[float(demands[k]) for k in keys]], dtype=np.float64)
    w2 = np.array([[float(weights[k]) for k in keys]], dtype=np.float64)
    mask = np.ones((1, len(keys)), dtype=bool)
    g2 = _fill_rounds(d2, w2, np.array([float(budget)]), mask)
    return {key: float(g2[0, j]) for j, key in enumerate(keys)}


class VectorFlowView:
    """Per-PE facade over the engine's Eq. 7 state arrays.

    Exposes exactly what the rest of the system reads from a
    :class:`~repro.core.flow_control.FlowController`: ``last_r_max``,
    ``updates``, ``gains``, ``b0``, ``capacity``, ``pe_id``, ``reset``.
    """

    __slots__ = ("_engine", "_index", "pe_id")

    def __init__(self, engine: "VectorEngine", index: int, pe_id: str):
        self._engine = engine
        self._index = index
        self.pe_id = pe_id

    @property
    def gains(self) -> "LQRGains":
        gains = self._engine.gains
        assert gains is not None
        return gains

    @property
    def b0(self) -> float:
        return self._engine.b0_value

    @property
    def capacity(self) -> float:
        return float(self._engine.buf_cap[self._index])

    @property
    def last_r_max(self) -> float:
        return float(self._engine.flow_last[self._index])

    @property
    def updates(self) -> int:
        return int(self._engine.flow_updates[self._index])

    def reset(self) -> None:
        """Clear this PE's histories (mirrors FlowController.reset)."""
        engine = self._engine
        i = self._index
        engine.dev_hist[:, i] = 0.0
        engine.sur_hist[:, i] = 0.0
        engine.flow_last[i] = 0.0

    def __repr__(self) -> str:
        return (
            f"VectorFlowView(b0={self.b0}, "
            f"last_r_max={self.last_r_max:.2f})"
        )


class VectorTokenScheduler:
    """Per-node facade over the engine's token-bucket arrays.

    Carries the mutable ``capacity`` fault-injection knob and the
    tracing identity; allocation itself happens inside
    :meth:`VectorEngine.control_group`.
    """

    recorder: TraceRecorder = NULL_RECORDER
    node_id: str = ""
    _recording: bool = False

    def __init__(
        self,
        engine: "VectorEngine",
        node_index: int,
        pes: _t.Sequence[_t.Any],
        capacity: float,
    ):
        self._engine = engine
        self._node_index = node_index
        self.pes = list(pes)
        self.capacity = capacity
        self.dt = engine.dt
        self.work_conserving = engine.work_conserving

    def attach_tracing(self, recorder: TraceRecorder, node_id: str) -> None:
        """Bind the trace bus and this scheduler's node identity."""
        self.recorder = recorder
        self.node_id = node_id
        self._recording = recorder.enabled

    def settle(self, pe_id: str, cpu_seconds_used: float, dt: float) -> None:
        """Charge tokens for work actually performed (CPU-seconds).

        Bit-equal to ``bucket.spend(min(bucket.level, used))``.
        """
        engine = self._engine
        i = engine.registry.index[pe_id]
        level = float(engine.tok_level[i])
        amount = level if level <= cpu_seconds_used else cpu_seconds_used
        new_level = level - amount
        engine.tok_level[i] = new_level if new_level > 0.0 else 0.0

    def token_level(self, pe_id: str) -> float:
        return float(self._engine.tok_level[self._engine.registry.index[pe_id]])

    def update_targets(self, cpu_targets: _t.Mapping[str, float]) -> None:
        """Adopt refreshed Tier-1 targets (fill rates + depths)."""
        engine = self._engine
        dt = engine.dt
        intervals = engine.depth_intervals
        for pe in self.pes:
            i = engine.registry.index[pe.pe_id]
            target = float(cpu_targets.get(pe.pe_id, 0.0))
            engine.tok_rate[i] = target
            depth = max(target * dt * intervals, 1e-9)
            engine.tok_depth[i] = depth
            if engine.tok_level[i] > depth:
                engine.tok_level[i] = depth

    def __repr__(self) -> str:
        return f"VectorTokenScheduler(node={self.node_id!r}, pes={len(self.pes)})"


class VectorStrictScheduler:
    """Per-node facade over the engine's strict-target array.

    Deliberately has no ``token_level`` attribute — gauge registration
    keys on its presence, like the scalar pair of scheduler classes.
    """

    recorder: TraceRecorder = NULL_RECORDER
    node_id: str = ""
    _recording: bool = False

    def __init__(
        self,
        engine: "VectorEngine",
        node_index: int,
        pes: _t.Sequence[_t.Any],
        capacity: float,
    ):
        self._engine = engine
        self._node_index = node_index
        self.pes = list(pes)
        self.capacity = capacity

    @property
    def targets(self) -> _t.Dict[str, float]:
        engine = self._engine
        return {
            pe.pe_id: float(engine.strict_target[engine.registry.index[pe.pe_id]])
            for pe in self.pes
        }

    def attach_tracing(self, recorder: TraceRecorder, node_id: str) -> None:
        """Bind the trace bus and this scheduler's node identity."""
        self.recorder = recorder
        self.node_id = node_id
        self._recording = recorder.enabled

    def settle(self, pe_id: str, cpu_seconds_used: float, dt: float) -> None:
        """No token accounting in the strict scheduler."""

    def update_targets(self, cpu_targets: _t.Mapping[str, float]) -> None:
        """Adopt refreshed Tier-1 targets."""
        engine = self._engine
        for pe in self.pes:
            i = engine.registry.index[pe.pe_id]
            engine.strict_target[i] = float(cpu_targets.get(pe.pe_id, 0.0))

    def __repr__(self) -> str:
        return (
            f"VectorStrictScheduler(node={self.node_id!r}, pes={len(self.pes)})"
        )


class _TickGroup:
    """Cached index geometry for one set of live nodes ticked together.

    Everything here is a function of the node-index tuple only, so one
    group is built per distinct live set (normally one per phase bucket,
    plus degraded variants while nodes are paused) and reused every tick.
    """

    def __init__(self, engine: "VectorEngine", indices: _t.Tuple[int, ...]):
        registry = engine.registry
        self.indices = indices
        self.controllers = [engine.node_controllers[i] for i in indices]
        self.views = [engine.scheduler_views[i] for i in indices]
        self.records: _t.List[ControlRecord] = []
        for controller in self.controllers:
            self.records.extend(controller.records)

        slices = [registry.node_slices[i] for i in indices]
        contiguous = all(
            slices[k].stop == slices[k + 1].start
            for k in range(len(slices) - 1)
        )
        if contiguous and slices:
            self.sel: _t.Union[slice, _t.Any] = slice(
                slices[0].start, slices[-1].stop
            )
        else:
            self.sel = np.concatenate(
                [np.arange(s.start, s.stop, dtype=np.int64) for s in slices]
            ) if slices else np.zeros(0, dtype=np.int64)

        counts = np.array(
            [len(c.records) for c in self.controllers], dtype=np.int64
        )
        self.counts = counts
        self.rows = len(indices)
        self.total = int(counts.sum())
        self.cols = int(counts.max()) if self.rows and self.total else 1
        starts = np.zeros(self.rows, dtype=np.int64)
        if self.rows > 1:
            starts[1:] = np.cumsum(counts)[:-1]
        self.starts = starts
        arange_cols = np.arange(self.cols, dtype=np.int64)
        self.mask = arange_cols[None, :] < counts[:, None]
        pos2d = starts[:, None] + arange_cols[None, :]
        self.safe_pos = np.where(self.mask, pos2d, 0)

        # Water-fill lane order: per node, sorted pe_id (the scalar
        # _proportional_fill visiting order).
        order: _t.List[int] = []
        base = 0
        for controller in self.controllers:
            ids = [record.pe_id for record in controller.records]
            order.extend(
                base + k
                for k in sorted(range(len(ids)), key=ids.__getitem__)
            )
            base += len(ids)
        self.sorted_flat = np.array(order, dtype=np.int64)
        # A group of PE-less nodes has no lanes to permute (and an empty
        # sorted_flat cannot be indexed, even masked).
        self.sorted_safe_pos = (
            np.where(self.mask, self.sorted_flat[self.safe_pos], 0)
            if self.total
            else np.zeros_like(self.safe_pos)
        )

        # Group-local downstream CSR (over *global* PE indices).
        indptr = [0]
        down: _t.List[int] = []
        for record in self.records:
            for did in record.downstream_ids:
                down.append(registry.index[did])
            indptr.append(len(down))
        self.down_indptr = np.array(indptr, dtype=np.int64)
        self.down_indices = np.array(down, dtype=np.int64)
        self.down_counts = np.diff(self.down_indptr)


class VectorEngine:
    """Owns the flat control-state arrays and the fused tick kernels.

    One engine per :class:`~repro.control.plane.ControlPlane` in vector
    mode.  State is seeded from the policy's *donor* schedulers (built
    normally, then shelved), so bucket depths/levels and strict targets
    match the scalar path bit-for-bit.
    """

    def __init__(
        self,
        plane: "ControlPlane",
        registry: PEIndexRegistry,
        donors: _t.Sequence[_t.Any],
        gains: _t.Optional["LQRGains"],
    ):
        if np is None:  # pragma: no cover - engine only built w/ numpy
            raise RuntimeError("VectorEngine requires numpy")
        self.plane = plane
        self.adapter: "SystemAdapter" = plane.adapter
        self.registry = registry
        self.dt = plane.dt
        self.uses_feedback = plane.uses_feedback
        self.aggregate_max = plane.aggregate_max

        flat_pes = [pe for group in plane.groups for pe in group.pes]
        size = registry.size
        self.lambda_m = np.array(
            [pe.profile.lambda_m for pe in flat_pes], dtype=np.float64
        )
        self.t0_service = np.array(
            [pe.profile.t0 for pe in flat_pes], dtype=np.float64
        )
        self.t1_service = np.array(
            [pe.profile.t1 for pe in flat_pes], dtype=np.float64
        )
        self.buf_cap = np.array(
            [float(pe.buffer.capacity) for pe in flat_pes], dtype=np.float64
        )
        # Per-SDO mean work, precomputed so backlog_work can be rebuilt
        # from the raw ``_work_remaining`` attribute as array math
        # (bit-equal: same 1/slope constant, same mul-then-add order).
        self.mean_work = np.array(
            [1.0 / pe.profile.rate_slope for pe in flat_pes],
            dtype=np.float64,
        )
        # Simulator PEs carry partially-consumed work; the threaded
        # runtime's RuntimePE defines backlog purely from occupancy.
        self.track_work_remaining = bool(flat_pes) and hasattr(
            flat_pes[0], "_work_remaining"
        )
        self.cpu_target = np.array(
            [plane.targets.cpu.get(pe.pe_id, 0.0) for pe in flat_pes],
            dtype=np.float64,
        )

        donor = donors[0] if donors else None
        self.is_aces = type(donor) is AcesCpuScheduler
        if self.is_aces:
            self.work_conserving = bool(donor.work_conserving)
            self.depth_intervals = float(donor._depth_intervals)
            self.tok_rate = np.zeros(size, dtype=np.float64)
            self.tok_depth = np.zeros(size, dtype=np.float64)
            self.tok_level = np.zeros(size, dtype=np.float64)
            for donor_sched in donors:
                arrays = donor_sched.coefficient_arrays()
                for pe_id, rate, depth, level in zip(
                    arrays["pe_ids"], arrays["rates"],
                    arrays["depths"], arrays["levels"],
                ):
                    i = registry.index[pe_id]
                    self.tok_rate[i] = rate
                    self.tok_depth[i] = depth
                    self.tok_level[i] = level
        else:
            self.work_conserving = False
            self.depth_intervals = 0.0
            self.strict_target = np.zeros(size, dtype=np.float64)
            for donor_sched in donors:
                arrays = donor_sched.coefficient_arrays()
                for pe_id, target in zip(
                    arrays["pe_ids"], arrays["targets"]
                ):
                    self.strict_target[registry.index[pe_id]] = target

        self.gains = gains
        if self.uses_feedback:
            assert gains is not None
            self._lambdas = tuple(gains.lambdas)
            self._mus = tuple(gains.mus)
            self._flow_dt = float(gains.dt)
            self.b0_value = float(plane.b0)
            for pe in flat_pes:
                cap = pe.buffer.capacity
                if self.b0_value < 0 or self.b0_value > cap:
                    raise ValueError(
                        f"b0={self.b0_value} outside [0, {cap}]"
                    )
            history = len(self._lambdas)
            surplus_len = max(len(self._mus), 1)
            self.dev_hist = np.zeros((history, size), dtype=np.float64)
            self.sur_hist = np.zeros((surplus_len, size), dtype=np.float64)
        else:
            self._lambdas = ()
            self._mus = ()
            self._flow_dt = float(plane.dt)
            self.b0_value = float(plane.b0)
            self.dev_hist = None
            self.sur_hist = None
        self.flow_last = np.zeros(size, dtype=np.float64)
        self.flow_updates = np.zeros(size, dtype=np.int64)

        #: The engine's own fast-path bus, installed by the plane when no
        #: staleness TTL is configured; None means every bus is foreign
        #: (per-PE scalar reads/publishes, vectorized math otherwise).
        self.bus: _t.Optional[VectorFeedbackBus] = None

        view_cls = (
            VectorTokenScheduler if self.is_aces else VectorStrictScheduler
        )
        self.scheduler_views: _t.List[_t.Any] = [
            view_cls(self, index, group.pes, donor_sched.capacity)
            for index, (group, donor_sched) in enumerate(
                zip(plane.groups, donors)
            )
        ]
        self.node_controllers: _t.List[
            _t.Optional["VectorNodeController"]
        ] = [None] * len(plane.groups)
        self._groups: _t.Dict[_t.Tuple[int, ...], _TickGroup] = {}

    # -- wiring ------------------------------------------------------------

    def register_controller(
        self, controller: "VectorNodeController"
    ) -> None:
        self.node_controllers[controller.node_index] = controller

    def group_for(self, indices: _t.Tuple[int, ...]) -> _TickGroup:
        group = self._groups.get(indices)
        if group is None:
            group = _TickGroup(self, indices)
            self._groups[indices] = group
        return group

    def set_cpu_target(self, pe_id: str, value: float) -> None:
        self.cpu_target[self.registry.index[pe_id]] = value

    # -- the fused tick ----------------------------------------------------

    def control_group(
        self, group: _TickGroup, now: float
    ) -> _t.List[_t.Dict[str, float]]:
        """Run the Tier-2 decision step for every node in the group.

        Returns one ``pe_id -> cpu fraction`` dict per node (what the
        scalar :meth:`NodeController.control` returns); grant
        application stays with the callers so decide-then-apply
        ordering is identical in both implementations.
        """
        if group.total == 0:
            return [{} for _ in group.controllers]
        if self.uses_feedback:
            fractions = self._control_feedback(group, now)
        else:
            fractions = self._control_gated(group, now)
        out: _t.List[_t.Dict[str, float]] = []
        base = 0
        for controller in group.controllers:
            records = controller.records
            out.append(
                {
                    record.pe_id: float(fractions[base + k])
                    for k, record in enumerate(records)
                }
            )
            base += len(records)
        return out

    # -- feedback policies (ACES + ablations) ------------------------------

    def _control_feedback(self, group: _TickGroup, now: float) -> _t.Any:
        dt = self.dt
        bus = self.plane.bus
        fast = self.bus is not None and bus is self.bus
        caps = self._caps(group, now, bus, fast)
        # One state read serves both the g^{-1} bound and rho below:
        # nothing executes between the two scalar reads, so the values
        # are identical by construction.
        st = self._service_time(group)
        if self.is_aces:
            fractions = self._allocate_tokens(group, caps, dt, st)
        else:
            fractions = self._allocate_strict_feedback(group, dt)
        self._emit_grants(group, fractions, caps, dt)
        occ_f, occ_raw = self._snapshot(group, now)
        sel = group.sel
        cpu_target = self.cpu_target[sel]
        cpu_eff = np.where(fractions < cpu_target, cpu_target, fractions)
        rho = cpu_eff / st
        r = self._flow_update(group, occ_f, rho)
        if self.plane.recorder.enabled:
            recorder = self.plane.recorder
            for k, record in enumerate(group.records):
                recorder.emit(
                    "r_max",
                    pe=record.pe_id,
                    r_max=float(r[k]),
                    occupancy=occ_raw[k],
                    rho=float(rho[k]),
                )
        if fast:
            assert self.bus is not None
            self.bus.publish_block(sel, r, now, group.total)
        else:
            # Foreign bus (lossy wrapper / staleness guard): publish
            # per PE in node-then-record order so per-message side
            # effects (jitter RNG draws, drop decisions) match scalar.
            publish = bus.publish
            for k, record in enumerate(group.records):
                publish(record.pe_id, float(r[k]), now)
        return fractions

    def _caps(
        self, group: _TickGroup, now: float, bus: _t.Any, fast: bool
    ) -> _t.Any:
        if not fast:
            read_bound = (
                bus.max_downstream_rate
                if self.aggregate_max
                else bus.min_downstream_rate
            )
            return np.array(
                [
                    read_bound(record.downstream_ids, now)
                    for record in group.records
                ],
                dtype=np.float64,
            )
        assert self.bus is not None
        self.bus.settle_all(now)
        starts = group.down_indptr[:-1]
        vals = self.bus._current_arr[group.down_indices]
        pub = self.bus._published[group.down_indices]
        if self.aggregate_max:
            seg = np.maximum.reduceat(np.append(vals, -_INF), starts)
            allpub = np.logical_and.reduceat(np.append(pub, True), starts)
            return np.where(
                (group.down_counts == 0) | ~allpub, _INF, seg
            )
        masked = np.where(pub, vals, _INF)
        seg = np.minimum.reduceat(np.append(masked, _INF), starts)
        return np.where(group.down_counts == 0, _INF, seg)

    def _service_time(self, group: _TickGroup) -> _t.Any:
        states = np.fromiter(
            (record.pe.machine.state for record in group.records),
            dtype=np.int64,
            count=group.total,
        )
        sel = group.sel
        return np.where(states == 1, self.t1_service[sel], self.t0_service[sel])

    def _allocate_tokens(
        self, group: _TickGroup, caps: _t.Any, dt: float, st: _t.Any
    ) -> _t.Any:
        sel = group.sel
        level = self.tok_level[sel] + self.tok_rate[sel] * dt
        depth = self.tok_depth[sel]
        level = np.where(level > depth, depth, level)
        self.tok_level[sel] = level

        # g^{-1}(r): 0 at r<=0, (r/lambda_m)*T_S otherwise; +inf caps
        # propagate to +inf and vanish under the capacity min below.
        g_inv = np.where(
            caps <= 0.0, 0.0, (caps / self.lambda_m[sel]) * st
        )
        cap_node = np.array(
            [view.capacity for view in group.views], dtype=np.float64
        )
        cap_pe = np.repeat(cap_node, group.counts)
        cpu_cap = np.minimum(cap_pe, g_inv)

        backlog, occ = self._backlog_occ(group)
        work_needed = np.minimum(backlog, cpu_cap * dt)
        capped_work = np.where(work_needed > 0.0, work_needed, 0.0)
        demands = np.minimum(work_needed, level)
        demands = np.where(demands > 0.0, demands, 0.0)
        weights = occ + np.where((backlog > 0.0) & (occ == 0.0), 1.0, 0.0)

        budget = cap_node * dt
        grants = self._fill_flat(group, demands, weights, budget)
        if self.work_conserving:
            spent = self._node_sums(group, grants)
            leftover = budget - spent
            extra_demands = capped_work - grants
            extra_demands = np.where(
                extra_demands > 0.0, extra_demands, 0.0
            )
            extra = self._fill_flat(
                group,
                extra_demands,
                weights,
                np.where(leftover > 1e-12, leftover, 0.0),
            )
            grants = grants + extra
        return grants / dt

    def _allocate_strict_feedback(
        self, group: _TickGroup, dt: float
    ) -> _t.Any:
        sel = group.sel
        backlog, _ = self._backlog_occ(group)
        demands = np.where(backlog > 0.0, backlog, 0.0)
        weights = self.strict_target[sel]
        cap_node = np.array(
            [view.capacity for view in group.views], dtype=np.float64
        )
        grants = self._fill_flat(group, demands, weights, cap_node * dt)
        return grants / dt

    # -- gated (non-feedback) policies -------------------------------------

    def _control_gated(self, group: _TickGroup, now: float) -> _t.Any:
        dt = self.dt
        sel = group.sel
        blocked_flags = np.zeros(group.total, dtype=bool)
        base = 0
        for controller in group.controllers:
            blocked: _t.Set[str] = set()
            for k, record in enumerate(controller.records):
                pe = record.pe
                if pe.blocked_last_interval:
                    gate = record.gate
                    if gate is None or gate(pe):
                        pe.blocked_last_interval = False
                    else:
                        blocked.add(record.pe_id)
                        blocked_flags[base + k] = True
            controller.last_blocked = frozenset(blocked)
            base += len(controller.records)
        backlog, _ = self._backlog_occ(group)
        runnable = ~blocked_flags & (backlog > 0.0)
        demands = np.where(runnable, backlog, 0.0)
        weights = self.strict_target[sel]
        cap_node = np.array(
            [view.capacity for view in group.views], dtype=np.float64
        )
        grants = self._fill_flat(group, demands, weights, cap_node * dt)
        fractions = grants / dt
        self._emit_grants(group, fractions, None, dt)
        return fractions

    # -- shared kernels ----------------------------------------------------

    def _backlog_occ(self, group: _TickGroup) -> _t.Tuple[_t.Any, _t.Any]:
        """``backlog_work`` and occupancy for the group, one pass each.

        Rebuilds the ``backlog_work`` property (``_work_remaining +
        occupancy / rate_slope``) from raw attribute reads plus the
        precomputed ``mean_work`` array — same constant, same
        mul-then-add order, so the result is bit-equal to the scalar
        property while skipping its per-PE Python arithmetic.
        """
        occ = np.fromiter(
            (record.pe.buffer.occupancy for record in group.records),
            dtype=np.float64,
            count=group.total,
        )
        scaled = occ * self.mean_work[group.sel]
        if not self.track_work_remaining:
            return scaled, occ
        wr = np.fromiter(
            (record.pe._work_remaining for record in group.records),
            dtype=np.float64,
            count=group.total,
        )
        return wr + scaled, occ

    def _fill_flat(
        self,
        group: _TickGroup,
        demands: _t.Any,
        weights: _t.Any,
        budget: _t.Any,
    ) -> _t.Any:
        d2 = np.where(group.mask, demands[group.sorted_safe_pos], 0.0)
        w2 = np.where(group.mask, weights[group.sorted_safe_pos], 0.0)
        g2 = _fill_rounds(d2, w2, budget, group.mask)
        flat = np.zeros(group.total, dtype=np.float64)
        flat[group.sorted_flat] = g2[group.mask]
        return flat

    def _node_sums(self, group: _TickGroup, flat: _t.Any) -> _t.Any:
        """Per-node sums in placement order (the scalar ``sum()`` order)."""
        vals2 = np.where(group.mask, flat[group.safe_pos], 0.0)
        total = np.zeros(group.rows)
        for j in range(group.cols):
            total = total + vals2[:, j]
        return total

    def _snapshot(
        self, group: _TickGroup, now: float
    ) -> _t.Tuple[_t.Any, _t.List[_t.Any]]:
        """Occupancies via the adapter, node by node.

        Returns both the float64 array (for the Eq. 7 math) and the raw
        per-PE values (ints on both substrates) so r_max trace events
        carry exactly what the scalar path emits.
        """
        raw: _t.List[_t.Any] = []
        adapter = self.adapter
        snap_list = getattr(adapter, "snapshot_list", None)
        if snap_list is not None:
            for controller in group.controllers:
                raw.extend(
                    snap_list(
                        controller.node_index, controller.records, now
                    )
                )
        else:
            for controller in group.controllers:
                snap = adapter.snapshot(
                    controller.node_index, controller.records, now
                )
                raw.extend(
                    snap[record.pe_id] for record in controller.records
                )
        occ_f = np.array(raw, dtype=np.float64)
        if np.any(occ_f < 0.0):
            bad = occ_f.min()
            raise ValueError(f"occupancy must be >= 0, got {bad}")
        return occ_f, raw

    def _flow_update(
        self, group: _TickGroup, occ: _t.Any, rho: _t.Any
    ) -> _t.Any:
        """Eq. 7 for the whole group, bit-equal to FlowController.update."""
        sel = group.sel
        assert self.dev_hist is not None and self.sur_hist is not None
        dev = np.array(self.dev_hist[:, sel])
        for k in range(dev.shape[0] - 1, 0, -1):
            dev[k] = dev[k - 1]
        dev[0] = occ - self.b0_value
        sur = np.array(self.sur_hist[:, sel])

        r = rho.copy()
        for k, lam in enumerate(self._lambdas):
            r = r - lam * dev[k]
        for lag, mu in enumerate(self._mus):
            r = r - mu * sur[lag]
        r = np.where(r < 0.0, 0.0, r)
        free = self.buf_cap[sel] - occ
        free = np.where(free < 0.0, 0.0, free)
        ceiling = free / self._flow_dt + rho
        r = np.where(r > ceiling, ceiling, r)

        for lag in range(sur.shape[0] - 1, 0, -1):
            sur[lag] = sur[lag - 1]
        sur[0] = r - rho
        self.dev_hist[:, sel] = dev
        self.sur_hist[:, sel] = sur
        self.flow_last[sel] = r
        self.flow_updates[sel] += 1
        return r

    def _emit_grants(
        self,
        group: _TickGroup,
        fractions: _t.Any,
        caps: _t.Optional[_t.Any],
        dt: float,
    ) -> _t.Any:
        """Trace events per node in the scalar emission order."""
        base = 0
        for view, controller in zip(group.views, group.controllers):
            records = controller.records
            if view._recording:
                recorder = view.recorder
                node_id = view.node_id
                if self.is_aces and caps is not None:
                    for k, record in enumerate(records):
                        i = base + k
                        gi = self.registry.index[record.pe_id]
                        recorder.emit(
                            "token_bucket",
                            pe=record.pe_id,
                            node=node_id,
                            level=float(self.tok_level[gi]),
                            rate=float(self.tok_rate[gi]),
                            depth=float(self.tok_depth[gi]),
                        )
                        cap_rate = float(caps[i])
                        recorder.emit(
                            "cpu_grant",
                            pe=record.pe_id,
                            node=node_id,
                            cpu=float(fractions[i]),
                            dt=dt,
                            cap_rate=(
                                None if cap_rate == _INF else cap_rate
                            ),
                        )
                else:
                    for k, record in enumerate(records):
                        recorder.emit(
                            "cpu_grant",
                            pe=record.pe_id,
                            node=node_id,
                            cpu=float(fractions[base + k]),
                            dt=dt,
                        )
            base += len(records)


class VectorNodeController:
    """Drop-in for :class:`~repro.control.node.NodeController`.

    Same construction surface, same ``control``/``tick``/``set_gate``/
    ``refresh_cpu_targets`` behaviour — but the decision step delegates
    to the shared :class:`VectorEngine`.  A solo tick runs the engine
    on a single-node group; :meth:`ControlPlane.tick_nodes` fuses many
    nodes into one engine call.
    """

    def __init__(
        self,
        node_index: int,
        node_id: str,
        scheduler: _t.Any,
        records: _t.Sequence[ControlRecord],
        plane: "ControlPlane",
        adapter: "SystemAdapter",
        dt: float,
        uses_feedback: bool,
        aggregate_max: bool,
        is_aces: bool,
        profiler: _t.Optional[_t.Any] = None,
        engine: _t.Optional[VectorEngine] = None,
    ):
        assert engine is not None
        self.node_index = node_index
        self.node_id = node_id
        self.scheduler = scheduler
        self.records = list(records)
        self.plane = plane
        self.adapter = adapter
        self.dt = dt
        self.uses_feedback = uses_feedback
        self.aggregate_max = aggregate_max
        self.is_aces = is_aces
        self.profiler = profiler
        self.engine = engine
        self.last_blocked: _t.FrozenSet[str] = frozenset()
        self.ticks = 0
        engine.register_controller(self)
        self._solo = (node_index,)

    def control(self, now: float) -> _t.Dict[str, float]:
        """One node's decision step (engine group of one)."""
        engine = self.engine
        return engine.control_group(engine.group_for(self._solo), now)[0]

    def tick(self, now: float) -> None:
        """One full control interval: decide, then act on the substrate."""
        profiler = self.profiler
        if profiler is not None:
            profiler.push("controller_tick")
        try:
            grants = self.control(now)
        finally:
            if profiler is not None:
                profiler.pop()
        self.ticks += 1
        self.adapter.apply_grants(
            self.node_index, self.records, grants, now, self.dt,
            self.scheduler.settle,
        )

    def set_gate(self, pe_id: str, gate: _t.Optional["GateFn"]) -> bool:
        """Replace one resident PE's gate; True when the PE lives here."""
        for record in self.records:
            if record.pe_id == pe_id:
                record.gate = gate
                return True
        return False

    def refresh_cpu_targets(
        self, cpu_targets: _t.Mapping[str, float]
    ) -> None:
        """Propagate refreshed Tier-1 targets into records + arrays."""
        engine = self.engine
        for record in self.records:
            target = cpu_targets.get(record.pe_id, 0.0)
            record.cpu_target = target
            engine.set_cpu_target(record.pe_id, target)

    def __repr__(self) -> str:
        return (
            f"VectorNodeController({self.node_id}, pes={len(self.records)}, "
            f"ticks={self.ticks})"
        )
