"""Protocols between the control core and an execution substrate.

The controller never imports a substrate.  It sees the world through two
structural protocols:

* :class:`PELike` — the narrow per-PE surface every substrate's PE object
  already exposes (the simulator's :class:`~repro.model.pe.PERuntime` and
  the threaded runtime's :class:`~repro.runtime.worker.RuntimePE` both
  satisfy it).  The CPU schedulers in :mod:`repro.core.cpu_control` are
  written against the same protocol.
* :class:`SystemAdapter` — the five substrate operations the Tier-2 step
  needs: a clock, an occupancy snapshot, grant application (which reports
  CPU actually used back through the scheduler's ``settle``), gate
  installation, and trace emission.

Keeping the adapter this narrow is what makes new substrates cheap: a
sharded or multi-process node implements these five methods and inherits
the whole controller, including every policy and fault-injection hook.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.node import ControlRecord
    from repro.model.params import PEProfile

#: gate(pe) -> bool.  Checked before a PE may process; Lock-Step uses it
#: to refuse work while any downstream buffer lacks room.
GateFn = _t.Callable[["PELike"], bool]

#: settle(pe_id, cpu_seconds_used, dt) — the scheduler's token-accounting
#: callback an adapter invokes after measuring real CPU usage.
SettleFn = _t.Callable[[str, float, float], None]


class BufferLike(_t.Protocol):
    """Input-buffer observables the control plane and policies read."""

    @property
    def occupancy(self) -> int: ...

    @property
    def free(self) -> int: ...

    @property
    def capacity(self) -> int: ...


class PELike(_t.Protocol):
    """Per-PE protocol shared by every substrate's PE object.

    Attribute semantics (all already documented on the concrete classes):
    ``processing_rate(cpu)`` is the short-horizon rate ``rho_j`` at
    fractional allocation ``cpu``; ``cpu_for_output_rate_now(rate)`` is
    the state-aware inverse ``g^{-1}`` used by the Eq. 8 CPU cap;
    ``backlog_work`` estimates queued CPU-seconds; and
    ``blocked_last_interval`` reports reactive Lock-Step blocking (a
    substrate that blocks inside the worker, like the threaded runtime,
    simply always returns False).
    """

    pe_id: str
    profile: "PEProfile"
    downstream: _t.Sequence["PELike"]
    blocked_last_interval: bool

    @property
    def buffer(self) -> BufferLike: ...

    @property
    def backlog_work(self) -> float: ...

    def processing_rate(self, cpu: float) -> float: ...

    def cpu_for_output_rate_now(self, rate: float) -> float: ...


class SystemAdapter(_t.Protocol):
    """The substrate surface one :class:`NodeController` drives.

    One adapter instance serves all nodes of a system; the controller
    passes its node index and resolved records into every call so the
    adapter does not need per-node state of its own.
    """

    def clock(self) -> float:
        """Current substrate time (simulated or dilated wall clock)."""
        ...

    def snapshot(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        now: float,
    ) -> _t.Mapping[str, float]:
        """Per-PE input-buffer occupancy ``b(n)`` at ``now``.

        This is the one controller observable whose measurement differs
        between substrates (the simulator folds the read into its
        occupancy-integral telemetry; the threaded runtime reads the
        live channel depth).

        Adapters may additionally expose ``snapshot_list(node_index,
        records, now) -> Sequence[float]`` returning the same values in
        record order; the vector engine probes for it with ``getattr``
        and uses it to skip the dict round-trip on wide nodes.
        """
        ...

    def apply_grants(
        self,
        node_index: int,
        records: _t.Sequence["ControlRecord"],
        grants: _t.Mapping[str, float],
        now: float,
        dt: float,
        settle: SettleFn,
    ) -> None:
        """Put this interval's CPU fractions into effect.

        The substrate executes (or schedules) the granted work and must
        report the CPU-seconds each PE actually consumed back through
        ``settle`` so token balances reflect reality.
        """
        ...

    def apply_gates(self, pe_id: str, gate: _t.Optional[GateFn]) -> None:
        """React to a gate replacement (fault injection, operator pause).

        The control plane keeps the authoritative gate in its records;
        substrates that enforce gates outside the control step (the
        threaded runtime's in-worker Lock-Step check) hook here.
        """
        ...

    def emit_trace(self, kind: str, **fields: _t.Any) -> None:
        """Publish one trace event on the substrate's recorder."""
        ...
