"""Workload forecasting + proactive re-optimization (the anticipatory tier).

ACES as reproduced so far is purely *reactive*: Tier-1 re-solves from
rates already measured, the PR-8 admission ladder moves once latency has
degraded, and the PR-9 autoscaler fires only after buffer pressure has
dwelt above threshold.  Phoebe-style systems instead *anticipate*
dynamic workloads and re-provision ahead of the shift.  This module
adds that capability as a strictly additive layer:

* :class:`EwmaForecaster` — exponentially weighted moving average; the
  forecast is flat (the level), which is the right model for slow
  drifts and the cheap default.
* :class:`HoltWintersForecaster` — additive Holt-Winters (level +
  trend + additive seasonal component) over regularly sampled inputs;
  the right model for diurnal cycles and periodic bursts.
* :class:`ForecastController` — the proactive policy the
  :class:`~repro.control.plane.ControlPlane` ticks: it samples
  per-source cumulative generated counters at a fixed cadence, turns
  the deltas into rate observations, feeds one forecaster per source
  stream, and compares the aggregate forecast ``horizon`` steps ahead
  against the provisioned baseline.  When the predicted load exceeds
  ``headroom`` × baseline for ``dwell_ticks`` consecutive samples (and
  the trigger cooldown has passed), it fires *proactively*: a Tier-1
  re-solve from the predicted rates, and — when the elastic tier is
  armed — a scale-out request routed through
  :meth:`~repro.control.elastic.ScalingPolicy.request_external`, which
  shares the PR-9 cooldown so reactive and proactive triggers can
  never thrash each other.

Everything is deterministic and substrate-free: identical
``(counter, now)`` sequences yield identical forecasts and identical
trigger sequences on any substrate — the cross-substrate parity tests
rely on this.  Both forecasters are shift/scale-equivariant, converge
exactly on constant inputs, and reproduce pure-seasonal inputs exactly
after one bootstrap season; :mod:`tests.test_forecast_properties`
proves those claims property-by-property with Hypothesis.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.obs.recorder import NULL_RECORDER, TraceRecorder

#: A cumulative-count probe: () -> SDOs generated so far by one source.
CounterFn = _t.Callable[[], int]
#: Proactive Tier-1 hook: (predicted pe_id -> rate) -> None.
ReoptimizeFn = _t.Callable[[_t.Mapping[str, float]], None]
#: Proactive scale-out hook: (now) -> fired?  (False: vetoed/cooldown.)
ScaleOutFn = _t.Callable[[float], bool]

FORECASTER_KINDS = ("ewma", "holtwinters")


@dataclass(frozen=True)
class ForecastConfig:
    """Tuning of the forecasting tier (hashable, picklable).

    The trigger predicate compares the aggregate forecast ``horizon``
    samples ahead against the *baseline* load the system was
    provisioned for (the Tier-1 bootstrap rates): a predicted/baseline
    ratio at or above ``headroom`` is a predicted overload.  The
    ``dwell_ticks``/``cooldown`` pair is the admission ladder's
    anti-oscillation shape — consecutive confirmation before acting,
    then a quiet period after acting.
    """

    #: Forecaster model: "ewma" (flat) or "holtwinters" (additive
    #: seasonal; needs ``season_length`` samples to bootstrap).
    kind: str = "holtwinters"
    #: Level smoothing factor (both models), in (0, 1].
    alpha: float = 0.5
    #: Trend smoothing factor (Holt-Winters), in [0, 1].
    beta: float = 0.1
    #: Seasonal smoothing factor (Holt-Winters), in [0, 1].
    gamma: float = 0.3
    #: Samples per season (Holt-Winters).
    season_length: int = 8
    #: Seconds between rate samples (the forecast cadence).
    sample_interval: float = 0.25
    #: Forecast lead, in samples ahead (the anticipation window).
    horizon: int = 2
    #: Predicted/baseline load ratio that constitutes predicted
    #: overload (1.5 = "50% above provisioned load is coming").
    headroom: float = 1.5
    #: Consecutive over-headroom forecasts required before firing.
    dwell_ticks: int = 2
    #: Seconds after a proactive trigger before the next may fire.
    cooldown: float = 2.0
    #: Route a scale-out request through the elastic tier's policy when
    #: one is armed (shares the PR-9 cooldown; a no-op otherwise).
    scale_out: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FORECASTER_KINDS:
            raise ValueError(
                f"kind must be one of {FORECASTER_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {self.alpha}")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"beta must lie in [0, 1], got {self.beta}")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must lie in [0, 1], got {self.gamma}")
        if self.season_length < 2:
            raise ValueError(
                f"season_length must be >= 2, got {self.season_length}"
            )
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got "
                f"{self.sample_interval}"
            )
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.headroom <= 1.0:
            raise ValueError(
                f"headroom must be > 1 (a ratio of predicted to "
                f"provisioned load), got {self.headroom}"
            )
        if self.dwell_ticks < 1:
            raise ValueError(
                f"dwell_ticks must be >= 1, got {self.dwell_ticks}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


class EwmaForecaster:
    """Streaming EWMA: level_t = alpha*x_t + (1-alpha)*level_{t-1}.

    The h-step forecast is flat (the level) for every h — EWMA carries
    no trend or seasonal state.  The update is an affine map of the
    input, so the forecaster is exactly shift/scale-equivariant, and
    on constant inputs the level equals the input from the first
    sample on.
    """

    __slots__ = ("alpha", "level", "samples")

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        self.alpha = alpha
        self.level: _t.Optional[float] = None
        self.samples = 0

    @property
    def ready(self) -> bool:
        """A forecast is meaningful once one sample has been seen."""
        return self.level is not None

    def update(self, value: float) -> None:
        """Fold one observation into the state."""
        if self.level is None:
            self.level = value
        else:
            self.level = self.alpha * value + (1.0 - self.alpha) * self.level
        self.samples += 1

    def forecast(self, steps: int = 1) -> float:
        """Predicted value ``steps`` samples ahead (flat)."""
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        return 0.0 if self.level is None else self.level


class HoltWintersForecaster:
    """Additive-seasonal Holt-Winters over regularly sampled inputs.

    Bootstrap: the first ``season_length`` samples are buffered; on the
    last of them the state initializes to ``level = mean(buffer)``,
    ``trend = 0``, ``season[i] = buffer[i] - level``.  From then on the
    standard additive recurrences run per sample::

        level' = alpha*(x - season[i]) + (1-alpha)*(level + trend)
        trend' = beta*(level' - level) + (1-beta)*trend
        season[i]' = gamma*(x - level') + (1-gamma)*season[i]

    and ``forecast(h) = level + h*trend + season[(n + h - 1) mod m]``
    (``n`` = samples seen, so the seasonal index lines up with the slot
    the h-th future sample will occupy).  Before bootstrap completes
    the forecast falls back to the running mean — flat, finite, and
    still shift/scale-equivariant.

    Every update is an affine function of the inputs, so the whole
    state — and therefore every forecast — is exactly equivariant under
    ``x -> a*x + b`` (level and seasonal buffer map affinely, trend and
    seasonal *deviations* scale by ``a``).  A pure-seasonal input with
    period ``season_length`` is reproduced exactly: the bootstrap
    captures the seasonal profile with zero residual and every
    subsequent update is a fixed point.
    """

    __slots__ = (
        "alpha",
        "beta",
        "gamma",
        "season_length",
        "level",
        "trend",
        "season",
        "samples",
        "_bootstrap",
    )

    def __init__(
        self,
        alpha: float,
        beta: float,
        gamma: float,
        season_length: int,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must lie in [0, 1], got {beta}")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must lie in [0, 1], got {gamma}")
        if season_length < 2:
            raise ValueError(
                f"season_length must be >= 2, got {season_length}"
            )
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_length = season_length
        self.level = 0.0
        self.trend = 0.0
        self.season: _t.List[float] = []
        self.samples = 0
        self._bootstrap: _t.List[float] = []

    @property
    def ready(self) -> bool:
        """True once the seasonal state is initialized."""
        return bool(self.season)

    def update(self, value: float) -> None:
        """Fold one observation into the state."""
        if not self.season:
            self._bootstrap.append(value)
            self.samples += 1
            if len(self._bootstrap) == self.season_length:
                level = sum(self._bootstrap) / self.season_length
                self.level = level
                self.trend = 0.0
                self.season = [x - level for x in self._bootstrap]
                self._bootstrap = []
            return
        index = self.samples % self.season_length
        previous_level = self.level
        self.level = self.alpha * (value - self.season[index]) + (
            1.0 - self.alpha
        ) * (self.level + self.trend)
        self.trend = (
            self.beta * (self.level - previous_level)
            + (1.0 - self.beta) * self.trend
        )
        self.season[index] = (
            self.gamma * (value - self.level)
            + (1.0 - self.gamma) * self.season[index]
        )
        self.samples += 1

    def forecast(self, steps: int = 1) -> float:
        """Predicted value ``steps`` samples ahead."""
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if not self.season:
            if self.samples == 0:
                return 0.0
            return sum(self._bootstrap) / len(self._bootstrap)
        index = (self.samples + steps - 1) % self.season_length
        return self.level + steps * self.trend + self.season[index]


#: Either streaming forecaster (duck-typed: update / forecast / ready).
Forecaster = _t.Union[EwmaForecaster, HoltWintersForecaster]


def make_forecaster(config: ForecastConfig) -> Forecaster:
    """Build one forecaster instance from the config."""
    if config.kind == "ewma":
        return EwmaForecaster(config.alpha)
    return HoltWintersForecaster(
        config.alpha, config.beta, config.gamma, config.season_length
    )


@dataclass
class ProactiveTriggerRecord:
    """One fired proactive trigger, kept for the bench report."""

    t: float
    #: Predicted/baseline load ratio that fired the trigger.
    ratio: float
    #: Aggregate predicted rate (SDO/s) at the forecast horizon.
    predicted: float
    #: Whether the Tier-1 proactive re-solve was performed.
    reoptimized: bool
    #: Whether a scale-out request fired through the elastic policy
    #: (False when no elastic tier is armed or its cooldown vetoed it).
    scaled_out: bool


class ForecastController:
    """The proactive policy one :class:`~repro.control.plane.ControlPlane` ticks.

    Lifecycle: construct with a config, :meth:`bind` to per-source
    cumulative generated counters plus the provisioned baseline rates
    and the substrate's proactive hooks, then let the plane call
    :meth:`tick` every ``sample_interval``.  :meth:`observe` is the
    scriptable entry point the cross-substrate parity tests drive:
    identical ``(rates, now)`` sequences must yield identical forecast
    and trigger sequences on any substrate.
    """

    def __init__(
        self,
        config: ForecastConfig,
        recorder: _t.Optional[TraceRecorder] = None,
    ) -> None:
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: pe_id -> forecaster, one per bound source stream.
        self.forecasters: _t.Dict[str, Forecaster] = {}
        self.ticks = 0
        self.triggers: _t.List[ProactiveTriggerRecord] = []
        #: Last per-stream observed rates / horizon forecasts (gauges
        #: and the bench read these).
        self.last_rates: _t.Dict[str, float] = {}
        self.last_forecast: _t.Dict[str, float] = {}
        #: Last aggregate predicted/baseline ratio (gauge surface).
        self.last_ratio = 0.0
        #: One-step-ahead forecast error accounting (MAE numerator /
        #: sample count): each tick scores the previous tick's 1-step
        #: forecast against the rate actually realized.
        self.abs_error_sum = 0.0
        self.error_samples = 0
        self._counters: _t.Dict[str, CounterFn] = {}
        self._baseline: _t.Dict[str, float] = {}
        self._baseline_total = 0.0
        self._reoptimize: _t.Optional[ReoptimizeFn] = None
        self._scale_out: _t.Optional[ScaleOutFn] = None
        self._active_after = 0.0
        self._last_counts: _t.Dict[str, int] = {}
        self._last_tick: _t.Optional[float] = None
        self._pending: _t.Dict[str, float] = {}
        self._streak = 0
        self._cooldown_until = float("-inf")

    # -- wiring --------------------------------------------------------------

    def bind(
        self,
        counters: _t.Mapping[str, CounterFn],
        baseline: _t.Mapping[str, float],
        reoptimize_fn: _t.Optional[ReoptimizeFn] = None,
        scale_out_fn: _t.Optional[ScaleOutFn] = None,
        active_after: float = 0.0,
    ) -> None:
        """Attach the source-rate probes and the proactive hooks.

        ``counters`` maps ingress pe_id to a cumulative generated-count
        probe; ``baseline`` maps the same ids to the provisioned rates
        Tier-1 bootstrapped against.  ``active_after`` suppresses
        triggers (not sampling) before that instant, so warm-up
        transients never fire a re-solve the measured window would pay
        for.
        """
        missing = [pe_id for pe_id in counters if pe_id not in baseline]
        if missing:
            raise ValueError(
                f"no baseline rate for bound stream(s) {missing}"
            )
        self._counters = dict(sorted(counters.items()))
        self._baseline = {
            pe_id: float(baseline[pe_id]) for pe_id in self._counters
        }
        self._baseline_total = sum(self._baseline.values())
        if self._baseline_total <= 0:
            raise ValueError(
                "aggregate baseline rate must be positive, got "
                f"{self._baseline_total}"
            )
        self._reoptimize = reoptimize_fn
        self._scale_out = scale_out_fn
        self._active_after = active_after
        for pe_id in self._counters:
            self.forecasters.setdefault(pe_id, make_forecaster(self.config))

    # -- control-tick entry points -------------------------------------------

    def tick(self, now: float) -> None:
        """Sample the bound counters and advance the forecast state.

        The first tick only captures the counter watermarks (a rate
        needs two readings); every later tick converts deltas to rates
        and runs :meth:`observe`.
        """
        if self._last_tick is None:
            self._last_tick = now
            for pe_id, probe in self._counters.items():
                self._last_counts[pe_id] = probe()
            return
        elapsed = now - self._last_tick
        if elapsed <= 0.0:
            return
        rates: _t.Dict[str, float] = {}
        for pe_id, probe in self._counters.items():
            count = probe()
            rates[pe_id] = (count - self._last_counts.get(pe_id, 0)) / elapsed
            self._last_counts[pe_id] = count
        self._last_tick = now
        self.observe(rates, now)

    def observe(self, rates: _t.Mapping[str, float], now: float) -> None:
        """Advance the forecast state from explicit per-stream rates.

        Deterministic and side-effect-ordered: forecaster updates run
        in sorted pe_id order, the trigger predicate sees this tick's
        forecasts, and the proactive hooks fire at most once per tick.
        """
        config = self.config
        self.ticks += 1
        predicted_total = 0.0
        for pe_id in sorted(rates):
            rate = float(rates[pe_id])
            forecaster = self.forecasters.get(pe_id)
            if forecaster is None:
                forecaster = make_forecaster(config)
                self.forecasters[pe_id] = forecaster
            pending = self._pending.get(pe_id)
            if pending is not None:
                self.abs_error_sum += abs(pending - rate)
                self.error_samples += 1
            forecaster.update(rate)
            self.last_rates[pe_id] = rate
            self._pending[pe_id] = forecaster.forecast(1)
            prediction = forecaster.forecast(config.horizon)
            self.last_forecast[pe_id] = prediction
            predicted_total += max(0.0, prediction)
        observed_total = sum(float(value) for value in rates.values())
        ratio = predicted_total / self._baseline_total
        self.last_ratio = ratio
        if ratio >= config.headroom:
            self._streak += 1
        else:
            self._streak = 0
        fired = False
        if (
            self._streak >= config.dwell_ticks
            and now >= self._cooldown_until
            and now >= self._active_after
        ):
            fired = True
            self._fire(now, ratio, predicted_total)
        if self.recorder.enabled:
            self.recorder.emit(
                "forecast",
                predicted=predicted_total,
                observed=observed_total,
                baseline=self._baseline_total,
                ratio=ratio,
                streak=self._streak if not fired else 0,
                fired=fired,
            )

    @property
    def mean_abs_error(self) -> float:
        """One-step-ahead forecast MAE over the run (0 before scoring)."""
        if self.error_samples == 0:
            return 0.0
        return self.abs_error_sum / self.error_samples

    def _fire(self, now: float, ratio: float, predicted: float) -> None:
        """Perform the proactive actions and start the cooldown."""
        self._streak = 0
        self._cooldown_until = now + self.config.cooldown
        reoptimized = False
        if self._reoptimize is not None:
            # Predicted per-stream rates, floored at zero: Tier-1
            # re-solves against the load that is *coming*, not the load
            # already measured.
            self._reoptimize(
                {
                    pe_id: max(0.0, self.last_forecast.get(pe_id, 0.0))
                    for pe_id in self._counters
                }
            )
            reoptimized = True
        scaled_out = False
        if self.config.scale_out and self._scale_out is not None:
            scaled_out = self._scale_out(now)
        record = ProactiveTriggerRecord(
            t=now,
            ratio=ratio,
            predicted=predicted,
            reoptimized=reoptimized,
            scaled_out=scaled_out,
        )
        self.triggers.append(record)
        if self.recorder.enabled:
            self.recorder.emit(
                "proactive_trigger",
                ratio=ratio,
                predicted=predicted,
                baseline=self._baseline_total,
                reoptimized=reoptimized,
                scaled_out=scaled_out,
            )

    def __repr__(self) -> str:
        return (
            f"ForecastController(kind={self.config.kind}, "
            f"ticks={self.ticks}, triggers={len(self.triggers)}, "
            f"ratio={self.last_ratio:.3f})"
        )
