"""Tier-3 elasticity: versioned placement, membership, and autoscaling.

The paper holds placement fixed after Tier-1 assigns it.  This module
adds the third control tier on top: placement becomes a *versioned
runtime object* (:class:`PlacementBook` holding a chain of
:class:`PlacementVersion` epochs), node membership becomes mutable
(:meth:`~repro.control.plane.ControlPlane.add_node` /
``remove_node`` / ``migrate_pes`` rebuild the Tier-2 state at an epoch
boundary), and a :class:`ScalingPolicy` decides *when* to scale from a
utilization/queue pressure signal using the admission ladder's
hysteresis-plus-dwell pattern.

The tier is strictly additive: systems built without an
:class:`ElasticityConfig` never construct any of this and their outputs
stay byte-identical to the pre-elasticity code.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

#: A scaling decision: what the policy wants the system to do now.
ScalingDecision = str  # "scale_out" | "scale_in" | "hold"


@dataclass(frozen=True)
class PlacementVersion:
    """One immutable epoch of the placement history.

    ``placement`` maps pe_id -> node index into the node list in effect
    at this epoch; ``diff`` records what changed relative to the
    previous epoch as ``pe_id -> (old_node, new_node)`` (``old_node`` is
    None for a PE that did not exist before, which cannot happen today
    but keeps the contract total).
    """

    epoch: int
    placement: _t.Mapping[str, int]
    num_nodes: int
    diff: _t.Mapping[str, _t.Tuple[_t.Optional[int], int]]
    reason: str = "initial"

    @property
    def migrations(self) -> _t.Tuple[_t.Tuple[str, int, int], ...]:
        """The migration set: ``(pe_id, from_node, to_node)`` triples."""
        return tuple(
            (pe_id, old, new)
            for pe_id, (old, new) in self.diff.items()
            if old is not None and old != new
        )

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if self.num_nodes <= 0:
            raise ValueError(
                f"num_nodes must be positive, got {self.num_nodes}"
            )
        for pe_id, node in self.placement.items():
            if not (0 <= node < self.num_nodes):
                raise ValueError(
                    f"placement maps {pe_id!r} to node {node}, outside "
                    f"[0, {self.num_nodes})"
                )


class PlacementBook:
    """The mutable spine of placement history: an append-only epoch chain.

    Every consumer that used to read a frozen ``topology.placement``
    dict reads :attr:`placement` (the current epoch's mapping) instead;
    the elastic tier appends epochs via :meth:`advance` and the full
    history stays available for tracing and the bench report.

    The seed epoch copies the initial mapping, preserving insertion
    order — Tier-1's solver iterates the mapping, so order is part of
    the determinism contract.
    """

    def __init__(
        self, placement: _t.Mapping[str, int], num_nodes: int
    ) -> None:
        seed = PlacementVersion(
            epoch=0,
            placement=dict(placement),
            num_nodes=num_nodes,
            diff={},
            reason="initial",
        )
        self.versions: _t.List[PlacementVersion] = [seed]

    @property
    def current(self) -> PlacementVersion:
        return self.versions[-1]

    @property
    def placement(self) -> _t.Mapping[str, int]:
        """The live pe_id -> node-index mapping (current epoch)."""
        return self.current.placement

    @property
    def epoch(self) -> int:
        return self.current.epoch

    @property
    def num_nodes(self) -> int:
        return self.current.num_nodes

    def node_of(self, pe_id: str) -> int:
        return self.current.placement[pe_id]

    def advance(
        self,
        placement: _t.Mapping[str, int],
        num_nodes: int,
        reason: str,
    ) -> PlacementVersion:
        """Append a new epoch, computing the diff against the current one.

        The new mapping is copied with the *previous* epoch's key order
        preserved for surviving PEs (new PEs append), so downstream
        deterministic iteration (Tier-1 variable order) is stable across
        epochs.
        """
        previous = self.current
        ordered: _t.Dict[str, int] = {}
        for pe_id in previous.placement:
            if pe_id in placement:
                ordered[pe_id] = placement[pe_id]
        for pe_id, node in placement.items():
            if pe_id not in ordered:
                ordered[pe_id] = node
        diff: _t.Dict[str, _t.Tuple[_t.Optional[int], int]] = {}
        for pe_id, node in ordered.items():
            old = previous.placement.get(pe_id)
            if old != node:
                diff[pe_id] = (old, node)
        version = PlacementVersion(
            epoch=previous.epoch + 1,
            placement=ordered,
            num_nodes=num_nodes,
            diff=diff,
            reason=reason,
        )
        self.versions.append(version)
        return version

    def __repr__(self) -> str:
        return (
            f"PlacementBook(epoch={self.epoch}, "
            f"nodes={self.num_nodes}, pes={len(self.placement)})"
        )


@dataclass
class MigrationRecord:
    """One live PE migration: identity, route, and observed downtime.

    Shared by both substrates: the simulator fills ``downtime`` from its
    consumed-counter watermark watcher; the threaded runtime's workers
    never stop draining their channels during a (plane-only) migration,
    so it reports a downtime of zero.
    """

    pe_id: str
    t: float
    from_node: str
    to_node: str
    epoch: int
    #: SDOs lifted through the buffer handoff (conserved exactly).
    handoff_occupancy: int
    #: Seconds until the PE's consumed counter advanced past its
    #: pre-migration watermark; None when it never consumed again
    #: before the run ended (e.g. no further traffic reached it).
    downtime: _t.Optional[float] = None


@dataclass
class ElasticityConfig:
    """Arming switch and tuning knobs for the elastic tier.

    Pressure is the max over nodes of a blended utilization/queue
    signal in [0, 1] (see the substrate's pressure probe).  The policy
    scales out when pressure dwells above ``scale_out_pressure`` and in
    when it dwells below ``scale_in_pressure`` — a hysteresis band, the
    same shape as the admission ladder's enter/exit thresholds, so the
    two never chatter against each other.
    """

    #: Pressure at or above which the policy wants another node.
    scale_out_pressure: float = 0.85
    #: Pressure at or below which the policy wants one fewer node.
    scale_in_pressure: float = 0.35
    min_nodes: int = 1
    max_nodes: int = 16
    #: Seconds between pressure observations (the Tier-3 cadence).
    check_interval: float = 0.5
    #: Consecutive beyond-threshold observations required to act
    #: (min-dwell, the admission ladder's anti-oscillation pattern).
    dwell_intervals: int = 3
    #: Seconds after any membership action before the next may fire.
    cooldown: float = 2.0
    #: Cap on PE moves applied per epoch (bounds per-epoch disruption).
    max_migrations_per_epoch: int = 4
    #: Evaluation budget handed to ``optimize_placement`` per re-solve.
    placement_evaluations: int = 24

    def __post_init__(self) -> None:
        if not (0.0 <= self.scale_in_pressure < self.scale_out_pressure <= 1.0):
            raise ValueError(
                "need 0 <= scale_in_pressure < scale_out_pressure <= 1, "
                f"got {self.scale_in_pressure} / {self.scale_out_pressure}"
            )
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes ({self.max_nodes}) < min_nodes ({self.min_nodes})"
            )
        if self.check_interval <= 0:
            raise ValueError(
                f"check_interval must be positive, got {self.check_interval}"
            )
        if self.dwell_intervals < 1:
            raise ValueError(
                f"dwell_intervals must be >= 1, got {self.dwell_intervals}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.max_migrations_per_epoch < 1:
            raise ValueError(
                "max_migrations_per_epoch must be >= 1, got "
                f"{self.max_migrations_per_epoch}"
            )
        if self.placement_evaluations < 1:
            raise ValueError(
                "placement_evaluations must be >= 1, got "
                f"{self.placement_evaluations}"
            )


@dataclass
class ScalingDecisionRecord:
    """One fired decision, kept for the bench report."""

    t: float
    decision: ScalingDecision
    pressure: float
    num_nodes: int


class ScalingPolicy:
    """Hysteresis + min-dwell + cooldown over a scalar pressure signal.

    Pure and substrate-free: callers feed ``observe(pressure, now)``
    once per check interval and act on the returned decision.  The
    policy never fires outside the configured node bounds, never fires
    during cooldown, and requires ``dwell_intervals`` *consecutive*
    beyond-threshold observations — one in-band reading resets the
    streak, exactly like the admission ladder's min-dwell.
    """

    def __init__(self, config: ElasticityConfig) -> None:
        self.config = config
        self._out_streak = 0
        self._in_streak = 0
        self._cooldown_until = float("-inf")
        self.decisions: _t.List[ScalingDecisionRecord] = []

    def observe(
        self,
        pressure: float,
        now: float,
        num_nodes: int,
        slack_pressure: _t.Optional[float] = None,
    ) -> ScalingDecision:
        """Feed one observation; returns the decision to apply.

        ``pressure`` is the hot-spot signal (max over nodes) and drives
        scale-out; ``slack_pressure`` is the cluster-wide slack signal
        (mean over nodes, empty nodes counting as zero) and drives
        scale-in.  The asymmetry is deliberate: one saturated node
        justifies growing the cluster, but only cluster-wide idleness
        justifies shrinking it — under a skew-prone policy the hottest
        node can stay pinned near full long after aggregate load has
        collapsed.  Callers with a single signal omit ``slack_pressure``
        and the hot-spot value serves both sides.
        """
        config = self.config
        slack = pressure if slack_pressure is None else slack_pressure
        if pressure >= config.scale_out_pressure:
            self._out_streak += 1
            self._in_streak = 0
        elif slack <= config.scale_in_pressure:
            self._in_streak += 1
            self._out_streak = 0
        else:
            self._out_streak = 0
            self._in_streak = 0
        if now < self._cooldown_until:
            return "hold"
        if (
            self._out_streak >= config.dwell_intervals
            and num_nodes < config.max_nodes
        ):
            self._fire("scale_out", pressure, now, num_nodes)
            return "scale_out"
        if (
            self._in_streak >= config.dwell_intervals
            and num_nodes > config.min_nodes
        ):
            self._fire("scale_in", slack, now, num_nodes)
            return "scale_in"
        return "hold"

    def request_external(
        self,
        decision: ScalingDecision,
        now: float,
        num_nodes: int,
        pressure: float = 0.0,
    ) -> bool:
        """Request a scaling action from outside the reactive loop.

        The forecasting tier's proactive triggers route through here so
        reactive and proactive decisions share one cooldown: a granted
        request fires exactly like a reactive decision (streaks reset,
        the cooldown starts, the decision is recorded), which means the
        reactive loop then holds through the same quiet period — the
        two can never thrash each other.  Returns False (and does
        nothing) during cooldown or outside the configured node bounds.
        """
        if decision not in ("scale_out", "scale_in"):
            raise ValueError(
                f"decision must be 'scale_out' or 'scale_in', "
                f"got {decision!r}"
            )
        config = self.config
        if now < self._cooldown_until:
            return False
        if decision == "scale_out" and num_nodes >= config.max_nodes:
            return False
        if decision == "scale_in" and num_nodes <= config.min_nodes:
            return False
        self._fire(decision, pressure, now, num_nodes)
        return True

    def _fire(
        self,
        decision: ScalingDecision,
        pressure: float,
        now: float,
        num_nodes: int,
    ) -> None:
        self._out_streak = 0
        self._in_streak = 0
        self._cooldown_until = now + self.config.cooldown
        self.decisions.append(
            ScalingDecisionRecord(
                t=now,
                decision=decision,
                pressure=pressure,
                num_nodes=num_nodes,
            )
        )


def plan_scale_out_placement(
    placement: _t.Mapping[str, int],
    num_nodes: int,
    load: _t.Mapping[str, float],
    max_moves: int,
) -> _t.Dict[str, int]:
    """Seed placement for a freshly joined node: offload the hottest PEs.

    A deterministic greedy seed used before (or instead of) the full
    ``optimize_placement`` re-solve: take up to ``max_moves`` PEs from
    the most loaded nodes — heaviest ``load`` first, pe_id as the
    tiebreak — and move them to the new node (index ``num_nodes - 1``).
    Never moves a PE that is alone on its node.
    """
    new_node = num_nodes - 1
    result = dict(placement)
    counts: _t.Dict[int, int] = {}
    for node in result.values():
        counts[node] = counts.get(node, 0) + 1
    candidates = sorted(
        (pe_id for pe_id, node in result.items() if node != new_node),
        key=lambda pe_id: (-load.get(pe_id, 0.0), pe_id),
    )
    moved = 0
    for pe_id in candidates:
        if moved >= max_moves:
            break
        home = result[pe_id]
        if counts.get(home, 0) <= 1:
            continue
        result[pe_id] = new_node
        counts[home] -= 1
        counts[new_node] = counts.get(new_node, 0) + 1
        moved += 1
    return result


def plan_scale_in_placement(
    placement: _t.Mapping[str, int],
    num_nodes: int,
    victim: int,
    load: _t.Mapping[str, float],
) -> _t.Dict[str, int]:
    """Relocate every PE off ``victim`` and renumber nodes above it.

    PEs leaving the victim go to the currently least-loaded surviving
    node (fewest resident PEs, lowest index as the tiebreak); placements
    referencing nodes above the victim shift down by one so the result
    indexes the post-removal node list.
    """
    if not (0 <= victim < num_nodes):
        raise ValueError(
            f"victim node {victim} outside [0, {num_nodes})"
        )
    survivors = [n for n in range(num_nodes) if n != victim]
    weight: _t.Dict[int, float] = {n: 0.0 for n in survivors}
    for pe_id, node in placement.items():
        if node != victim:
            weight[node] += load.get(pe_id, 1.0)
    result: _t.Dict[str, int] = {}
    for pe_id, node in placement.items():
        if node == victim:
            target = min(survivors, key=lambda n: (weight[n], n))
            weight[target] += load.get(pe_id, 1.0)
            node = target
        result[pe_id] = node if node < victim else node - 1
    return result
