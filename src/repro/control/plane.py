"""The control plane: policy hooks -> per-node controllers, shared state.

:class:`ControlPlane` is the one place a :class:`~repro.core.policies.
Policy`'s behavioural factories (scheduler, flow-controller gains, gate,
admission filter, feedback aggregation) are resolved into runnable
control state.  It owns everything the Tier-2 loops share:

* the :class:`~repro.core.feedback.FeedbackBus` (swappable at runtime,
  which is how fault injection models lossy/congested control networks);
* the :class:`~repro.core.resilience.ResilientTier1` degradation guard
  and the target-adoption path used by periodic re-optimization;
* the authoritative gate and admission-filter registries, with the
  single dynamic-replacement entry point (:meth:`set_gate`);
* the per-node pause flags behind controller-outage injection
  (:meth:`suspend_node` / :meth:`resume_node`).

Feedback aggregation (Eq. 8 max-flow vs the min-flow ablation) is
resolved here exactly once — substrates must not re-derive it.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.control.adapter import GateFn, PELike, SystemAdapter
from repro.control.admission import AdmissionController
from repro.control.forecast import ForecastController
from repro.control.node import ControlRecord, NodeController
from repro.control.vector import (
    PEIndexRegistry,
    VectorEngine,
    VectorFeedbackBus,
    VectorFlowView,
    VectorNodeController,
    fallback_reason,
)
from repro.core.cpu_control import AcesCpuScheduler
from repro.core.feedback import FeedbackBus
from repro.core.flow_control import FlowController
from repro.core.resilience import ResilientTier1, Tier1Unavailable
from repro.core.targets import AllocationTargets
from repro.obs.recorder import NULL_RECORDER, TraceRecorder

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.global_opt import GlobalOptimizationResult
    from repro.core.policies import Policy
    from repro.graph.dag import ProcessingGraph
    from repro.graph.placement import Placement
    from repro.graph.topology import Topology
    from repro.obs.gauges import GaugeRegistry

#: Admission filter: admit(pe, sdo) -> bool, or None for admit-everything.
AdmissionFn = _t.Optional[_t.Callable[[PELike, object], bool]]


@dataclass(frozen=True)
class PlaneInspection:
    """Narrow read-only view of a control plane for invariant oracles.

    :mod:`repro.check` validates paper invariants *online* against trace
    events; doing so needs a handful of live references that are
    otherwise scattered across plane internals.  This is the one
    sanctioned inspection surface — oracles must not reach into other
    plane state, so the checked surface stays an explicit contract.

    All mappings are built once at :meth:`ControlPlane.inspection` time
    but reference *live* objects: scheduler capacities reflect injected
    node slowdowns, ``paused`` is the plane's own mutable list, and
    ``controllers`` are the real flow controllers.
    """

    #: pe_id -> PE runtime (for rate-model state the Eq. 8 check needs).
    pes: _t.Mapping[str, PELike]
    #: pe_id -> node_id of the node the PE is placed on.
    node_of: _t.Mapping[str, str]
    #: node_id -> live scheduler (``.capacity`` tracks fault injection).
    schedulers: _t.Mapping[str, _t.Any]
    #: node_id -> nominal CPU capacity (what Tier-1 budgets against).
    nominal_capacity: _t.Mapping[str, float]
    #: node_id -> number of resident PEs (one cpu_grant event each).
    group_sizes: _t.Mapping[str, int]
    #: node_id -> node index (``paused`` is indexed by this).
    node_index: _t.Mapping[str, int]
    #: pe_id -> flow controller (feedback policies only); a
    #: FlowController, or a VectorFlowView under control_impl=vector.
    controllers: _t.Mapping[str, _t.Any]
    #: node_id -> node controller (``last_blocked`` gate decisions).
    node_controllers: _t.Mapping[str, _t.Any]
    #: The plane's live per-node pause flags (not a copy).
    paused: _t.Sequence[bool]
    #: The plane itself, for targets/policy metadata reads.
    plane: "ControlPlane"
    #: The admission front end, when armed (None otherwise).
    admission: _t.Optional[AdmissionController] = None
    #: The forecasting tier, when armed (None otherwise).
    forecast: _t.Optional[ForecastController] = None


@dataclass
class NodeGroup:
    """The PEs resident on one node, as the control plane sees them."""

    node_id: str
    pes: _t.List[PELike] = field(default_factory=list)
    cpu_capacity: float = 1.0


@dataclass
class _EpochCarry:
    """Control state harvested before a membership rebuild.

    Everything here is keyed by stable identity (node_id / pe_id), never
    by index, so it survives node-list surgery: pause flags and injected
    capacity slowdowns follow their node, token levels and Eq. 7
    histories follow their PE.
    """

    paused: _t.Dict[str, bool]
    ticks: _t.Dict[str, int]
    blocked: _t.Dict[str, _t.FrozenSet[str]]
    capacity: _t.Dict[str, float]
    token_levels: _t.Dict[str, float]
    #: Vector-engine per-PE flow state (None when the engine is off).
    vector: _t.Optional[_t.Dict[str, _t.Dict[str, _t.Any]]]
    #: Vector bus contents (None when the scalar bus is in use — the
    #: scalar bus is pe_id-keyed and survives rebuilds untouched).
    bus: _t.Optional[_t.Dict[str, _t.Any]]


def resolve_initial_targets(
    tier1: ResilientTier1,
    topology: "Topology",
    targets: _t.Optional[AllocationTargets] = None,
) -> AllocationTargets:
    """Tier-1 bootstrap: solve when no targets given, else seed the guard.

    Either way the :class:`ResilientTier1` ends up holding a
    last-known-good result, so later re-solves can fall back instead of
    crashing the run.
    """
    if targets is None:
        return tier1.solve(
            topology.graph,
            topology.placement,
            topology.source_rates,
            reason="initial",
        ).targets
    tier1.seed(targets)
    return targets


class ControlPlane:
    """Tier-2 control state shared across one system's nodes.

    Parameters
    ----------
    policy:
        The behavioural strategy object; its factories are invoked here
        and nowhere else.
    adapter:
        The substrate the node controllers act through.
    groups:
        One :class:`NodeGroup` per node (may be empty of PEs).
    targets:
        Tier-1 allocation targets in effect at construction.
    dt:
        Control interval length (seconds).
    b0:
        Flow-control occupancy set-point in SDOs (absolute, not a
        fraction).
    feedback_delay:
        Propagation delay of the feedback bus (0 models an idealized
        instantaneous control network).
    feedback_staleness_ttl, feedback_stale_bound:
        Staleness guard of the bus (see :class:`FeedbackBus`).
    recorder:
        Trace bus; the null default keeps hot paths branch-free.
    tier1:
        Optional :class:`ResilientTier1` guard used by
        :meth:`reoptimize`; substrates that never re-solve may omit it.
    profiler:
        Optional phase profiler forwarded to node controllers
        (simulator only).
    """

    def __init__(
        self,
        policy: "Policy",
        adapter: SystemAdapter,
        groups: _t.Sequence[NodeGroup],
        targets: AllocationTargets,
        dt: float,
        b0: float,
        feedback_delay: float = 0.0,
        feedback_staleness_ttl: _t.Optional[float] = None,
        feedback_stale_bound: float = 0.0,
        recorder: _t.Optional[TraceRecorder] = None,
        tier1: _t.Optional[ResilientTier1] = None,
        profiler: _t.Optional[_t.Any] = None,
        control_impl: str = "scalar",
        admission: _t.Optional[AdmissionController] = None,
        forecast: _t.Optional[ForecastController] = None,
    ):
        if control_impl not in ("scalar", "vector"):
            raise ValueError(
                f"control_impl must be 'scalar' or 'vector', "
                f"got {control_impl!r}"
            )
        self.policy = policy
        self.adapter = adapter
        self.groups = list(groups)
        self.targets = targets
        self.dt = dt
        self.b0 = b0
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.tier1 = tier1
        self.profiler = profiler
        #: Optional SLO-aware admission front end; ticked by the
        #: substrate through :meth:`tick_admission` alongside the node
        #: loops, armed identically in sim and threaded runs.
        self.admission = admission
        if admission is not None:
            admission.recorder = self.recorder
        #: Optional forecasting tier; ticked by the substrate through
        #: :meth:`tick_forecast` at the forecast cadence, armed
        #: identically in sim and threaded runs.
        self.forecast = forecast
        if forecast is not None:
            forecast.recorder = self.recorder

        #: Behavioural constants, resolved from the policy exactly once.
        self.uses_feedback = policy.uses_feedback
        self.aggregate_max = (
            policy.aggregate_feedback() == "max"
            if self.uses_feedback
            else True
        )

        #: Construction inputs persisted so membership rebuilds can
        #: re-resolve the policy factories with identical parameters.
        self._requested_impl = control_impl
        self._gains = (
            policy.controller_gains(dt) if self.uses_feedback else None
        )
        if self.uses_feedback:
            # feedback policies always provide controller gains.
            assert self._gains is not None
        self._feedback_delay = feedback_delay
        self._feedback_staleness_ttl = feedback_staleness_ttl
        self._feedback_stale_bound = feedback_stale_bound

        #: Why a requested vector path fell back to scalar (None when
        #: vector is active or scalar was requested).
        self.vector_fallback_reason: _t.Optional[str] = None
        self._engine: _t.Optional[VectorEngine] = None
        self.controllers: _t.Dict[str, _t.Any] = {}
        self.gates: _t.Dict[str, _t.Optional[GateFn]] = {}
        self.admission_filters: _t.Dict[str, AdmissionFn] = {}
        #: Placement epoch: 0 at construction, +1 per membership rebuild.
        self.epoch = 0
        #: Callbacks run after every membership rebuild (oracles and
        #: other observers re-derive their cached plane views here).
        self.rebuild_hooks: _t.List[
            _t.Callable[["ControlPlane"], None]
        ] = []
        self._build()

        #: Per-node pause flags (controller-outage injection).  Loops may
        #: capture this list object; mutate it, never rebind it.
        self.paused: _t.List[bool] = [False] * len(self.groups)
        #: Number of Tier-1 refreshes adopted during the run.
        self.reoptimizations = 0
        #: pe_id -> node_id snapshot taken when the current targets were
        #: adopted.  Tier-1 budgets against the placement it solved for;
        #: a later migration moves PEs without touching targets, so
        #: capacity validation of the *targets* must use this snapshot,
        #: not the live placement (grants are still checked live).
        self.targets_node_of: _t.Dict[str, str] = self._node_of_snapshot()

    # -- construction / epoch rebuild ----------------------------------------

    def _build(self) -> None:
        """Resolve the policy factories into runnable Tier-2 state.

        Called once at construction and again (via the membership API)
        at every epoch boundary.  Rebuilds derive everything from the
        *current* :attr:`groups`; state that must survive a rebuild is
        carried across by :meth:`_harvest` / :meth:`_restore`, keyed by
        node_id / pe_id rather than index.
        """
        policy = self.policy
        targets = self.targets
        dt = self.dt

        # The policy's schedulers are always built normally; in vector
        # mode they become parameter donors (bucket depths/levels,
        # strict targets, capacities) for the engine's state arrays and
        # are then replaced by the engine's per-node views.
        donors: _t.List[_t.Any] = [
            policy.make_scheduler(
                group.pes, targets.cpu, group.cpu_capacity, dt
            )
            for group in self.groups
        ]
        gains = self._gains

        self.vector_fallback_reason = None
        self._engine = None
        if self._requested_impl == "vector":
            self.vector_fallback_reason = fallback_reason(
                donors, self.uses_feedback
            )
            if self.vector_fallback_reason is None:
                registry = PEIndexRegistry(self.groups)
                self._engine = VectorEngine(self, registry, donors, gains)
        self.control_impl = "vector" if self._engine is not None else "scalar"

        prev_bus = getattr(self, "bus", None)
        if self._engine is not None and self._feedback_staleness_ttl is None:
            vbus = VectorFeedbackBus(
                self._engine.registry,
                delay=self._feedback_delay,
                recorder=self.recorder,
            )
            self._engine.bus = vbus
            self.bus: _t.Any = vbus
        elif prev_bus is None or isinstance(prev_bus, VectorFeedbackBus):
            # Staleness guard configured (or scalar mode): the scalar
            # bus keeps its per-read decay semantics; a vector engine
            # treats it as a foreign bus (per-PE reads/publishes).
            self.bus = FeedbackBus(
                delay=self._feedback_delay,
                staleness_ttl=self._feedback_staleness_ttl,
                stale_bound=self._feedback_stale_bound,
                recorder=self.recorder,
            )
        # else: the installed scalar bus (possibly a fault-injection
        # wrapper) is pe_id-keyed and survives the rebuild untouched.

        self.schedulers: _t.List[_t.Any] = (
            self._engine.scheduler_views
            if self._engine is not None
            else donors
        )
        if self.recorder.enabled:
            for group, scheduler in zip(self.groups, self.schedulers):
                attach = getattr(scheduler, "attach_tracing", None)
                if attach is not None:
                    attach(self.recorder, group.node_id)
        self._scheduler_of: _t.Dict[str, _t.Any] = {}
        for group, scheduler in zip(self.groups, self.schedulers):
            for pe in group.pes:
                self._scheduler_of[pe.pe_id] = scheduler

        if self.uses_feedback:
            assert gains is not None
            if self._engine is not None:
                registry = self._engine.registry
                for group in self.groups:
                    for pe in group.pes:
                        self.controllers[pe.pe_id] = VectorFlowView(
                            self._engine,
                            registry.index[pe.pe_id],
                            pe.pe_id,
                        )
            else:
                for group in self.groups:
                    for pe in group.pes:
                        # A surviving scalar controller is reused so its
                        # Eq. 7 histories carry across epochs verbatim.
                        existing = self.controllers.get(pe.pe_id)
                        if not isinstance(existing, FlowController):
                            self.controllers[pe.pe_id] = FlowController(
                                gains,
                                target_occupancy=self.b0,
                                buffer_capacity=pe.buffer.capacity,
                                pe_id=pe.pe_id,
                                recorder=self.recorder,
                            )

        for group in self.groups:
            for pe in group.pes:
                # Only fill missing entries: dynamically replaced gates
                # (fault injection) must survive a rebuild.
                if pe.pe_id not in self.gates:
                    self.gates[pe.pe_id] = policy.make_gate(pe)
                    self.admission_filters[pe.pe_id] = (
                        policy.make_admission_filter(pe)
                    )

        controller_cls: _t.Any = (
            VectorNodeController
            if self._engine is not None
            else NodeController
        )
        self.node_controllers: _t.List[_t.Any] = [
            controller_cls(
                node_index=index,
                node_id=group.node_id,
                scheduler=scheduler,
                records=[
                    ControlRecord(
                        pe,
                        self.gates[pe.pe_id],
                        self.controllers.get(pe.pe_id),
                        targets.cpu.get(pe.pe_id, 0.0),
                    )
                    for pe in group.pes
                ],
                plane=self,
                adapter=self.adapter,
                dt=dt,
                uses_feedback=self.uses_feedback,
                aggregate_max=self.aggregate_max,
                is_aces=(
                    self._engine.is_aces
                    if self._engine is not None
                    else isinstance(scheduler, AcesCpuScheduler)
                ),
                profiler=self.profiler,
                **(
                    {"engine": self._engine}
                    if self._engine is not None
                    else {}
                ),
            )
            for index, (group, scheduler) in enumerate(
                zip(self.groups, self.schedulers)
            )
        ]

    def _harvest(self) -> _EpochCarry:
        """Capture identity-keyed control state ahead of group surgery."""
        paused = {
            group.node_id: flag
            for group, flag in zip(self.groups, self.paused)
        }
        ticks = {c.node_id: c.ticks for c in self.node_controllers}
        blocked = {
            c.node_id: c.last_blocked for c in self.node_controllers
        }
        capacity = {
            group.node_id: float(scheduler.capacity)
            for group, scheduler in zip(self.groups, self.schedulers)
        }
        token_levels: _t.Dict[str, float] = {}
        vector: _t.Optional[_t.Dict[str, _t.Dict[str, _t.Any]]] = None
        bus_state: _t.Optional[_t.Dict[str, _t.Any]] = None
        engine = self._engine
        if engine is None:
            for scheduler in self.schedulers:
                buckets = getattr(scheduler, "buckets", None)
                if buckets:
                    for pe_id, bucket in buckets.items():
                        token_levels[pe_id] = float(bucket.level)
        else:
            index = engine.registry.index
            if engine.is_aces:
                for pe_id, i in index.items():
                    token_levels[pe_id] = float(engine.tok_level[i])
            vector = {
                "flow_last": {},
                "flow_updates": {},
                "dev": {},
                "sur": {},
            }
            for pe_id, i in index.items():
                vector["flow_last"][pe_id] = float(engine.flow_last[i])
                vector["flow_updates"][pe_id] = int(
                    engine.flow_updates[i]
                )
                if engine.dev_hist is not None:
                    vector["dev"][pe_id] = engine.dev_hist[:, i].copy()
                    vector["sur"][pe_id] = engine.sur_hist[:, i].copy()
            if isinstance(self.bus, VectorFeedbackBus):
                bus_state = self._harvest_vector_bus(
                    self.bus, engine.registry
                )
        return _EpochCarry(
            paused=paused,
            ticks=ticks,
            blocked=blocked,
            capacity=capacity,
            token_levels=token_levels,
            vector=vector,
            bus=bus_state,
        )

    @staticmethod
    def _harvest_vector_bus(
        bus: VectorFeedbackBus, registry: PEIndexRegistry
    ) -> _t.Dict[str, _t.Any]:
        """Decompose the vector bus into pe_id-keyed settled + in-flight
        state (batch selections reference the *old* index space, so they
        cannot cross a registry rebuild as-is)."""
        entries: _t.Dict[str, _t.Tuple[float, float]] = {}
        for pe_id, i in registry.index.items():
            if bus._published[i]:
                entries[pe_id] = (
                    float(bus._current_arr[i]),
                    float(bus._freshened[i]),
                )
        # Batch entries rank before per-PE entries at the same
        # visible_at — settle_all gives ties to the per-PE message.
        inflight: _t.Dict[
            str, _t.List[_t.Tuple[float, int, float]]
        ] = {}
        for visible_at, sel, values in bus._batches:
            if isinstance(sel, slice):
                ids = registry.ids[sel]
            else:
                ids = [registry.ids[int(i)] for i in sel]
            for j, pe_id in enumerate(ids):
                inflight.setdefault(pe_id, []).append(
                    (visible_at, 0, float(values[j]))
                )
        for pe_id, pending in bus._pending.items():
            for visible_at, value in pending:
                inflight.setdefault(pe_id, []).append(
                    (visible_at, 1, float(value))
                )
        for pending_entries in inflight.values():
            pending_entries.sort(key=lambda e: (e[0], e[1]))
        return {
            "publishes": bus.publishes,
            "stale_reads": bus.stale_reads,
            "entries": entries,
            "inflight": inflight,
        }

    def _restore(self, carry: _EpochCarry) -> None:
        """Re-install harvested state into the freshly built epoch."""
        self.paused[:] = [
            carry.paused.get(group.node_id, False)
            for group in self.groups
        ]
        for controller in self.node_controllers:
            controller.ticks = carry.ticks.get(controller.node_id, 0)
            resident = frozenset(
                record.pe_id for record in controller.records
            )
            controller.last_blocked = (
                carry.blocked.get(controller.node_id, frozenset())
                & resident
            )
        for group, scheduler in zip(self.groups, self.schedulers):
            cap = carry.capacity.get(group.node_id)
            if cap is not None:
                scheduler.capacity = cap
        engine = self._engine
        if carry.token_levels:
            if engine is not None and engine.is_aces:
                index = engine.registry.index
                for pe_id, level in carry.token_levels.items():
                    i = index.get(pe_id)
                    if i is None:
                        continue
                    depth = float(engine.tok_depth[i])
                    engine.tok_level[i] = (
                        level if level <= depth else depth
                    )
            elif engine is None:
                for scheduler in self.schedulers:
                    buckets = getattr(scheduler, "buckets", None)
                    if not buckets:
                        continue
                    for pe_id, bucket in buckets.items():
                        level = carry.token_levels.get(pe_id)
                        if level is not None:
                            bucket.level = (
                                level
                                if level <= bucket.depth
                                else bucket.depth
                            )
        if engine is not None and carry.vector is not None:
            index = engine.registry.index
            for pe_id, i in index.items():
                last = carry.vector["flow_last"].get(pe_id)
                if last is None:
                    continue
                engine.flow_last[i] = last
                engine.flow_updates[i] = carry.vector["flow_updates"][
                    pe_id
                ]
                dev = carry.vector["dev"].get(pe_id)
                if dev is not None and engine.dev_hist is not None:
                    engine.dev_hist[:, i] = dev
                    engine.sur_hist[:, i] = carry.vector["sur"][pe_id]
        if (
            engine is not None
            and carry.bus is not None
            and isinstance(self.bus, VectorFeedbackBus)
        ):
            bus = self.bus
            index = engine.registry.index
            bus.publishes = carry.bus["publishes"]
            bus.stale_reads = carry.bus["stale_reads"]
            for pe_id, (value, freshened) in carry.bus[
                "entries"
            ].items():
                i = index.get(pe_id)
                if i is None:
                    continue
                bus._current_arr[i] = value
                bus._published[i] = True
                bus._freshened[i] = freshened
            for pe_id, inflight in carry.bus["inflight"].items():
                if pe_id not in index or not inflight:
                    continue
                bus._pending[pe_id] = [
                    (visible_at, value)
                    for visible_at, _, value in inflight
                ]

    def _apply_membership(
        self, carry: _EpochCarry, now: float, reason: str
    ) -> None:
        """Rebuild + restore at an epoch boundary, then notify hooks."""
        self._build()
        self._restore(carry)
        self.epoch += 1
        if self.recorder.enabled:
            self.recorder.emit(
                "epoch",
                epoch=self.epoch,
                reason=reason,
                nodes=len(self.groups),
                pes=sum(len(group.pes) for group in self.groups),
                control_impl=self.control_impl,
            )
        for hook in self.rebuild_hooks:
            hook(self)

    def add_rebuild_hook(
        self, hook: _t.Callable[["ControlPlane"], None]
    ) -> None:
        """Run ``hook(plane)`` after every membership rebuild."""
        if hook not in self.rebuild_hooks:
            self.rebuild_hooks.append(hook)

    # -- membership (the elastic tier's operational surface) -----------------

    def add_node(
        self,
        node_id: str,
        cpu_capacity: float = 1.0,
        now: float = 0.0,
        pes: _t.Optional[_t.List[PELike]] = None,
    ) -> int:
        """Join an empty node to the plane; returns its node index.

        The Tier-2 state is rebuilt at this epoch boundary (schedulers,
        node controllers, and — in vector mode — the PE index registry
        and feedback bus), with all identity-keyed control state
        carried across.  PEs arrive later via :meth:`migrate_pes`.

        ``pes`` lets the substrate hand in its *own* (empty) resident
        list so node and group share one list object, the same aliasing
        the constructor path establishes — group surgery then moves PEs
        physically too.
        """
        if cpu_capacity <= 0:
            raise ValueError(
                f"cpu_capacity must be positive, got {cpu_capacity}"
            )
        if any(group.node_id == node_id for group in self.groups):
            raise ValueError(f"node {node_id!r} already in the plane")
        if pes:
            raise ValueError(
                f"node {node_id!r} must join empty; migrate PEs in "
                "after the join"
            )
        carry = self._harvest()
        self.groups.append(
            NodeGroup(node_id, pes if pes is not None else [], cpu_capacity)
        )
        self._apply_membership(carry, now, reason=f"join:{node_id}")
        if self.recorder.enabled:
            self.recorder.emit(
                "membership",
                node=node_id,
                action="join",
                epoch=self.epoch,
                nodes=len(self.groups),
            )
        return len(self.groups) - 1

    def remove_node(self, node_index: int, now: float = 0.0) -> str:
        """Remove an *empty* node from the plane; returns its node_id.

        Refuses while PEs are resident — migrate them off first — so a
        removal can never strand buffered work.  Node indices above the
        removed one shift down by one; identity-keyed state (pause
        flags, capacity slowdowns) follows the surviving node_ids.
        """
        if not (0 <= node_index < len(self.groups)):
            raise ValueError(
                f"node index {node_index} outside "
                f"[0, {len(self.groups)})"
            )
        if len(self.groups) == 1:
            raise ValueError("cannot remove the last node")
        group = self.groups[node_index]
        if group.pes:
            raise ValueError(
                f"node {group.node_id!r} still hosts "
                f"{len(group.pes)} PE(s); migrate them off first"
            )
        carry = self._harvest()
        del self.groups[node_index]
        self._apply_membership(
            carry, now, reason=f"leave:{group.node_id}"
        )
        if self.recorder.enabled:
            self.recorder.emit(
                "membership",
                node=group.node_id,
                action="leave",
                epoch=self.epoch,
                nodes=len(self.groups),
            )
        return group.node_id

    def migrate_pes(
        self,
        moves: _t.Sequence[_t.Tuple[str, int]],
        now: float = 0.0,
        reason: str = "migration",
    ) -> None:
        """Re-home PEs between groups in one epoch boundary.

        ``moves`` is a sequence of ``(pe_id, target_node_index)``.  The
        plane only moves *control* state; the substrate orchestrates
        the physical protocol around this call (drain, buffer handoff,
        dataplane re-wiring, resume).  All moves share one rebuild so
        an epoch's migration set is atomic from the controllers' view.
        """
        if not moves:
            return
        carry = self._harvest()
        for pe_id, target in moves:
            if not (0 <= target < len(self.groups)):
                raise ValueError(
                    f"{pe_id}: target node index {target} outside "
                    f"[0, {len(self.groups)})"
                )
            source = None
            for group in self.groups:
                for pe in group.pes:
                    if pe.pe_id == pe_id:
                        source = group
                        break
                if source is not None:
                    break
            if source is None:
                raise ValueError(f"unknown PE {pe_id!r}")
            if source is self.groups[target]:
                continue
            pe_obj = next(
                pe for pe in source.pes if pe.pe_id == pe_id
            )
            source.pes.remove(pe_obj)
            self.groups[target].pes.append(pe_obj)
        self._apply_membership(carry, now, reason=reason)

    def token_level(self, pe_id: str) -> float:
        """The PE's current token level via its *current* scheduler.

        Gauge lambdas bind the plane, not a scheduler object, so token
        gauges keep reading the right state across epoch rebuilds.
        """
        return float(self._scheduler_of[pe_id].token_level(pe_id))

    # -- operational surface -------------------------------------------------

    def set_gate(self, pe_id: str, gate: _t.Optional[GateFn]) -> None:
        """Replace a PE's processing gate at runtime.

        The tick loops read gates from per-PE records resolved at wiring
        time, so dynamic replacement (fault injection stalling a PE, an
        operator pausing a stream) must go through here rather than
        mutating :attr:`gates` directly.
        """
        self.gates[pe_id] = gate
        for controller in self.node_controllers:
            if controller.set_gate(pe_id, gate):
                break
        self.adapter.apply_gates(pe_id, gate)

    def suspend_node(self, node_index: int) -> None:
        """Make a node's control loop miss its ticks (controller outage).

        The loop keeps waking every ``dt`` but performs no control step
        and no PE execution until :meth:`resume_node` — exactly a hung
        controller process: feedback from the node stops, its values on
        the bus age out (see the bus's ``staleness_ttl``), and its PEs
        make no progress.
        """
        self.paused[node_index] = True

    def resume_node(self, node_index: int) -> None:
        """Resume a suspended node's control loop."""
        self.paused[node_index] = False

    def tick_nodes(
        self, node_indices: _t.Sequence[int], now: float
    ) -> None:
        """Tick a bucket of nodes at one instant: decide all, then apply.

        This is *explicitly different* semantics from per-node loops at
        staggered offsets: every node in the bucket decides from the
        same pre-tick state before any grants are applied.  Both
        implementations honour the same decide-all-then-apply-all
        contract, so scalar and vector bucketed runs stay bit-equal;
        the vector engine additionally fuses the decisions into one
        array pass, which is where the extreme-scale speedup comes
        from.  Paused nodes are skipped (controller-outage semantics).
        """
        paused = self.paused
        live = [index for index in node_indices if not paused[index]]
        if not live:
            return
        controllers = self.node_controllers
        adapter = self.adapter
        profiler = self.profiler
        if self._engine is not None:
            engine = self._engine
            if profiler is not None:
                profiler.push("controller_tick")
            try:
                grants_list = engine.control_group(
                    engine.group_for(tuple(live)), now
                )
            finally:
                if profiler is not None:
                    profiler.pop()
            for index, grants in zip(live, grants_list):
                controller = controllers[index]
                controller.ticks += 1
                adapter.apply_grants(
                    index, controller.records, grants, now,
                    controller.dt, controller.scheduler.settle,
                )
            return
        decided = []
        for index in live:
            controller = controllers[index]
            if profiler is not None:
                profiler.push("controller_tick")
            try:
                grants = controller.control(now)
            finally:
                if profiler is not None:
                    profiler.pop()
            controller.ticks += 1
            decided.append((controller, grants))
        for controller, grants in decided:
            adapter.apply_grants(
                controller.node_index, controller.records, grants, now,
                controller.dt, controller.scheduler.settle,
            )

    def tick_admission(self, now: float) -> None:
        """Advance the admission front end one control interval.

        A no-op on planes built without admission, so substrate loops
        can call it unconditionally.
        """
        if self.admission is not None:
            self.admission.tick(now)

    def tick_forecast(self, now: float) -> None:
        """Advance the forecasting tier one sample interval.

        A no-op on planes built without forecasting, so substrate loops
        can call it unconditionally.
        """
        if self.forecast is not None:
            self.forecast.tick(now)

    # -- Tier-1 interaction --------------------------------------------------

    def _node_of_snapshot(self) -> _t.Dict[str, str]:
        return {
            pe.pe_id: group.node_id
            for group in self.groups
            for pe in group.pes
        }

    def adopt_targets(self, targets: AllocationTargets) -> None:
        """Install refreshed Tier-1 targets into schedulers and records."""
        self.targets = targets
        self.targets_node_of = self._node_of_snapshot()
        for scheduler in self.schedulers:
            scheduler.update_targets(targets.cpu)
        for controller in self.node_controllers:
            controller.refresh_cpu_targets(targets.cpu)

    def reoptimize(
        self,
        graph: "ProcessingGraph",
        placement: "Placement",
        measured_rates: _t.Mapping[str, float],
        reason: str = "reoptimize",
    ) -> _t.Optional["GlobalOptimizationResult"]:
        """Re-solve Tier 1 from measured rates and adopt the result.

        Returns None when the guarded solver has nothing to offer (no
        attempt succeeded and no last-known-good exists — cannot happen
        after a normal bootstrap, which seeds last-known-good); the
        system keeps serving under the current targets.
        """
        if self.tier1 is None:
            raise RuntimeError(
                "this control plane was built without a Tier-1 solver"
            )
        try:
            result = self.tier1.solve(
                graph, placement, measured_rates, reason=reason
            )
        except Tier1Unavailable:
            return None
        self.adopt_targets(result.targets)
        self.reoptimizations += 1
        return result

    # -- observability -------------------------------------------------------

    def inspection(self) -> PlaneInspection:
        """The sanctioned read-only view for online invariant oracles.

        See :class:`PlaneInspection`; everything an oracle may read from
        the plane goes through here so the coupling stays explicit.
        """
        pes: _t.Dict[str, PELike] = {}
        node_of: _t.Dict[str, str] = {}
        for group in self.groups:
            for pe in group.pes:
                pes[pe.pe_id] = pe
                node_of[pe.pe_id] = group.node_id
        return PlaneInspection(
            pes=pes,
            node_of=node_of,
            schedulers={
                group.node_id: scheduler
                for group, scheduler in zip(self.groups, self.schedulers)
            },
            nominal_capacity={
                group.node_id: group.cpu_capacity for group in self.groups
            },
            group_sizes={
                group.node_id: len(group.pes) for group in self.groups
            },
            node_index={
                group.node_id: index
                for index, group in enumerate(self.groups)
            },
            controllers=dict(self.controllers),
            node_controllers={
                controller.node_id: controller
                for controller in self.node_controllers
            },
            paused=self.paused,
            plane=self,
            admission=self.admission,
            forecast=self.forecast,
        )

    def register_gauges(
        self,
        gauges: "GaugeRegistry",
        pe_order: _t.Optional[_t.Iterable[str]] = None,
    ) -> None:
        """Register the control-plane gauges: token levels and r_max.

        ``pe_order`` fixes the r_max registration (hence trace-emission)
        order; by default controllers register in node-placement order.
        """
        for scheduler in self.schedulers:
            # Token-capable schedulers (AcesCpuScheduler or the vector
            # engine's token view) expose token_level; strict ones don't.
            # The gauge closes over the plane, not the scheduler object:
            # membership rebuilds replace schedulers, and a migrated
            # PE's tokens must be read from wherever it lives now.
            if getattr(scheduler, "token_level", None) is not None:
                for pe in scheduler.pes:
                    gauges.register(
                        "token_level",
                        lambda s=self, p=pe.pe_id: s.token_level(p),
                        pe=pe.pe_id,
                    )
        admission = self.admission
        if admission is not None:
            gauges.register(
                "admission_level",
                lambda a=admission: float(int(a.effective_level)),
            )
        forecast = self.forecast
        if forecast is not None:
            # The aggregate predicted/baseline load ratio: the one
            # number the proactive trigger predicate watches.
            gauges.register(
                "forecast_ratio",
                lambda f=forecast: float(f.last_ratio),
            )
        ids = self.controllers.keys() if pe_order is None else pe_order
        for pe_id in ids:
            if pe_id not in self.controllers:
                continue
            # Bound via the plane's live dict: vector rebuilds replace
            # the per-PE flow views, scalar controllers are reused.
            gauges.register(
                "r_max",
                lambda s=self, p=pe_id: s.controllers[p].last_r_max,
                pe=pe_id,
            )

    def __repr__(self) -> str:
        return (
            f"ControlPlane({self.policy.name}, nodes={len(self.groups)}, "
            f"pes={sum(len(g.pes) for g in self.groups)})"
        )
