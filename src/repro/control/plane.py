"""The control plane: policy hooks -> per-node controllers, shared state.

:class:`ControlPlane` is the one place a :class:`~repro.core.policies.
Policy`'s behavioural factories (scheduler, flow-controller gains, gate,
admission filter, feedback aggregation) are resolved into runnable
control state.  It owns everything the Tier-2 loops share:

* the :class:`~repro.core.feedback.FeedbackBus` (swappable at runtime,
  which is how fault injection models lossy/congested control networks);
* the :class:`~repro.core.resilience.ResilientTier1` degradation guard
  and the target-adoption path used by periodic re-optimization;
* the authoritative gate and admission-filter registries, with the
  single dynamic-replacement entry point (:meth:`set_gate`);
* the per-node pause flags behind controller-outage injection
  (:meth:`suspend_node` / :meth:`resume_node`).

Feedback aggregation (Eq. 8 max-flow vs the min-flow ablation) is
resolved here exactly once — substrates must not re-derive it.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.control.adapter import GateFn, PELike, SystemAdapter
from repro.control.admission import AdmissionController
from repro.control.node import ControlRecord, NodeController
from repro.control.vector import (
    PEIndexRegistry,
    VectorEngine,
    VectorFeedbackBus,
    VectorFlowView,
    VectorNodeController,
    fallback_reason,
)
from repro.core.cpu_control import AcesCpuScheduler
from repro.core.feedback import FeedbackBus
from repro.core.flow_control import FlowController
from repro.core.resilience import ResilientTier1, Tier1Unavailable
from repro.core.targets import AllocationTargets
from repro.obs.recorder import NULL_RECORDER, TraceRecorder

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.global_opt import GlobalOptimizationResult
    from repro.core.policies import Policy
    from repro.graph.dag import ProcessingGraph
    from repro.graph.placement import Placement
    from repro.graph.topology import Topology
    from repro.obs.gauges import GaugeRegistry

#: Admission filter: admit(pe, sdo) -> bool, or None for admit-everything.
AdmissionFn = _t.Optional[_t.Callable[[PELike, object], bool]]


@dataclass(frozen=True)
class PlaneInspection:
    """Narrow read-only view of a control plane for invariant oracles.

    :mod:`repro.check` validates paper invariants *online* against trace
    events; doing so needs a handful of live references that are
    otherwise scattered across plane internals.  This is the one
    sanctioned inspection surface — oracles must not reach into other
    plane state, so the checked surface stays an explicit contract.

    All mappings are built once at :meth:`ControlPlane.inspection` time
    but reference *live* objects: scheduler capacities reflect injected
    node slowdowns, ``paused`` is the plane's own mutable list, and
    ``controllers`` are the real flow controllers.
    """

    #: pe_id -> PE runtime (for rate-model state the Eq. 8 check needs).
    pes: _t.Mapping[str, PELike]
    #: pe_id -> node_id of the node the PE is placed on.
    node_of: _t.Mapping[str, str]
    #: node_id -> live scheduler (``.capacity`` tracks fault injection).
    schedulers: _t.Mapping[str, _t.Any]
    #: node_id -> nominal CPU capacity (what Tier-1 budgets against).
    nominal_capacity: _t.Mapping[str, float]
    #: node_id -> number of resident PEs (one cpu_grant event each).
    group_sizes: _t.Mapping[str, int]
    #: node_id -> node index (``paused`` is indexed by this).
    node_index: _t.Mapping[str, int]
    #: pe_id -> flow controller (feedback policies only); a
    #: FlowController, or a VectorFlowView under control_impl=vector.
    controllers: _t.Mapping[str, _t.Any]
    #: node_id -> node controller (``last_blocked`` gate decisions).
    node_controllers: _t.Mapping[str, _t.Any]
    #: The plane's live per-node pause flags (not a copy).
    paused: _t.Sequence[bool]
    #: The plane itself, for targets/policy metadata reads.
    plane: "ControlPlane"
    #: The admission front end, when armed (None otherwise).
    admission: _t.Optional[AdmissionController] = None


@dataclass
class NodeGroup:
    """The PEs resident on one node, as the control plane sees them."""

    node_id: str
    pes: _t.Sequence[PELike] = field(default_factory=list)
    cpu_capacity: float = 1.0


def resolve_initial_targets(
    tier1: ResilientTier1,
    topology: "Topology",
    targets: _t.Optional[AllocationTargets] = None,
) -> AllocationTargets:
    """Tier-1 bootstrap: solve when no targets given, else seed the guard.

    Either way the :class:`ResilientTier1` ends up holding a
    last-known-good result, so later re-solves can fall back instead of
    crashing the run.
    """
    if targets is None:
        return tier1.solve(
            topology.graph,
            topology.placement,
            topology.source_rates,
            reason="initial",
        ).targets
    tier1.seed(targets)
    return targets


class ControlPlane:
    """Tier-2 control state shared across one system's nodes.

    Parameters
    ----------
    policy:
        The behavioural strategy object; its factories are invoked here
        and nowhere else.
    adapter:
        The substrate the node controllers act through.
    groups:
        One :class:`NodeGroup` per node (may be empty of PEs).
    targets:
        Tier-1 allocation targets in effect at construction.
    dt:
        Control interval length (seconds).
    b0:
        Flow-control occupancy set-point in SDOs (absolute, not a
        fraction).
    feedback_delay:
        Propagation delay of the feedback bus (0 models an idealized
        instantaneous control network).
    feedback_staleness_ttl, feedback_stale_bound:
        Staleness guard of the bus (see :class:`FeedbackBus`).
    recorder:
        Trace bus; the null default keeps hot paths branch-free.
    tier1:
        Optional :class:`ResilientTier1` guard used by
        :meth:`reoptimize`; substrates that never re-solve may omit it.
    profiler:
        Optional phase profiler forwarded to node controllers
        (simulator only).
    """

    def __init__(
        self,
        policy: "Policy",
        adapter: SystemAdapter,
        groups: _t.Sequence[NodeGroup],
        targets: AllocationTargets,
        dt: float,
        b0: float,
        feedback_delay: float = 0.0,
        feedback_staleness_ttl: _t.Optional[float] = None,
        feedback_stale_bound: float = 0.0,
        recorder: _t.Optional[TraceRecorder] = None,
        tier1: _t.Optional[ResilientTier1] = None,
        profiler: _t.Optional[_t.Any] = None,
        control_impl: str = "scalar",
        admission: _t.Optional[AdmissionController] = None,
    ):
        if control_impl not in ("scalar", "vector"):
            raise ValueError(
                f"control_impl must be 'scalar' or 'vector', "
                f"got {control_impl!r}"
            )
        self.policy = policy
        self.adapter = adapter
        self.groups = list(groups)
        self.targets = targets
        self.dt = dt
        self.b0 = b0
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.tier1 = tier1
        self.profiler = profiler
        #: Optional SLO-aware admission front end; ticked by the
        #: substrate through :meth:`tick_admission` alongside the node
        #: loops, armed identically in sim and threaded runs.
        self.admission = admission
        if admission is not None:
            admission.recorder = self.recorder

        #: Behavioural constants, resolved from the policy exactly once.
        self.uses_feedback = policy.uses_feedback
        self.aggregate_max = (
            policy.aggregate_feedback() == "max"
            if self.uses_feedback
            else True
        )

        # The policy's schedulers are always built normally; in vector
        # mode they become parameter donors (bucket depths/levels,
        # strict targets, capacities) for the engine's state arrays and
        # are then replaced by the engine's per-node views.
        donors: _t.List[_t.Any] = [
            policy.make_scheduler(
                group.pes, targets.cpu, group.cpu_capacity, dt
            )
            for group in self.groups
        ]
        gains = (
            policy.controller_gains(dt) if self.uses_feedback else None
        )
        if self.uses_feedback:
            # feedback policies always provide controller gains.
            assert gains is not None

        #: Why a requested vector path fell back to scalar (None when
        #: vector is active or scalar was requested).
        self.vector_fallback_reason: _t.Optional[str] = None
        self._engine: _t.Optional[VectorEngine] = None
        if control_impl == "vector":
            self.vector_fallback_reason = fallback_reason(
                donors, self.uses_feedback
            )
            if self.vector_fallback_reason is None:
                registry = PEIndexRegistry(self.groups)
                self._engine = VectorEngine(self, registry, donors, gains)
        self.control_impl = "vector" if self._engine is not None else "scalar"

        if self._engine is not None and feedback_staleness_ttl is None:
            vbus = VectorFeedbackBus(
                self._engine.registry,
                delay=feedback_delay,
                recorder=self.recorder,
            )
            self._engine.bus = vbus
            self.bus: _t.Any = vbus
        else:
            # Staleness guard configured (or scalar mode): the scalar
            # bus keeps its per-read decay semantics; a vector engine
            # treats it as a foreign bus (per-PE reads/publishes).
            self.bus = FeedbackBus(
                delay=feedback_delay,
                staleness_ttl=feedback_staleness_ttl,
                stale_bound=feedback_stale_bound,
                recorder=self.recorder,
            )

        self.schedulers: _t.List[_t.Any] = (
            self._engine.scheduler_views
            if self._engine is not None
            else donors
        )
        if self.recorder.enabled:
            for group, scheduler in zip(self.groups, self.schedulers):
                attach = getattr(scheduler, "attach_tracing", None)
                if attach is not None:
                    attach(self.recorder, group.node_id)

        self.controllers: _t.Dict[str, _t.Any] = {}
        if self.uses_feedback:
            assert gains is not None
            if self._engine is not None:
                registry = self._engine.registry
                for group in self.groups:
                    for pe in group.pes:
                        self.controllers[pe.pe_id] = VectorFlowView(
                            self._engine,
                            registry.index[pe.pe_id],
                            pe.pe_id,
                        )
            else:
                for group in self.groups:
                    for pe in group.pes:
                        self.controllers[pe.pe_id] = FlowController(
                            gains,
                            target_occupancy=b0,
                            buffer_capacity=pe.buffer.capacity,
                            pe_id=pe.pe_id,
                            recorder=self.recorder,
                        )

        self.gates: _t.Dict[str, _t.Optional[GateFn]] = {}
        self.admission_filters: _t.Dict[str, AdmissionFn] = {}
        for group in self.groups:
            for pe in group.pes:
                self.gates[pe.pe_id] = policy.make_gate(pe)
                self.admission_filters[pe.pe_id] = (
                    policy.make_admission_filter(pe)
                )

        controller_cls: _t.Any = (
            VectorNodeController
            if self._engine is not None
            else NodeController
        )
        self.node_controllers: _t.List[_t.Any] = [
            controller_cls(
                node_index=index,
                node_id=group.node_id,
                scheduler=scheduler,
                records=[
                    ControlRecord(
                        pe,
                        self.gates[pe.pe_id],
                        self.controllers.get(pe.pe_id),
                        targets.cpu.get(pe.pe_id, 0.0),
                    )
                    for pe in group.pes
                ],
                plane=self,
                adapter=adapter,
                dt=dt,
                uses_feedback=self.uses_feedback,
                aggregate_max=self.aggregate_max,
                is_aces=(
                    self._engine.is_aces
                    if self._engine is not None
                    else isinstance(scheduler, AcesCpuScheduler)
                ),
                profiler=profiler,
                **(
                    {"engine": self._engine}
                    if self._engine is not None
                    else {}
                ),
            )
            for index, (group, scheduler) in enumerate(
                zip(self.groups, self.schedulers)
            )
        ]

        #: Per-node pause flags (controller-outage injection).  Loops may
        #: capture this list object; mutate it, never rebind it.
        self.paused: _t.List[bool] = [False] * len(self.groups)
        #: Number of Tier-1 refreshes adopted during the run.
        self.reoptimizations = 0

    # -- operational surface -------------------------------------------------

    def set_gate(self, pe_id: str, gate: _t.Optional[GateFn]) -> None:
        """Replace a PE's processing gate at runtime.

        The tick loops read gates from per-PE records resolved at wiring
        time, so dynamic replacement (fault injection stalling a PE, an
        operator pausing a stream) must go through here rather than
        mutating :attr:`gates` directly.
        """
        self.gates[pe_id] = gate
        for controller in self.node_controllers:
            if controller.set_gate(pe_id, gate):
                break
        self.adapter.apply_gates(pe_id, gate)

    def suspend_node(self, node_index: int) -> None:
        """Make a node's control loop miss its ticks (controller outage).

        The loop keeps waking every ``dt`` but performs no control step
        and no PE execution until :meth:`resume_node` — exactly a hung
        controller process: feedback from the node stops, its values on
        the bus age out (see the bus's ``staleness_ttl``), and its PEs
        make no progress.
        """
        self.paused[node_index] = True

    def resume_node(self, node_index: int) -> None:
        """Resume a suspended node's control loop."""
        self.paused[node_index] = False

    def tick_nodes(
        self, node_indices: _t.Sequence[int], now: float
    ) -> None:
        """Tick a bucket of nodes at one instant: decide all, then apply.

        This is *explicitly different* semantics from per-node loops at
        staggered offsets: every node in the bucket decides from the
        same pre-tick state before any grants are applied.  Both
        implementations honour the same decide-all-then-apply-all
        contract, so scalar and vector bucketed runs stay bit-equal;
        the vector engine additionally fuses the decisions into one
        array pass, which is where the extreme-scale speedup comes
        from.  Paused nodes are skipped (controller-outage semantics).
        """
        paused = self.paused
        live = [index for index in node_indices if not paused[index]]
        if not live:
            return
        controllers = self.node_controllers
        adapter = self.adapter
        profiler = self.profiler
        if self._engine is not None:
            engine = self._engine
            if profiler is not None:
                profiler.push("controller_tick")
            try:
                grants_list = engine.control_group(
                    engine.group_for(tuple(live)), now
                )
            finally:
                if profiler is not None:
                    profiler.pop()
            for index, grants in zip(live, grants_list):
                controller = controllers[index]
                controller.ticks += 1
                adapter.apply_grants(
                    index, controller.records, grants, now,
                    controller.dt, controller.scheduler.settle,
                )
            return
        decided = []
        for index in live:
            controller = controllers[index]
            if profiler is not None:
                profiler.push("controller_tick")
            try:
                grants = controller.control(now)
            finally:
                if profiler is not None:
                    profiler.pop()
            controller.ticks += 1
            decided.append((controller, grants))
        for controller, grants in decided:
            adapter.apply_grants(
                controller.node_index, controller.records, grants, now,
                controller.dt, controller.scheduler.settle,
            )

    def tick_admission(self, now: float) -> None:
        """Advance the admission front end one control interval.

        A no-op on planes built without admission, so substrate loops
        can call it unconditionally.
        """
        if self.admission is not None:
            self.admission.tick(now)

    # -- Tier-1 interaction --------------------------------------------------

    def adopt_targets(self, targets: AllocationTargets) -> None:
        """Install refreshed Tier-1 targets into schedulers and records."""
        self.targets = targets
        for scheduler in self.schedulers:
            scheduler.update_targets(targets.cpu)
        for controller in self.node_controllers:
            controller.refresh_cpu_targets(targets.cpu)

    def reoptimize(
        self,
        graph: "ProcessingGraph",
        placement: "Placement",
        measured_rates: _t.Mapping[str, float],
        reason: str = "reoptimize",
    ) -> _t.Optional["GlobalOptimizationResult"]:
        """Re-solve Tier 1 from measured rates and adopt the result.

        Returns None when the guarded solver has nothing to offer (no
        attempt succeeded and no last-known-good exists — cannot happen
        after a normal bootstrap, which seeds last-known-good); the
        system keeps serving under the current targets.
        """
        if self.tier1 is None:
            raise RuntimeError(
                "this control plane was built without a Tier-1 solver"
            )
        try:
            result = self.tier1.solve(
                graph, placement, measured_rates, reason=reason
            )
        except Tier1Unavailable:
            return None
        self.adopt_targets(result.targets)
        self.reoptimizations += 1
        return result

    # -- observability -------------------------------------------------------

    def inspection(self) -> PlaneInspection:
        """The sanctioned read-only view for online invariant oracles.

        See :class:`PlaneInspection`; everything an oracle may read from
        the plane goes through here so the coupling stays explicit.
        """
        pes: _t.Dict[str, PELike] = {}
        node_of: _t.Dict[str, str] = {}
        for group in self.groups:
            for pe in group.pes:
                pes[pe.pe_id] = pe
                node_of[pe.pe_id] = group.node_id
        return PlaneInspection(
            pes=pes,
            node_of=node_of,
            schedulers={
                group.node_id: scheduler
                for group, scheduler in zip(self.groups, self.schedulers)
            },
            nominal_capacity={
                group.node_id: group.cpu_capacity for group in self.groups
            },
            group_sizes={
                group.node_id: len(group.pes) for group in self.groups
            },
            node_index={
                group.node_id: index
                for index, group in enumerate(self.groups)
            },
            controllers=dict(self.controllers),
            node_controllers={
                controller.node_id: controller
                for controller in self.node_controllers
            },
            paused=self.paused,
            plane=self,
            admission=self.admission,
        )

    def register_gauges(
        self,
        gauges: "GaugeRegistry",
        pe_order: _t.Optional[_t.Iterable[str]] = None,
    ) -> None:
        """Register the control-plane gauges: token levels and r_max.

        ``pe_order`` fixes the r_max registration (hence trace-emission)
        order; by default controllers register in node-placement order.
        """
        for scheduler in self.schedulers:
            # Token-capable schedulers (AcesCpuScheduler or the vector
            # engine's token view) expose token_level; strict ones don't.
            if getattr(scheduler, "token_level", None) is not None:
                for pe in scheduler.pes:
                    gauges.register(
                        "token_level",
                        lambda s=scheduler, p=pe.pe_id: s.token_level(p),
                        pe=pe.pe_id,
                    )
        admission = self.admission
        if admission is not None:
            gauges.register(
                "admission_level",
                lambda a=admission: float(int(a.effective_level)),
            )
        controllers = self.controllers
        ids = controllers.keys() if pe_order is None else pe_order
        for pe_id in ids:
            controller = controllers.get(pe_id)
            if controller is None:
                continue
            gauges.register(
                "r_max",
                lambda c=controller: c.last_r_max,
                pe=pe_id,
            )

    def __repr__(self) -> str:
        return (
            f"ControlPlane({self.policy.name}, nodes={len(self.groups)}, "
            f"pes={sum(len(g.pes) for g in self.groups)})"
        )
