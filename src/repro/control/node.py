"""Per-node Tier-2 controller (paper Section V-E, one loop per node).

Each control tick performs, in the paper's order: downstream feedback
aggregation (Eq. 8) -> CPU allocation (Section V-D) -> flow-control
update + upstream publication (Eq. 7) -> grant application on the
substrate.  The tick body is substrate-free; everything physical goes
through the :class:`~repro.control.adapter.SystemAdapter`.
"""

from __future__ import annotations

import typing as _t

from repro.control.adapter import GateFn, PELike, SystemAdapter

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.plane import ControlPlane

#: Scheduler protocol: .allocate(...) -> {pe_id: cpu}, .settle(pe_id, used, dt)
Scheduler = _t.Any
#: Flow-controller protocol: FlowController or the vector engine's
#: per-PE view (same .update-consuming surface, see repro.control.vector).
FlowControllerLike = _t.Any


class ControlRecord:
    """Per-PE state resolved once at wiring time for the control loop.

    The per-tick loops in :meth:`NodeController.control` run for every PE
    on every node every ``dt``; anything constant across ticks (gate,
    controller, downstream ids, the Tier-1 CPU target) lives here instead
    of being re-looked-up from the policy/targets dictionaries each time.
    """

    __slots__ = ("pe", "pe_id", "gate", "controller", "downstream_ids",
                 "cpu_target")

    def __init__(
        self,
        pe: PELike,
        gate: _t.Optional[GateFn],
        controller: _t.Optional["FlowControllerLike"],
        cpu_target: float,
    ):
        self.pe = pe
        self.pe_id = pe.pe_id
        self.gate = gate
        self.controller = controller
        # Deduplicated (order-preserving): a fan-out graph can wire the
        # same consumer twice, and Eq. 8 reads are max/min — reading a
        # duplicate changes nothing but costs a bus lookup per tick.
        self.downstream_ids = tuple(
            dict.fromkeys(d.pe_id for d in pe.downstream)
        )
        self.cpu_target = cpu_target


class NodeController:
    """Runs the full Tier-2 step for the PEs resident on one node.

    Substrate-agnostic: reads occupancies through the adapter's
    ``snapshot``, publishes ``r_max`` on the plane's feedback bus (read
    through the plane every tick so fault-injection bus swaps take
    effect), and applies grants through the adapter.  The simulator and
    the threaded runtime pump the *same* controller object type — the
    parity test in ``tests/test_control_parity.py`` holds them to
    identical decision sequences.
    """

    def __init__(
        self,
        node_index: int,
        node_id: str,
        scheduler: Scheduler,
        records: _t.Sequence[ControlRecord],
        plane: "ControlPlane",
        adapter: SystemAdapter,
        dt: float,
        uses_feedback: bool,
        aggregate_max: bool,
        is_aces: bool,
        profiler: _t.Optional[_t.Any] = None,
    ):
        self.node_index = node_index
        self.node_id = node_id
        self.scheduler = scheduler
        self.records = list(records)
        self.plane = plane
        self.adapter = adapter
        self.dt = dt
        self.uses_feedback = uses_feedback
        self.aggregate_max = aggregate_max
        self.is_aces = is_aces
        self.profiler = profiler
        #: Gate decisions of the most recent non-feedback control step
        #: (the PEs refused by their gates); feedback policies leave it
        #: empty.  Exposed for diagnostics and the parity test.
        self.last_blocked: _t.FrozenSet[str] = frozenset()
        self.ticks = 0

    # -- the Tier-2 step -----------------------------------------------------

    def control(self, now: float) -> _t.Dict[str, float]:
        """Feedback aggregation, CPU allocation, and Eq. 7 updates.

        Returns this interval's CPU grants (``pe_id -> fraction``)
        without touching the substrate; :meth:`tick` applies them.
        """
        dt = self.dt
        records = self.records
        scheduler = self.scheduler

        if self.uses_feedback:
            bus = self.plane.bus
            read_bound = (
                bus.max_downstream_rate
                if self.aggregate_max
                else bus.min_downstream_rate
            )
            caps: _t.Dict[str, float] = {
                record.pe_id: read_bound(record.downstream_ids, now)
                for record in records
            }
            if self.is_aces:
                allocations = scheduler.allocate(dt, caps)
            else:
                allocations = scheduler.allocate(dt)
            occupancies = self.adapter.snapshot(self.node_index, records, now)
            allocations_get = allocations.get
            publish = bus.publish
            for record in records:
                # rho_j(n) is the rate the PE can *sustain*: when the PE is
                # momentarily unallocated (e.g. empty buffer) it still earns
                # tokens at its long-term target, so advertising the target
                # rate upstream is what keeps the pipeline from converging
                # to a self-throttled equilibrium.
                cpu_effective = allocations_get(record.pe_id, 0.0)
                if cpu_effective < record.cpu_target:
                    cpu_effective = record.cpu_target
                rho = record.pe.processing_rate(cpu_effective)
                controller = record.controller
                # records always carry a controller when uses_feedback.
                assert controller is not None
                r_max = controller.update(occupancies[record.pe_id], rho)
                publish(record.pe_id, r_max, now)
            return allocations

        # Redistribution reacts to *observed* blocking (last interval):
        # the scheduler has no clairvoyant knowledge of which PEs will
        # sleep this interval, so a PE that blocks mid-interval wastes
        # the rest of its grant — the stop-start cost of Lock-Step.
        # A sleeping PE wakes when its downstream frees space (checked
        # at tick granularity, like the wake-up notification it would
        # receive), so one stop costs at least one interval.  A substrate
        # that blocks inside the worker (threaded runtime) never reports
        # blocked_last_interval, leaving the set empty.
        blocked: _t.Set[str] = set()
        for record in records:
            pe = record.pe
            if not pe.blocked_last_interval:
                continue
            gate = record.gate
            if gate is None or gate(pe):
                pe.blocked_last_interval = False
            else:
                blocked.add(record.pe_id)
        self.last_blocked = frozenset(blocked)
        return scheduler.allocate(dt, blocked=blocked)

    def tick(self, now: float) -> None:
        """One full control interval: decide, then act on the substrate."""
        profiler = self.profiler
        if profiler is not None:
            profiler.push("controller_tick")
        try:
            grants = self.control(now)
        finally:
            if profiler is not None:
                profiler.pop()
        self.ticks += 1
        self.adapter.apply_grants(
            self.node_index, self.records, grants, now, self.dt,
            self.scheduler.settle,
        )

    # -- operational surface -------------------------------------------------

    def set_gate(self, pe_id: str, gate: _t.Optional[GateFn]) -> bool:
        """Replace one resident PE's gate; True when the PE lives here."""
        for record in self.records:
            if record.pe_id == pe_id:
                record.gate = gate
                return True
        return False

    def refresh_cpu_targets(
        self, cpu_targets: _t.Mapping[str, float]
    ) -> None:
        """Propagate refreshed Tier-1 targets into the tick records."""
        for record in self.records:
            record.cpu_target = cpu_targets.get(record.pe_id, 0.0)

    def __repr__(self) -> str:
        return (
            f"NodeController({self.node_id}, pes={len(self.records)}, "
            f"ticks={self.ticks})"
        )
