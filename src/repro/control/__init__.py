"""Substrate-agnostic control plane (the paper's Tier-2 algorithm).

This package is the single home of the per-node control step the paper
describes in Section V — downstream feedback aggregation (Eq. 8), CPU
allocation (Section V-D), and the LQR flow-control update with upstream
``r_max`` publication (Eq. 7) — expressed against a narrow
:class:`~repro.control.adapter.SystemAdapter` protocol instead of a
concrete execution substrate.

* :class:`~repro.control.node.NodeController` runs the Tier-2 step for
  the PEs resident on one node.
* :class:`~repro.control.plane.ControlPlane` builds one controller per
  node from a :class:`~repro.core.policies.Policy`'s hook points, owns
  the shared :class:`~repro.core.feedback.FeedbackBus` and the
  :class:`~repro.core.resilience.ResilientTier1` guard, and exposes the
  operational surface (gate replacement, controller suspend/resume,
  target adoption) both substrates share.

Two substrates currently drive it: the discrete-event simulator
(:class:`repro.systems.dataplane.SimAdapter`) and the threaded mini-SPC
runtime (:class:`repro.runtime.spc.ThreadAdapter`).  A new substrate —
sharded, multi-process, remote — implements one small adapter instead of
re-implementing the controller.

For extreme scale, :mod:`repro.control.vector` provides an array-backed
implementation of the same step (``control_impl="vector"``): a
:class:`~repro.control.vector.PEIndexRegistry` maps PEs to dense
indices and a :class:`~repro.control.vector.VectorEngine` computes whole
nodes — or whole phase buckets — per tick as numpy kernels, bit-equal to
the scalar controllers.
"""

from repro.control.adapter import BufferLike, PELike, SystemAdapter
from repro.control.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionLevel,
    DegradationLadder,
    LadderTransition,
)
from repro.control.elastic import (
    ElasticityConfig,
    MigrationRecord,
    PlacementBook,
    PlacementVersion,
    ScalingPolicy,
    plan_scale_in_placement,
    plan_scale_out_placement,
)
from repro.control.forecast import (
    EwmaForecaster,
    ForecastConfig,
    ForecastController,
    HoltWintersForecaster,
    ProactiveTriggerRecord,
    make_forecaster,
)
from repro.control.node import ControlRecord, NodeController
from repro.control.plane import (
    ControlPlane,
    NodeGroup,
    PlaneInspection,
    resolve_initial_targets,
)
from repro.control.vector import (
    PEIndexRegistry,
    VectorEngine,
    VectorFeedbackBus,
    VectorFlowView,
    VectorNodeController,
    VectorStrictScheduler,
    VectorTokenScheduler,
    fallback_reason,
    numpy_enabled,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionLevel",
    "BufferLike",
    "ControlPlane",
    "ControlRecord",
    "DegradationLadder",
    "ElasticityConfig",
    "EwmaForecaster",
    "ForecastConfig",
    "ForecastController",
    "HoltWintersForecaster",
    "LadderTransition",
    "MigrationRecord",
    "NodeController",
    "NodeGroup",
    "PEIndexRegistry",
    "PELike",
    "PlacementBook",
    "PlacementVersion",
    "PlaneInspection",
    "ProactiveTriggerRecord",
    "ScalingPolicy",
    "SystemAdapter",
    "VectorEngine",
    "VectorFeedbackBus",
    "VectorFlowView",
    "VectorNodeController",
    "VectorStrictScheduler",
    "VectorTokenScheduler",
    "fallback_reason",
    "make_forecaster",
    "numpy_enabled",
    "plan_scale_in_placement",
    "plan_scale_out_placement",
    "resolve_initial_targets",
]
