"""PE runtime entity: buffer + state machine + quantized work execution.

Execution model (shared by all three policies): time is discretized in
control intervals of ``dt``.  In each interval the node's CPU controller
grants the PE a *fractional allocation* ``c``; the PE then has ``c * dt``
CPU-seconds of budget.  It consumes SDOs from its input buffer one at a
time; an SDO started in state ``S`` costs ``T_S`` CPU-seconds, and partial
work carries over across intervals.  Completion timestamps are interpolated
within the interval (work proceeds at rate ``c``), so latency measurements
are not quantized to interval boundaries.

For every consumed SDO the PE emits ``M`` derived SDOs (deterministic or
Poisson with mean ``lambda_m``) through a policy-supplied emission callback.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.model.buffers import InputBuffer
from repro.model.params import PEProfile
from repro.model.sdo import SDO
from repro.model.statemachine import TwoStateMachine

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracker

#: emit(pe, sdo, completion_time) -> None.  The policy decides where the SDO
#: goes (downstream buffers, egress collector) and how overflow is handled.
EmitFn = _t.Callable[["PERuntime", SDO, float], None]
#: gate(pe) -> bool.  Checked before starting each SDO; Lock-Step uses this
#: to refuse processing while any downstream buffer is full.
GateFn = _t.Callable[["PERuntime"], bool]


@dataclass
class PECounters:
    """Lifetime execution counters for one PE."""

    consumed: int = 0
    emitted: int = 0
    cpu_used: float = 0.0
    cpu_granted: float = 0.0
    #: Intervals in which the PE had budget but an empty buffer.
    starved_intervals: int = 0
    #: Intervals in which the gate refused processing (Lock-Step blocking).
    blocked_intervals: int = 0


class PERuntime:
    """One processing element instantiated in a running system."""

    def __init__(
        self,
        profile: PEProfile,
        buffer_capacity: int,
        rng: np.random.Generator,
        is_ingress: bool = False,
        is_egress: bool = False,
    ):
        self.profile = profile
        self.pe_id = profile.pe_id
        self.buffer = InputBuffer(buffer_capacity, name=f"{profile.pe_id}:in")
        self.machine = TwoStateMachine(profile, rng)
        self._rng = rng
        self.is_ingress = is_ingress
        self.is_egress = is_egress
        self.counters = PECounters()

        #: Armed span tracker (None keeps the execute loop disarmed).
        self.spans: _t.Optional["SpanTracker"] = None
        #: Interpolated wall time the current SDO was dequeued at.
        self._span_started = 0.0

        #: Remaining CPU-seconds of the SDO currently being worked on.
        self._work_remaining = 0.0
        #: The SDO currently being worked on (already popped from buffer).
        self._current: _t.Optional[SDO] = None
        #: Fractional-emission accumulator for deterministic M.
        self._m_accumulator = 0.0
        #: Whether the gate refused processing during the last interval.
        #: The node scheduler reads this *one interval late* — a real OS
        #: only discovers a sleeping PE reactively, which is exactly the
        #: stop-start cost the paper attributes to Lock-Step.
        self.blocked_last_interval = False

        #: Downstream/upstream runtime links, wired by the system.
        self.downstream: _t.List["PERuntime"] = []
        self.upstream: _t.List["PERuntime"] = []

    # -- wiring -----------------------------------------------------------

    def link_downstream(self, other: "PERuntime") -> None:
        """Connect this PE's output stream to ``other``'s input."""
        if other is self:
            raise ValueError(f"{self.pe_id}: cannot link a PE to itself")
        self.downstream.append(other)
        other.upstream.append(self)

    # -- data admission ------------------------------------------------------

    def ingest(self, sdo: SDO, now: float) -> bool:
        """Offer an SDO to this PE's input buffer; False when dropped."""
        return self.buffer.offer(sdo, now)

    def attach_spans(self, tracker: "SpanTracker") -> None:
        """Arm span tracking on this PE and its input buffer."""
        self.spans = tracker
        self.buffer.attach_spans(tracker, pe_id=self.pe_id)

    # -- execution ---------------------------------------------------------

    def sample_m(self) -> int:
        """Number of output SDOs for the next consumed SDO.

        Deterministic mode uses an accumulator so the long-run emission
        ratio is exactly ``lambda_m`` — including fractional values for
        selective operators (filters, aggregators).
        """
        if self.profile.deterministic_m:
            self._m_accumulator += self.profile.lambda_m
            count = int(self._m_accumulator)
            self._m_accumulator -= count
            return count
        return int(self._rng.poisson(self.profile.lambda_m))

    @property
    def backlog_work(self) -> float:
        """Estimated CPU-seconds queued (buffer + in-progress work)."""
        mean = 1.0 / self.profile.rate_slope
        return self._work_remaining + self.buffer.occupancy * mean

    def execute(
        self,
        now: float,
        dt: float,
        cpu: float,
        emit: EmitFn,
        gate: _t.Optional[GateFn] = None,
    ) -> float:
        """Run this PE for one control interval.

        Parameters
        ----------
        now:
            Interval start time.
        dt:
            Interval length (seconds).
        cpu:
            Fractional CPU allocation in [0, 1] for this interval.
        emit:
            Callback receiving each produced SDO with its completion time.
        gate:
            Optional predicate; when it returns False the PE stops consuming
            further SDOs this interval (Lock-Step blocking).

        Returns
        -------
        float
            CPU-seconds actually consumed (<= cpu * dt).
        """
        budget = cpu * dt
        self.counters.cpu_granted += budget
        if budget <= 0.0:
            return 0.0

        used = 0.0
        blocked = False
        spans = self.spans
        while used < budget:
            if self._current is None:
                if gate is not None and not gate(self):
                    blocked = True
                    break
                if self.buffer.is_empty:
                    break
                # Buffer operations are stamped with the tick start so
                # buffer telemetry stays monotonic across interleaved node
                # ticks; the state machine still advances along the
                # interpolated work timeline.
                wall = now + (used / cpu if cpu > 0 else 0.0)
                if wall < self.machine.now:
                    # A migrated PE can be ticked by its new node's
                    # phase-staggered loop before the work timeline its
                    # old node already consumed (up to interval start +
                    # dt) has elapsed.  Work on one PE is serial: the
                    # next SDO starts where the previous grant left off.
                    wall = self.machine.now
                self._current = self.buffer.pop(now)
                self._work_remaining = self.machine.service_time_at(wall)
                if spans is not None:
                    self._span_started = wall
                    spans.observe_queue(self.pe_id, self._current, wall)

            step = min(self._work_remaining, budget - used)
            used += step
            self._work_remaining -= step

            if self._work_remaining <= 1e-12:
                completion = now + used / cpu
                if completion < self.machine.now:
                    # Keep completions at or after the SDO's (possibly
                    # clamped) start so service spans never run negative.
                    completion = self.machine.now
                self._complete(self._current, completion, emit)
                self._current = None
                self._work_remaining = 0.0

        self.blocked_last_interval = blocked
        if blocked:
            self.counters.blocked_intervals += 1
        elif used < budget and self.buffer.is_empty and self._current is None:
            self.counters.starved_intervals += 1

        self.counters.cpu_used += used
        return used

    def _complete(self, sdo: SDO, completion: float, emit: EmitFn) -> None:
        self.counters.consumed += 1
        spans = self.spans
        parent_span = None
        if spans is not None:
            # The service segment runs dequeue -> completion, so partial
            # work carried across intervals (waiting for the next CPU
            # grant) counts as service time, not queue-wait; the span sum
            # still telescopes exactly to the end-to-end latency.
            spans.observe_service(
                self.pe_id, sdo, completion - self._span_started
            )
            parent_span = sdo.span
        for _ in range(self.sample_m()):
            derived = sdo.derive(stream_id=self.pe_id)
            if parent_span is not None:
                derived.span = [
                    parent_span[0],
                    parent_span[1],
                    parent_span[2],
                    0.0,
                    completion,
                ]
            self.counters.emitted += 1
            emit(self, derived, completion)

    # -- controller observables ----------------------------------------------

    @property
    def current_service_time(self) -> float:
        """Per-SDO cost in the machine's current state (no time advance)."""
        return self.profile.t1 if self.machine.state == 1 else self.profile.t0

    def processing_rate(self, cpu: float) -> float:
        """Instantaneous processing rate rho_j (SDO/s) at allocation ``cpu``.

        Uses the *current* state's service time: this is the short-horizon
        rate the flow controller reacts with.
        """
        return cpu / self.current_service_time

    def cpu_for_output_rate_now(self, rate: float) -> float:
        """CPU needed to emit ``rate`` SDO/s *in the current state*.

        This is the state-aware inverse ``g^{-1}`` used by the Eq. 8 CPU
        cap: a PE momentarily in its slow state needs proportionally more
        CPU to keep delivering the rate its consumer asked for.
        """
        if rate <= 0:
            return 0.0
        return (rate / self.profile.lambda_m) * self.current_service_time

    def __repr__(self) -> str:
        return (
            f"PERuntime({self.pe_id}, buf={self.buffer.occupancy}/"
            f"{self.buffer.capacity})"
        )
