"""Semantic operator profiles: filter, map, aggregate, join, fan-out.

The paper's PEs "filter, aggregate, correlate, classify, or transform"
(Section I).  :class:`~repro.model.params.PEProfile` captures all of them
through two knobs — per-SDO cost and the mean output count ``lambda_m`` —
but picking those numbers by operator intent is easier with these
constructors:

=============  ================  =========================================
constructor    lambda_m           models
=============  ================  =========================================
filter_pe      selectivity < 1    predicate filters, classifiers that
                                  forward only positives
map_pe         1                  transforms, annotators, classifiers that
                                  label every SDO
aggregate_pe   1 / window         windowed aggregation (one summary per
                                  ``window`` inputs)
join_pe        1                  correlation of several input streams
                                  (wire multiple upstream edges to it)
fanout_pe      copies >= 1        re-packetizers / splitters emitting
                                  several SDOs per input
=============  ================  =========================================

All constructors accept the standard burstiness parameters (``t0``,
``t1``, ``lambda_s``, ``rho``) and a ``weight`` for egress streams.
"""

from __future__ import annotations

import typing as _t

from repro.model.params import DEFAULTS, PEProfile


def _base_kwargs(kwargs: _t.Dict[str, object]) -> _t.Dict[str, object]:
    defaults: _t.Dict[str, object] = dict(
        t0=DEFAULTS.t0,
        t1=DEFAULTS.t1,
        lambda_s=DEFAULTS.lambda_s,
        rho=DEFAULTS.rho,
        weight=0.0,
    )
    defaults.update(kwargs)
    return defaults


def filter_pe(
    pe_id: str, selectivity: float, **kwargs: object
) -> PEProfile:
    """A predicate filter forwarding a ``selectivity`` fraction of SDOs."""
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(
            f"{pe_id}: selectivity must lie in (0, 1], got {selectivity}"
        )
    return PEProfile(
        pe_id=pe_id, lambda_m=selectivity, **_base_kwargs(kwargs)
    )


def map_pe(pe_id: str, **kwargs: object) -> PEProfile:
    """A one-in/one-out transform (classify, annotate, convert)."""
    return PEProfile(pe_id=pe_id, lambda_m=1.0, **_base_kwargs(kwargs))


def aggregate_pe(pe_id: str, window: int, **kwargs: object) -> PEProfile:
    """A windowed aggregator emitting one summary per ``window`` inputs."""
    if window < 1:
        raise ValueError(f"{pe_id}: window must be >= 1, got {window}")
    return PEProfile(
        pe_id=pe_id, lambda_m=1.0 / window, **_base_kwargs(kwargs)
    )


def join_pe(pe_id: str, **kwargs: object) -> PEProfile:
    """A correlator of several streams (add multiple upstream edges)."""
    return PEProfile(pe_id=pe_id, lambda_m=1.0, **_base_kwargs(kwargs))


def fanout_pe(pe_id: str, copies: float, **kwargs: object) -> PEProfile:
    """A splitter/re-packetizer emitting ``copies`` SDOs per input."""
    if copies < 1:
        raise ValueError(f"{pe_id}: copies must be >= 1, got {copies}")
    return PEProfile(pe_id=pe_id, lambda_m=copies, **_base_kwargs(kwargs))
