"""Processing nodes: hosts with normalized CPU capacity.

A :class:`ProcessingNode` owns the PEs placed on it.  Its CPU capacity is
normalized to 1.0 (the paper's Eq. 1/4 constraint ``sum_j c_j <= 1``); the
per-interval division of that capacity among resident PEs is the job of the
CPU controller in :mod:`repro.core.cpu_control`.
"""

from __future__ import annotations

import typing as _t

from repro.model.pe import PERuntime


class ProcessingNode:
    """One processing node (PN) hosting a set of PE runtimes."""

    def __init__(self, node_id: str, cpu_capacity: float = 1.0):
        if cpu_capacity <= 0:
            raise ValueError(f"{node_id}: cpu_capacity must be positive")
        self.node_id = node_id
        self.cpu_capacity = cpu_capacity
        self.pes: _t.List[PERuntime] = []

    def place(self, pe: PERuntime) -> None:
        """Place a PE runtime on this node."""
        if any(existing.pe_id == pe.pe_id for existing in self.pes):
            raise ValueError(
                f"{self.node_id}: PE {pe.pe_id} already placed here"
            )
        self.pes.append(pe)

    @property
    def pe_ids(self) -> _t.List[str]:
        return [pe.pe_id for pe in self.pes]

    def total_backlog_work(self) -> float:
        """Sum of queued CPU-seconds across resident PEs."""
        return sum(pe.backlog_work for pe in self.pes)

    def __repr__(self) -> str:
        return f"ProcessingNode({self.node_id}, pes={len(self.pes)})"
