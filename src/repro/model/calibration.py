"""Empirical calibration of the PE rate model ``h(c) = a c - b``.

The paper models a PE's sustainable input rate as an affine function of its
CPU share, with constants "determined empirically" (footnote 3).  The true
effective rate of the two-state PE model is not a closed form: an SDO's cost
is frozen at the state it *starts* in, so the rate interpolates between
``1 / E[T_S]`` (state flips much faster than service, small ``lambda_s``)
and the arithmetic mean ``(1-rho)/t0 + rho/t1`` (long dwells).  Worse, the
interpolation point depends on the CPU share, because the state machine
runs in wall time while work accrues at rate ``c``.

:func:`effective_rate` measures the rate by direct Monte-Carlo simulation of
the service loop; :func:`calibrate_profile` stores the measured slope on the
profile so that the Tier-1 optimizer, the topology generator's source rates,
and every backlog estimate share one consistent, *feasible* capacity model.
Results are cached on the normalized parameter tuple (rates scale exactly
as ``1/scale`` when ``t0, t1`` and the dwell means are scaled together).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.model.params import PEProfile
from repro.model.statemachine import TwoStateMachine

#: Cache key: rounded (t0, t1, lambda_s, rho, cpu) for a scale-1 profile.
_CacheKey = _t.Tuple[float, float, float, float, float]
_CACHE: _t.Dict[_CacheKey, float] = {}


def effective_rate(
    profile: PEProfile,
    cpu: float,
    rng: _t.Optional[np.random.Generator] = None,
    num_sdos: int = 4000,
) -> float:
    """Measured SDO/s this profile sustains at CPU share ``cpu``.

    Simulates back-to-back service: each SDO costs ``T_S`` CPU-seconds at
    the state ruling when it starts, and occupies ``T_S / cpu`` of wall
    time, during which the state machine keeps evolving.
    """
    if not 0.0 < cpu <= 1.0:
        raise ValueError(f"cpu must lie in (0, 1], got {cpu}")
    if num_sdos <= 0:
        raise ValueError("num_sdos must be positive")
    if rng is None:
        rng = np.random.default_rng(1234)

    machine = TwoStateMachine(profile, rng)
    wall = 0.0
    for _ in range(num_sdos):
        cost = machine.service_time_at(wall)
        wall += cost / cpu
    return num_sdos / wall


def calibrated_slope(
    profile: PEProfile,
    cpu: float = 0.5,
    num_sdos: int = 4000,
) -> float:
    """The empirical ``a`` constant of ``h(c) = a c - b`` for this profile.

    Uses the normalized cache: a profile whose ``(t0, t1)`` are ``scale``
    times a cached entry has exactly ``1/scale`` times its rate.
    """
    t0, t1 = profile.t0, profile.t1
    scale = t0 / 0.002  # normalize to the paper's default fast cost
    key = (
        round(t0 / scale, 9),
        round(t1 / scale, 9),
        round(profile.lambda_s, 6),
        round(profile.rho, 6),
        round(cpu, 6),
    )
    if key not in _CACHE:
        reference = profile.scaled(
            pe_id="__calibration__", t0=t0 / scale, t1=t1 / scale
        )
        rate = effective_rate(
            reference,
            cpu,
            rng=np.random.default_rng(97531),
            num_sdos=num_sdos,
        )
        _CACHE[key] = rate / cpu
    return _CACHE[key] / scale


def calibrate_profile(profile: PEProfile, cpu: float = 0.5) -> PEProfile:
    """Return a copy of ``profile`` with its empirical rate slope attached."""
    return profile.scaled(calibrated_rate_slope=calibrated_slope(profile, cpu))


def clear_cache() -> None:
    """Drop cached calibrations (tests use this for isolation)."""
    _CACHE.clear()
