"""Stream Data Objects — the fundamental unit of a data stream.

Every SDO carries provenance needed for the paper's metrics:

* ``origin_time`` — the virtual time the *original* system-input SDO entered
  the system.  Derived SDOs inherit the earliest origin time of their inputs,
  so the end-to-end latency measured at an egress PE spans the whole
  processing chain.
* ``hops`` — number of PEs that have processed ancestors of this SDO, used
  as a sanity check on the processing-graph depth.
"""

from __future__ import annotations

import itertools
import typing as _t

_SDO_IDS = itertools.count()


class SDO:
    """One Stream Data Object.

    A ``__slots__`` class rather than a dataclass: SDOs are created on
    every source arrival and every PE emission, so the per-instance dict
    is measurable overhead at simulation scale.

    Parameters
    ----------
    stream_id:
        Identifier of the stream (source or producing PE) this SDO belongs to.
    origin_time:
        Virtual time at which the ancestral system-input SDO was created.
    size:
        Size in bytes (the paper measures rates in bytes; with fixed-size
        SDOs the two units are interchangeable).
    hops:
        Number of PE processing steps applied to this SDO's lineage.
    payload:
        Optional application payload (unused by the control algorithms).
    span:
        Latency-span accumulator, ``None`` unless a
        :class:`~repro.obs.spans.SpanTracker` is armed; then a 5-slot
        list indexed by the ``SPAN_*`` constants (queue, service,
        transit, enqueued-at, emitted-at).  A bare list keeps the armed
        per-hop cost to index arithmetic and the disarmed cost to one
        default slot.
    """

    __slots__ = (
        "stream_id", "origin_time", "size", "hops", "payload", "sdo_id",
        "span",
    )

    def __init__(
        self,
        stream_id: str,
        origin_time: float,
        size: float = 1.0,
        hops: int = 0,
        payload: object = None,
        sdo_id: _t.Optional[int] = None,
        span: _t.Optional[_t.List[float]] = None,
    ):
        self.stream_id = stream_id
        self.origin_time = origin_time
        self.size = size
        self.hops = hops
        self.payload = payload
        self.sdo_id = next(_SDO_IDS) if sdo_id is None else sdo_id
        self.span = span

    def __repr__(self) -> str:
        return (
            f"SDO(stream_id={self.stream_id!r}, "
            f"origin_time={self.origin_time!r}, size={self.size!r}, "
            f"hops={self.hops!r}, payload={self.payload!r}, "
            f"sdo_id={self.sdo_id!r})"
        )

    def derive(self, stream_id: str, size: _t.Optional[float] = None) -> "SDO":
        """Create an output SDO descended from this one.

        The derived SDO inherits the origin time (for end-to-end latency)
        and increments the hop count.
        """
        return SDO(
            stream_id=stream_id,
            origin_time=self.origin_time,
            size=self.size if size is None else size,
            hops=self.hops + 1,
        )

    @staticmethod
    def merge(parents: _t.Sequence["SDO"], stream_id: str) -> "SDO":
        """Create an SDO derived from several parents (multi-input PEs).

        The earliest parent origin time is inherited so latency reflects the
        slowest input path.
        """
        if not parents:
            raise ValueError("merge requires at least one parent SDO")
        return SDO(
            stream_id=stream_id,
            origin_time=min(parent.origin_time for parent in parents),
            size=max(parent.size for parent in parents),
            hops=max(parent.hops for parent in parents) + 1,
        )

    def fanout_copy(self) -> "SDO":
        """Per-consumer copy for multi-consumer fan-out under span tracking.

        Both substrates deliver one emitted SDO object to *every*
        downstream consumer; with spans armed each consumer path mutates
        the span record, so consumers beyond the first get a copy with
        an independent span list.  Disarmed call sites never call this.
        """
        span = self.span
        return SDO(
            stream_id=self.stream_id,
            origin_time=self.origin_time,
            size=self.size,
            hops=self.hops,
            payload=self.payload,
            span=None if span is None else list(span),
        )

    def age(self, now: float) -> float:
        """End-to-end latency of this SDO's lineage as of ``now``."""
        return now - self.origin_time
