"""Stream Data Objects — the fundamental unit of a data stream.

Every SDO carries provenance needed for the paper's metrics:

* ``origin_time`` — the virtual time the *original* system-input SDO entered
  the system.  Derived SDOs inherit the earliest origin time of their inputs,
  so the end-to-end latency measured at an egress PE spans the whole
  processing chain.
* ``hops`` — number of PEs that have processed ancestors of this SDO, used
  as a sanity check on the processing-graph depth.
"""

from __future__ import annotations

import itertools
import typing as _t
from dataclasses import dataclass, field

_SDO_IDS = itertools.count()


@dataclass
class SDO:
    """One Stream Data Object.

    Parameters
    ----------
    stream_id:
        Identifier of the stream (source or producing PE) this SDO belongs to.
    origin_time:
        Virtual time at which the ancestral system-input SDO was created.
    size:
        Size in bytes (the paper measures rates in bytes; with fixed-size
        SDOs the two units are interchangeable).
    hops:
        Number of PE processing steps applied to this SDO's lineage.
    payload:
        Optional application payload (unused by the control algorithms).
    """

    stream_id: str
    origin_time: float
    size: float = 1.0
    hops: int = 0
    payload: object = None
    sdo_id: int = field(default_factory=lambda: next(_SDO_IDS))

    def derive(self, stream_id: str, size: _t.Optional[float] = None) -> "SDO":
        """Create an output SDO descended from this one.

        The derived SDO inherits the origin time (for end-to-end latency)
        and increments the hop count.
        """
        return SDO(
            stream_id=stream_id,
            origin_time=self.origin_time,
            size=self.size if size is None else size,
            hops=self.hops + 1,
        )

    @staticmethod
    def merge(parents: _t.Sequence["SDO"], stream_id: str) -> "SDO":
        """Create an SDO derived from several parents (multi-input PEs).

        The earliest parent origin time is inherited so latency reflects the
        slowest input path.
        """
        if not parents:
            raise ValueError("merge requires at least one parent SDO")
        return SDO(
            stream_id=stream_id,
            origin_time=min(parent.origin_time for parent in parents),
            size=max(parent.size for parent in parents),
            hops=max(parent.hops for parent in parents) + 1,
        )

    def age(self, now: float) -> float:
        """End-to-end latency of this SDO's lineage as of ``now``."""
        return now - self.origin_time
