"""Network links between PEs: finite bandwidth and propagation delay.

The paper manages "processor and network" resources; its evaluation is
intra-cluster, where transfer cost is small but not zero.  This module
models each producer->consumer stream as a serializing link: an SDO of
size ``s`` occupies the link for ``s / bandwidth`` seconds (FIFO, one SDO
at a time), then arrives after a further fixed ``latency``.

Links are optional: :class:`~repro.systems.simulated.SystemConfig` keeps
``link_bandwidth = None`` (infinite) by default, matching the paper's
evaluation; setting a finite value turns every inter-node edge into a
:class:`Link` (co-located PEs communicate through memory and stay
instantaneous).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.model.sdo import SDO

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracker


@dataclass
class LinkStats:
    """Telemetry for one link."""

    transferred: int = 0
    bytes_moved: float = 0.0
    busy_time: float = 0.0


class Link:
    """A FIFO serializing link with bandwidth and propagation delay.

    The link does not buffer beyond the in-flight serialization: admission
    control stays at the consumer's input buffer (the paper's model).  A
    transfer requested while the link is busy queues behind the current
    ones — :meth:`transfer_completion` returns when the SDO will arrive.
    """

    #: Armed span tracker; records each transfer's full delay (queue
    #: behind the serializer + serialization + propagation).
    spans: _t.Optional["SpanTracker"] = None

    def __init__(
        self,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
    ):
        if bandwidth <= 0:
            raise ValueError(f"{name}: bandwidth must be positive")
        if latency < 0:
            raise ValueError(f"{name}: latency must be >= 0")
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self._busy_until = 0.0
        self.stats = LinkStats()

    @property
    def busy_until(self) -> float:
        """Time at which the link's serializer frees up."""
        return self._busy_until

    def transfer_completion(self, sdo: SDO, now: float) -> float:
        """Reserve the link for ``sdo`` and return its arrival time.

        Serialization starts when the link frees (FIFO); the SDO arrives
        after serialization plus the propagation latency.
        """
        if now < 0:
            raise ValueError("now must be >= 0")
        start = max(now, self._busy_until)
        serialization = sdo.size / self.bandwidth
        self._busy_until = start + serialization
        self.stats.transferred += 1
        self.stats.bytes_moved += sdo.size
        self.stats.busy_time += serialization
        arrival = self._busy_until + self.latency
        spans = self.spans
        if spans is not None:
            spans.observe_link(self.name, arrival - now)
        return arrival

    def utilization(self, now: float) -> float:
        """Fraction of elapsed time the link spent serializing."""
        if now <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / now)

    def __repr__(self) -> str:
        return (
            f"Link({self.name}, bw={self.bandwidth}, "
            f"busy_until={self._busy_until:.3f})"
        )
